//! k-nearest-neighbours — the nonparametric sanity-check labeler.
//!
//! Brute force with either Euclidean or cosine distance; fine at the
//! experiment scales here and useful as a model-free probe of embedding
//! quality (if kNN over embeddings can't label users, no classifier can).

use crate::Classifier;
use querc_linalg::{ops, Pcg32};

/// Distance metric for [`Knn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnMetric {
    Euclidean,
    /// 1 − cosine similarity.
    Cosine,
}

/// Brute-force k-nearest-neighbours classifier.
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    metric: KnnMetric,
    x: Vec<Vec<f32>>,
    y: Vec<u32>,
    n_classes: usize,
}

impl Knn {
    pub fn new(k: usize, metric: KnnMetric) -> Self {
        assert!(k > 0);
        Knn {
            k,
            metric,
            x: Vec::new(),
            y: Vec::new(),
            n_classes: 0,
        }
    }

    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        match self.metric {
            KnnMetric::Euclidean => ops::sq_dist(a, b),
            KnnMetric::Cosine => 1.0 - ops::cosine(a, b),
        }
    }
}

impl Classifier for Knn {
    fn fit(&mut self, x: &[Vec<f32>], y: &[u32], n_classes: usize, _rng: &mut Pcg32) {
        assert_eq!(x.len(), y.len());
        self.x = x.to_vec();
        self.y = y.to_vec();
        self.n_classes = n_classes;
    }

    fn predict(&self, q: &[f32]) -> u32 {
        if self.x.is_empty() {
            return 0;
        }
        // Partial selection of the k smallest distances.
        let mut dists: Vec<(f32, u32)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(xi, &yi)| (self.distance(q, xi), yi))
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut votes = vec![0u32; self.n_classes.max(1)];
        for &(_, label) in &dists[..k] {
            votes[label as usize] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_nn_memorizes() {
        let x = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        let y = vec![0, 1, 2];
        let mut knn = Knn::new(1, KnnMetric::Euclidean);
        knn.fit(&x, &y, 3, &mut Pcg32::new(1));
        assert_eq!(knn.predict(&[0.1, 0.0]), 0);
        assert_eq!(knn.predict(&[0.9, 1.1]), 1);
        assert_eq!(knn.predict(&[5.0, 5.0]), 2);
    }

    #[test]
    fn majority_vote_smooths_noise() {
        // One mislabeled point among many correct ones.
        let mut x = vec![vec![0.0f32]; 9];
        for (i, v) in x.iter_mut().enumerate() {
            v[0] = i as f32 * 0.01;
        }
        let mut y = vec![0u32; 9];
        y[4] = 1; // noise
        let mut knn = Knn::new(5, KnnMetric::Euclidean);
        knn.fit(&x, &y, 2, &mut Pcg32::new(2));
        assert_eq!(knn.predict(&[0.04]), 0);
    }

    #[test]
    fn cosine_metric_ignores_magnitude() {
        let x = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let y = vec![0, 1];
        let mut knn = Knn::new(1, KnnMetric::Cosine);
        knn.fit(&x, &y, 2, &mut Pcg32::new(3));
        // A large vector along axis 0 is still class 0 under cosine.
        assert_eq!(knn.predict(&[100.0, 1.0]), 0);
        assert_eq!(knn.predict(&[0.5, 60.0]), 1);
    }

    #[test]
    fn empty_training_set() {
        let knn = Knn::new(3, KnnMetric::Euclidean);
        assert_eq!(knn.predict(&[1.0]), 0);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0, 1];
        let mut knn = Knn::new(10, KnnMetric::Euclidean);
        knn.fit(&x, &y, 2, &mut Pcg32::new(4));
        // Should not panic; ties resolve to the lower class id.
        let _ = knn.predict(&[0.4]);
    }
}
