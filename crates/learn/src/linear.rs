//! Multinomial logistic (softmax) regression — the linear baseline.
//!
//! A deliberately simple labeler: if learned embeddings are good features,
//! even a linear model over them should perform respectably, which is part
//! of the paper's argument that Querc "admits simpler classification
//! algorithms".

use crate::state::{bad_state, ClassifierState, SoftmaxState};
use crate::{Classifier, LearnError};
use querc_linalg::{kernel, ops, Matrix, Pcg32};

/// Softmax regression trained by mini-batch SGD with L2 regularization.
#[derive(Debug, Clone)]
pub struct SoftmaxRegression {
    /// Weights, `n_classes × (d + 1)` — last column is the bias.
    w: Matrix,
    epochs: usize,
    lr: f32,
    l2: f32,
}

impl SoftmaxRegression {
    pub fn new(epochs: usize, lr: f32, l2: f32) -> Self {
        SoftmaxRegression {
            w: Matrix::zeros(0, 0),
            epochs,
            lr,
            l2,
        }
    }

    /// Class scores (pre-softmax logits), on the active compute kernel.
    fn logits(&self, x: &[f32]) -> Vec<f32> {
        let kern = kernel::active_kernel();
        let d = self.w.cols().saturating_sub(1);
        (0..self.w.rows())
            .map(|c| {
                let row = self.w.row(c);
                kernel::dot_with(kern, &row[..d.min(x.len())], &x[..d.min(x.len())]) + row[d]
            })
            .collect()
    }

    /// Predicted class distribution.
    pub fn proba(&self, x: &[f32]) -> Vec<f32> {
        let mut z = self.logits(x);
        ops::softmax(&mut z);
        z
    }

    /// Snapshot the fitted weights and SGD hyperparameters as a
    /// [`SoftmaxState`].
    pub fn to_state(&self) -> SoftmaxState {
        SoftmaxState {
            rows: self.w.rows(),
            cols: self.w.cols(),
            w: self.w.as_slice().to_vec(),
            epochs: self.epochs,
            lr: self.lr,
            l2: self.l2,
        }
    }

    /// Rebuild the model from a snapshot, validating the weight-matrix
    /// shape.
    pub fn from_state(state: SoftmaxState) -> Result<SoftmaxRegression, LearnError> {
        if state.w.len() != state.rows * state.cols {
            return Err(bad_state(format!(
                "{} weights for a {}x{} matrix",
                state.w.len(),
                state.rows,
                state.cols
            )));
        }
        Ok(SoftmaxRegression {
            w: Matrix::from_vec(state.rows, state.cols, state.w),
            epochs: state.epochs,
            lr: state.lr,
            l2: state.l2,
        })
    }
}

impl Default for SoftmaxRegression {
    fn default() -> Self {
        SoftmaxRegression::new(60, 0.1, 1e-4)
    }
}

impl Classifier for SoftmaxRegression {
    fn fit(&mut self, x: &[Vec<f32>], y: &[u32], n_classes: usize, rng: &mut Pcg32) {
        assert_eq!(x.len(), y.len());
        if x.is_empty() {
            self.w = Matrix::zeros(n_classes, 1);
            return;
        }
        let d = x[0].len();
        self.w = Matrix::zeros(n_classes, d + 1);
        let mut order: Vec<usize> = (0..x.len()).collect();
        for epoch in 0..self.epochs {
            rng.shuffle(&mut order);
            let lr = self.lr / (1.0 + 0.05 * epoch as f32);
            for &i in &order {
                let mut p = self.logits(&x[i]);
                ops::softmax(&mut p);
                for (c, &pc) in p.iter().enumerate().take(n_classes) {
                    let err = pc - if y[i] as usize == c { 1.0 } else { 0.0 };
                    let row = self.w.row_mut(c);
                    for j in 0..d {
                        row[j] -= lr * (err * x[i][j] + self.l2 * row[j]);
                    }
                    row[d] -= lr * err; // bias, unregularized
                }
            }
        }
    }

    fn predict(&self, x: &[f32]) -> u32 {
        let z = self.logits(x);
        querc_linalg::stats::argmax(&z).unwrap_or(0) as u32
    }

    fn predict_proba(&self, x: &[f32], n_classes: usize) -> Vec<f32> {
        let mut p = self.proba(x);
        p.resize(n_classes, 0.0);
        p
    }

    fn export_state(&self) -> Option<ClassifierState> {
        Some(ClassifierState::Softmax(self.to_state()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable(seed: u64, n: usize) -> (Vec<Vec<f32>>, Vec<u32>) {
        let mut rng = Pcg32::new(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.range_f32(-2.0, 2.0);
            let b = rng.range_f32(-2.0, 2.0);
            x.push(vec![a, b]);
            y.push(if a + b > 0.0 { 1 } else { 0 });
        }
        (x, y)
    }

    #[test]
    fn learns_linear_boundary() {
        let (x, y) = linearly_separable(1, 300);
        let mut model = SoftmaxRegression::default();
        model.fit(&x, &y, 2, &mut Pcg32::new(2));
        let acc = model
            .predict_batch(&x)
            .iter()
            .zip(&y)
            .filter(|(p, t)| p == t)
            .count() as f32
            / y.len() as f32;
        assert!(acc > 0.95, "training accuracy {acc}");
    }

    #[test]
    fn three_class_one_hot_regions() {
        // Three classes keyed on the argmax coordinate — linearly separable.
        let mut rng = Pcg32::new(3);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..300 {
            let v = vec![rng.f32(), rng.f32(), rng.f32()];
            y.push(querc_linalg::stats::argmax(&v).unwrap() as u32);
            x.push(v);
        }
        let mut model = SoftmaxRegression::new(120, 0.2, 1e-5);
        model.fit(&x, &y, 3, &mut Pcg32::new(4));
        let acc = model
            .predict_batch(&x)
            .iter()
            .zip(&y)
            .filter(|(p, t)| p == t)
            .count() as f32
            / y.len() as f32;
        assert!(acc > 0.85, "training accuracy {acc}");
    }

    #[test]
    fn proba_is_a_distribution() {
        let (x, y) = linearly_separable(5, 100);
        let mut model = SoftmaxRegression::default();
        model.fit(&x, &y, 2, &mut Pcg32::new(6));
        let p = model.proba(&[0.3, -0.1]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_fit_predicts_class_zero() {
        let mut model = SoftmaxRegression::default();
        model.fit(&[], &[], 3, &mut Pcg32::new(7));
        assert_eq!(model.predict(&[1.0, 2.0]), 0);
    }
}
