//! Runtime-dispatched scalar/AVX2 distance kernels — re-exported from
//! [`querc_linalg::kernel`], where the machinery moved when it became
//! the workspace-wide compute plane (the training stack now runs on
//! the same kernels the index plane does).
//!
//! This module keeps the historical `querc_index::simd` paths alive:
//! [`Kernel`], [`set_kernel_override`], [`active_kernel`] /
//! [`kernel_name`], the row kernels (`sq_dist`, `cosine_dist`,
//! `dot_with`), the fused block kernels (`sq_dist_block`,
//! `cosine_dist_block`) and the SQ8 ADC kernels (`adc_sq_block`,
//! `adc_dot_block`) all resolve here exactly as before — there is one
//! canonical implementation per op, and it lives in `querc-linalg`.
//! See `querc_linalg::kernel` for the dispatch rules (`QUERC_SIMD`,
//! CPU detection, programmatic override) and the bit-identical-arms
//! contract; the parity suite lives next to the implementation.

pub use querc_linalg::kernel::*;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_resolves_historical_paths() {
        // The index-plane API surface: enum, override, dispatch report,
        // row/block/ADC kernels — all reachable via `querc_index::simd`.
        let q = [1.0f32, 2.0, 3.0, 4.0];
        let row = [4.0f32, 3.0, 2.0, 1.0];
        assert_eq!(
            sq_dist(&q, &row).to_bits(),
            querc_linalg::ops::sq_dist(&q, &row).to_bits()
        );
        let mut out = [0.0f32; 1];
        sq_dist_block(&q, &row, 4, &mut out);
        assert_eq!(out[0].to_bits(), sq_dist(&q, &row).to_bits());
        assert_eq!(kernel_name(), active_kernel().name());
        let _ = Kernel::Scalar.name();
    }
}
