//! Golden conformance corpus for the multi-dialect SQL front-end.
//!
//! Every case pins the *shape* (statement kind, set-operation count) and
//! the *lineage* (base tables read, tables written, views defined, CTE
//! names) the parser must extract, across every dialect the case applies
//! to (an empty dialect list means all six). The companion gate test
//! measures which grammar productions the corpus exercises via the
//! parser's per-production hit counters (`coverage` feature) and fails
//! if the corpus covers less than [`COVERAGE_THRESHOLD`] of them.

use querc_sql::ast::StatementKind as K;
use querc_sql::parser::{coverage, MAX_PARSE_DEPTH};
use querc_sql::{parse_query, Dialect};

/// Minimum fraction of grammar productions the corpus must exercise.
const COVERAGE_THRESHOLD: f64 = 0.90;

struct Case {
    sql: &'static str,
    /// Dialects the case runs under; empty means all six.
    dialects: &'static [Dialect],
    kind: K,
    reads: &'static [&'static str],
    writes: &'static [&'static str],
    views: &'static [&'static str],
    ctes: &'static [&'static str],
    set_ops: usize,
}

/// Plain read-only select: expected lineage is just `reads`.
const fn c(sql: &'static str, kind: K, reads: &'static [&'static str]) -> Case {
    Case {
        sql,
        dialects: &[],
        kind,
        reads,
        writes: &[],
        views: &[],
        ctes: &[],
        set_ops: 0,
    }
}

const SNOW: &[Dialect] = &[Dialect::Snowflake];
const BQ: &[Dialect] = &[Dialect::BigQuery];
const MY: &[Dialect] = &[Dialect::MySql];
const TS: &[Dialect] = &[Dialect::TSql];
const PG: &[Dialect] = &[Dialect::Postgres];
const GEN: &[Dialect] = &[Dialect::Generic];

#[rustfmt::skip]
fn cases() -> Vec<Case> {
    vec![
        // ----- basic selects ------------------------------------------------
        c("SELECT 1", K::Select, &[]),
        c("SELECT a FROM t", K::Select, &["t"]),
        c("SELECT a, b, c FROM t", K::Select, &["t"]),
        c("SELECT * FROM sch.t", K::Select, &["t"]),
        c("SELECT t.a FROM t WHERE t.b = 1", K::Select, &["t"]),
        c("SELECT DISTINCT region FROM customers", K::Select, &["customers"]),
        c("SELECT a AS x, b AS y FROM t", K::Select, &["t"]),
        c("SELECT * FROM t1, t2, t3", K::Select, &["t1", "t2", "t3"]),
        c("SELECT count(*) FROM logs", K::Select, &["logs"]),
        c("SELECT a FROM t;", K::Select, &["t"]),
        c("SELECT", K::Select, &[]),
        c("SELECT upper(name), length(name) FROM users", K::Select, &["users"]),
        c("SELECT 'lit', 42, a FROM t", K::Select, &["t"]),
        c("SELECT /* hint */ a FROM t -- trailing", K::Select, &["t"]),
        c("SELECT (SELECT max(v) FROM metrics) AS peak, a FROM t", K::Select, &["metrics", "t"]),
        // ----- joins --------------------------------------------------------
        c("SELECT * FROM a JOIN b ON a.k = b.k", K::Select, &["a", "b"]),
        c("SELECT * FROM a INNER JOIN b ON a.k = b.k", K::Select, &["a", "b"]),
        c("SELECT * FROM a LEFT JOIN b ON a.k = b.k", K::Select, &["a", "b"]),
        c("SELECT * FROM a LEFT OUTER JOIN b ON a.k = b.k", K::Select, &["a", "b"]),
        c("SELECT * FROM a RIGHT JOIN b ON a.k = b.k", K::Select, &["a", "b"]),
        c("SELECT * FROM a FULL OUTER JOIN b ON a.k = b.k", K::Select, &["a", "b"]),
        c("SELECT * FROM a CROSS JOIN b", K::Select, &["a", "b"]),
        c("SELECT * FROM a NATURAL JOIN b", K::Select, &["a", "b"]),
        c("SELECT * FROM a JOIN b USING (k)", K::Select, &["a", "b"]),
        c("SELECT * FROM a JOIN b ON a.k = b.k JOIN c ON b.j = c.j", K::Select, &["a", "b", "c"]),
        c("SELECT * FROM customer c, orders o WHERE c.id = o.cid", K::Select, &["customer", "orders"]),
        c("SELECT * FROM (a JOIN b ON a.k = b.k) g", K::Select, &["a", "b"]),
        c("SELECT * FROM (a JOIN b ON a.k = b.k) g JOIN c ON a.j = c.j", K::Select, &["a", "b", "c"]),
        c("SELECT * FROM ((a JOIN b ON a.k = b.k) JOIN c ON b.j = c.j) g", K::Select, &["a", "b", "c"]),
        c("SELECT * FROM a JOIN b ON a.k = b.k AND a.region = 'EU'", K::Select, &["a", "b"]),
        c("SELECT * FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey, nation n", K::Select, &["lineitem", "nation", "orders"]),
        // ----- predicates ---------------------------------------------------
        c("SELECT * FROM t WHERE a = 1", K::Select, &["t"]),
        c("SELECT * FROM t WHERE a = 'x'", K::Select, &["t"]),
        c("SELECT * FROM t WHERE a > 1.5 AND b <= 2", K::Select, &["t"]),
        c("SELECT * FROM t WHERE a <> 3 OR b != 4", K::Select, &["t"]),
        c("SELECT * FROM t WHERE a BETWEEN 5 AND 10", K::Select, &["t"]),
        c("SELECT * FROM t WHERE d BETWEEN '1995-01-01' AND '1995-03-31'", K::Select, &["t"]),
        c("SELECT * FROM t WHERE a IN (1, 2, 3)", K::Select, &["t"]),
        c("SELECT * FROM t WHERE a NOT IN (4, 5)", K::Select, &["t"]),
        c("SELECT * FROM t WHERE k IN (SELECT k FROM u)", K::Select, &["t", "u"]),
        c("SELECT * FROM t WHERE name LIKE '%ann%'", K::Select, &["t"]),
        c("SELECT * FROM t WHERE name NOT LIKE 'x%' ESCAPE '!'", K::Select, &["t"]),
        c("SELECT * FROM t WHERE deleted_at IS NULL", K::Select, &["t"]),
        c("SELECT * FROM t WHERE deleted_at IS NOT NULL", K::Select, &["t"]),
        c("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3", K::Select, &["t"]),
        c("SELECT * FROM t WHERE NOT (a = 1 OR b = 2)", K::Select, &["t"]),
        c("SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.k)", K::Select, &["t", "u"]),
        c("SELECT * FROM t WHERE NOT EXISTS (SELECT 1 FROM u WHERE u.k = t.k)", K::Select, &["t", "u"]),
        c("SELECT * FROM items WHERE price > (SELECT avg(price) FROM items)", K::Select, &["items"]),
        c("SELECT * FROM t WHERE 100 < total", K::Select, &["t"]),
        c("SELECT * FROM t WHERE delta > -5", K::Select, &["t"]),
        c("SELECT * FROM t WHERE active = true AND hidden = false", K::Select, &["t"]),
        c("SELECT * FROM t WHERE flag = NULL", K::Select, &["t"]),
        c("SELECT * FROM t WHERE discount BETWEEN 0.05 - 0.01 AND 0.07", K::Select, &["t"]),
        c("SELECT * FROM t WHERE o_orderdate >= date '1995-01-01'", K::Select, &["t"]),
        c("SELECT * FROM t WHERE d < date '1995-01-01' + interval '3' month", K::Select, &["t"]),
        c("SELECT * FROM t WHERE d >= timestamp '1995-01-01 00:00:00'", K::Select, &["t"]),
        c("SELECT * FROM t WHERE span > interval '7' day", K::Select, &["t"]),
        c("SELECT * FROM t WHERE lower(name) = 'x'", K::Select, &["t"]),
        c("SELECT * FROM t WHERE x = (1 + 2)", K::Select, &["t"]),
        c("SELECT * FROM t WHERE CASE WHEN a > 0 THEN 1 ELSE 0 END = 1", K::Select, &["t"]),
        c("SELECT * FROM t WHERE cast(a AS int) > 5 AND b = 1", K::Select, &["t"]),
        c("SELECT * FROM t WHERE extract(year FROM d) = 1995 AND b = 1", K::Select, &["t"]),
        c("SELECT * FROM t WHERE >= 3 AND x = 1", K::Select, &["t"]),
        c("SELECT * FROM t WHERE x = (SELECT max(y) FROM u)", K::Select, &["t", "u"]),
        // ----- parameters (dialect-gated markers) ---------------------------
        Case { dialects: GEN, ..c("SELECT * FROM t WHERE id = ?", K::Select, &["t"]) },
        Case { dialects: PG, ..c("SELECT * FROM t WHERE id = $1", K::Select, &["t"]) },
        Case { dialects: TS, ..c("SELECT * FROM t WHERE id = @p", K::Select, &["t"]) },
        Case { dialects: BQ, ..c("SELECT * FROM t WHERE ts > @start", K::Select, &["t"]) },
        // ----- aggregation --------------------------------------------------
        c("SELECT region, sum(total) FROM orders GROUP BY region", K::Select, &["orders"]),
        c("SELECT region, count(*) FROM orders GROUP BY region HAVING count(*) > 10", K::Select, &["orders"]),
        c("SELECT a, b, sum(c) FROM t GROUP BY a, b", K::Select, &["t"]),
        c("SELECT a, b, sum(c) FROM t GROUP BY ROLLUP (a, b)", K::Select, &["t"]),
        c("SELECT a, sum(c) FROM t GROUP BY CUBE (a)", K::Select, &["t"]),
        c("SELECT avg(x), min(x), max(x), stddev(x) FROM samples", K::Select, &["samples"]),
        c("SELECT count(DISTINCT user_id) FROM events", K::Select, &["events"]),
        c("SELECT g, sum(v) FROM t GROUP BY g HAVING sum(v) >= 100 AND count(*) < 5", K::Select, &["t"]),
        c("SELECT g, avg(v) FROM t GROUP BY g HAVING avg(v) > (SELECT avg(v) FROM t)", K::Select, &["t"]),
        c("SELECT g FROM t GROUP BY g HAVING min(v) IS NOT NULL", K::Select, &["t"]),
        c("SELECT variance(v) FROM t GROUP BY k HAVING variance(v) < 2", K::Select, &["t"]),
        c("SELECT o_orderpriority, count(*) FROM orders WHERE o_orderdate >= date '1993-07-01' GROUP BY o_orderpriority ORDER BY o_orderpriority", K::Select, &["orders"]),
        // ----- ordering and limits ------------------------------------------
        c("SELECT a FROM t ORDER BY a", K::Select, &["t"]),
        c("SELECT a FROM t ORDER BY a DESC, b ASC", K::Select, &["t"]),
        c("SELECT a FROM t ORDER BY a NULLS LAST", K::Select, &["t"]),
        c("SELECT a FROM t ORDER BY 1", K::Select, &["t"]),
        c("SELECT a FROM t LIMIT 10", K::Select, &["t"]),
        c("SELECT a FROM t LIMIT 10 OFFSET 5", K::Select, &["t"]),
        c("SELECT a FROM t ORDER BY a OFFSET 5 ROWS", K::Select, &["t"]),
        c("SELECT a FROM t ORDER BY a FETCH FIRST 5 ROWS ONLY", K::Select, &["t"]),
        // ----- CTEs ---------------------------------------------------------
        Case { ctes: &["c"], ..c("WITH c AS (SELECT * FROM base) SELECT * FROM c", K::Select, &["base"]) },
        Case { ctes: &["c"], ..c("WITH c AS (SELECT * FROM base) SELECT * FROM c WHERE c.v > 1", K::Select, &["base"]) },
        Case { ctes: &["c1", "c2"], ..c("WITH c1 AS (SELECT * FROM b1), c2 AS (SELECT * FROM b2) SELECT * FROM c1 JOIN c2 ON c1.k = c2.k", K::Select, &["b1", "b2"]) },
        Case { ctes: &["c1", "c2", "c3"], ..c("WITH c1 AS (SELECT * FROM b1), c2 AS (SELECT * FROM c1), c3 AS (SELECT * FROM c2) SELECT * FROM c3", K::Select, &["b1"]) },
        Case { ctes: &["r"], ..c("WITH RECURSIVE r AS (SELECT 1 AS n UNION ALL SELECT n + 1 FROM r WHERE n < 10) SELECT * FROM r", K::Select, &[]) },
        Case { ctes: &["c"], ..c("WITH c (a, b) AS (SELECT x, y FROM t) SELECT * FROM c", K::Select, &["t"]) },
        Case { ctes: &["inner_c", "outer_c"], ..c("WITH outer_c AS (WITH inner_c AS (SELECT * FROM t) SELECT * FROM inner_c) SELECT * FROM outer_c", K::Select, &["t"]) },
        Case { ctes: &["c"], ..c("WITH c AS (SELECT * FROM t) SELECT * FROM c c1 JOIN c c2 ON c1.k = c2.k", K::Select, &["t"]) },
        Case { ctes: &["revenue"], ..c("WITH revenue AS (SELECT l_suppkey, sum(l_extendedprice) AS total FROM lineitem GROUP BY l_suppkey) SELECT * FROM supplier, revenue WHERE s_suppkey = l_suppkey", K::Select, &["lineitem", "supplier"]) },
        Case { ctes: &["c"], ..c("WITH c AS (SELECT k FROM t1 UNION SELECT k FROM t2) SELECT * FROM c", K::Select, &["t1", "t2"]) },
        // ----- set operations -----------------------------------------------
        Case { set_ops: 1, ..c("SELECT a FROM t UNION SELECT a FROM u", K::Select, &["t", "u"]) },
        Case { set_ops: 1, ..c("SELECT a FROM t UNION ALL SELECT a FROM u", K::Select, &["t", "u"]) },
        Case { set_ops: 1, ..c("SELECT a FROM t UNION DISTINCT SELECT a FROM u", K::Select, &["t", "u"]) },
        Case { set_ops: 1, ..c("SELECT a FROM t INTERSECT SELECT a FROM u", K::Select, &["t", "u"]) },
        Case { set_ops: 1, ..c("SELECT a FROM t EXCEPT SELECT a FROM u", K::Select, &["t", "u"]) },
        Case { set_ops: 1, ..c("SELECT 1 UNION SELECT 2", K::Select, &[]) },
        Case { set_ops: 1, ..c("SELECT a FROM t EXCEPT (SELECT a FROM u)", K::Select, &["t", "u"]) },
        Case { set_ops: 1, ..c("(SELECT a FROM t) UNION SELECT a FROM u", K::Select, &["t", "u"]) },
        Case { set_ops: 1, ..c("(SELECT a FROM t) UNION ALL (SELECT a FROM u)", K::Select, &["t", "u"]) },
        Case { set_ops: 1, ..c("SELECT a FROM t WHERE a > 0 UNION SELECT a FROM u WHERE a < 0 ORDER BY a", K::Select, &["t", "u"]) },
        // multi-operand chains and nesting
        Case { set_ops: 2, ..c("SELECT a FROM t1 UNION SELECT a FROM t2 UNION SELECT a FROM t3", K::Select, &["t1", "t2", "t3"]) },
        Case { set_ops: 2, ..c("SELECT a FROM t1 UNION ALL SELECT a FROM t2 EXCEPT SELECT a FROM t3", K::Select, &["t1", "t2", "t3"]) },
        Case { set_ops: 2, ..c("SELECT a FROM t1 UNION (SELECT a FROM t2 INTERSECT SELECT a FROM t3)", K::Select, &["t1", "t2", "t3"]) },
        Case { set_ops: 2, ..c("((SELECT a FROM t1) UNION ALL (SELECT a FROM t2)) EXCEPT SELECT a FROM t3", K::Select, &["t1", "t2", "t3"]) },
        // ----- derived tables and subqueries --------------------------------
        c("SELECT * FROM (SELECT a FROM t) x", K::Select, &["t"]),
        c("SELECT * FROM (SELECT a FROM t) AS x", K::Select, &["t"]),
        c("SELECT * FROM (SELECT a, b FROM t) x (c1, c2)", K::Select, &["t"]),
        c("SELECT * FROM (SELECT a FROM t) x JOIN (SELECT b FROM u) y ON x.a = y.b", K::Select, &["t", "u"]),
        c("SELECT * FROM (SELECT * FROM (SELECT a FROM deep) m) o", K::Select, &["deep"]),
        Case { ctes: &["c"], ..c("SELECT * FROM (WITH c AS (SELECT * FROM t) SELECT * FROM c) x", K::Select, &["t"]) },
        c("SELECT * FROM t JOIN (SELECT k, count(*) AS n FROM u GROUP BY k) agg ON t.k = agg.k", K::Select, &["t", "u"]),
        c("SELECT * FROM (SELECT a FROM t WHERE a > 0) x WHERE x.a < 10", K::Select, &["t"]),
        c("SELECT * FROM (VALUES (1, 2), (3, 4)) v", K::Select, &[]),
        c("SELECT avg(sub.total) FROM (SELECT o_custkey, sum(o_totalprice) AS total FROM orders GROUP BY o_custkey) sub", K::Select, &["orders"]),
        // ----- DML / DDL ----------------------------------------------------
        Case { writes: &["t"], ..c("INSERT INTO t VALUES (1, 'x')", K::Insert, &[]) },
        Case { writes: &["t"], ..c("INSERT INTO t (a, b) VALUES (1, 2)", K::Insert, &[]) },
        Case { writes: &["sink"], ..c("INSERT INTO sink SELECT * FROM src", K::Insert, &["src"]) },
        Case { writes: &["sink"], ..c("INSERT INTO sink SELECT * FROM s1 JOIN s2 ON s1.k = s2.k", K::Insert, &["s1", "s2"]) },
        Case { writes: &["accounts"], ..c("UPDATE accounts SET balance = 0 WHERE id = 7", K::Update, &[]) },
        Case { writes: &["t"], ..c("UPDATE t SET x = 1 WHERE k IN (SELECT k FROM u)", K::Update, &["u"]) },
        Case { writes: &["t"], ..c("DELETE FROM t WHERE created < date '2020-01-01'", K::Delete, &[]) },
        Case { writes: &["t"], ..c("DELETE FROM t WHERE k IN (SELECT k FROM dead)", K::Delete, &["dead"]) },
        Case { writes: &["t"], ..c("CREATE TABLE t (a int, b varchar)", K::CreateTable, &[]) },
        Case { writes: &["copy1"], ..c("CREATE TABLE copy1 AS SELECT * FROM base", K::CreateTable, &["base"]) },
        Case { writes: &["copy2"], ctes: &["c"], ..c("CREATE TABLE copy2 AS WITH c AS (SELECT * FROM base) SELECT * FROM c", K::CreateTable, &["base"]) },
        Case { views: &["v"], ..c("CREATE VIEW v AS SELECT * FROM base WHERE x > 0", K::CreateView, &["base"]) },
        Case { views: &["v2"], ..c("CREATE OR REPLACE VIEW v2 AS SELECT a, b FROM base", K::CreateView, &["base"]) },
        Case { views: &["rollup_v"], ..c("CREATE VIEW rollup_v AS SELECT region, sum(total) FROM orders GROUP BY region", K::CreateView, &["orders"]) },
        Case { writes: &["old_t"], ..c("DROP TABLE old_t", K::Drop, &[]) },
        Case { writes: &["old_v"], ..c("DROP VIEW old_v", K::Drop, &[]) },
        Case { writes: &["lineitem"], ..c("COPY lineitem FROM 's3://bucket/file.csv'", K::Copy, &[]) },
        c("SHOW TABLES", K::Show, &[]),
        c("SET warehouse = 'XL'", K::Set, &[]),
        c("USE db1", K::Set, &[]),
        c("CREATE INDEX idx ON t (col)", K::Other, &["idx"]),
        c("EXPLAIN SELECT 1", K::Other, &[]),
        c("BEGIN", K::Other, &[]),
        c("MERGE INTO tgt USING src ON tgt.k = src.k", K::Other, &[]),
        // ----- dialect-specific forms ---------------------------------------
        Case { dialects: TS, ..c("SELECT TOP 10 * FROM orders ORDER BY total DESC", K::Select, &["orders"]) },
        Case { dialects: TS, ..c("SELECT TOP 5 name FROM [dbo].[orders]", K::Select, &["orders"]) },
        Case { dialects: SNOW, ..c("SELECT name FROM users WHERE name ILIKE '%ann%'", K::Select, &["users"]) },
        Case { dialects: SNOW, ..c("SELECT * FROM t QUALIFY row_number() OVER (PARTITION BY k ORDER BY ts DESC) = 1", K::Select, &["t"]) },
        Case { dialects: SNOW, ..c("SELECT k, v, rank() OVER (ORDER BY v) rnk FROM t QUALIFY rnk <= 3", K::Select, &["t"]) },
        Case { dialects: SNOW, ..c("SELECT * FROM \"Schema\".\"Orders\"", K::Select, &["orders"]) },
        Case { dialects: BQ, ..c("SELECT * EXCEPT(secret) FROM events", K::Select, &["events"]) },
        Case { dialects: BQ, ..c("SELECT * EXCEPT(a, b) FROM ds.events WHERE x = 1", K::Select, &["events"]) },
        Case { dialects: BQ, ..c("SELECT * FROM `proj.ds.events` WHERE x = 1", K::Select, &["proj.ds.events"]) },
        Case { dialects: MY, ..c("SELECT * FROM a STRAIGHT_JOIN b ON a.k = b.k", K::Select, &["a", "b"]) },
        Case { dialects: MY, ..c("SELECT * FROM `db`.`orders` # comment", K::Select, &["orders"]) },
        Case { dialects: PG, ..c("SELECT * FROM t WHERE a::int > 5 AND b = 2", K::Select, &["t"]) },
        // ----- adversarial / recovery ---------------------------------------
        c("?????", K::Other, &[]),
        c("; ; ;", K::Other, &[]),
        c("SELECT * FROM t WHERE ((((a = 1))))", K::Select, &["t"]),
        c("SELECT a FROM t WHERE (a = 1", K::Select, &["t"]),
        c("SELECT a FROM t WHERE a = 1)))", K::Select, &["t"]),
        c("SELECT * FROM t WHERE garbage !!! more garbage", K::Select, &["t"]),
    ]
}

fn dialects_for(case: &Case) -> &'static [Dialect] {
    if case.dialects.is_empty() {
        const ALL: [Dialect; 6] = [
            Dialect::Generic,
            Dialect::TSql,
            Dialect::Snowflake,
            Dialect::Postgres,
            Dialect::MySql,
            Dialect::BigQuery,
        ];
        &ALL
    } else {
        case.dialects
    }
}

/// Parse the whole corpus once (used by both the conformance assertions
/// and the coverage gate).
fn run_corpus(check: bool) -> usize {
    let mut parses = 0usize;
    for (i, case) in cases().iter().enumerate() {
        for &d in dialects_for(case) {
            let shape = parse_query(case.sql, d);
            parses += 1;
            if !check {
                continue;
            }
            let ctx = format!("case {i} [{}] {:?}", d.name(), case.sql);
            assert_eq!(shape.kind, Some(case.kind), "kind: {ctx}");
            assert_eq!(shape.set_ops, case.set_ops, "set_ops: {ctx}");
            let lin = shape.lineage();
            assert_eq!(lin.reads, case.reads, "lineage reads: {ctx}");
            assert_eq!(lin.writes, case.writes, "lineage writes: {ctx}");
            assert_eq!(lin.views, case.views, "lineage views: {ctx}");
            assert_eq!(lin.ctes, case.ctes, "lineage ctes: {ctx}");
            // distinct_tables invariants hold on every corpus shape.
            let dt = shape.distinct_tables();
            assert!(dt.windows(2).all(|w| w[0] < w[1]), "distinct_tables: {ctx}");
        }
    }
    parses
}

#[test]
fn corpus_is_at_least_120_cases() {
    assert!(
        cases().len() >= 120,
        "conformance corpus shrank to {} cases",
        cases().len()
    );
}

#[test]
fn conformance_corpus_passes() {
    let parses = run_corpus(true);
    assert!(parses >= 6 * 120, "corpus ran only {parses} parses");
}

/// Lineage keys are deterministic and CTE-free for the whole corpus.
#[test]
fn corpus_lineage_keys_stable() {
    for case in cases() {
        for &d in dialects_for(&case) {
            let a = parse_query(case.sql, d).lineage();
            let b = parse_query(case.sql, d).lineage();
            assert_eq!(a.key(), b.key(), "{:?}", case.sql);
            for cte in &a.ctes {
                assert!(!a.reads.contains(cte), "CTE {cte} leaked into reads");
            }
        }
    }
}

/// The gate: the corpus must exercise at least [`COVERAGE_THRESHOLD`] of
/// the parser's grammar productions. Prints the measured coverage and
/// every production never taken, so additions to the grammar that the
/// corpus misses fail loudly here.
#[test]
fn production_coverage_gate() {
    run_corpus(false);
    // The depth-limit production needs adversarial nesting the literal
    // corpus strings keep out of the table above.
    let deep = format!(
        "SELECT * FROM t WHERE {}a = 1{}",
        "(".repeat(MAX_PARSE_DEPTH + 8),
        ")".repeat(MAX_PARSE_DEPTH + 8)
    );
    parse_query(&deep, Dialect::Generic);
    let mut nested = String::from("SELECT 1");
    for _ in 0..MAX_PARSE_DEPTH + 8 {
        nested = format!("SELECT * FROM ({nested}) x");
    }
    parse_query(&nested, Dialect::Generic);

    let (frac, missed) = coverage::coverage();
    println!(
        "parser production coverage: {:.1}% ({} of {} productions), threshold {:.0}%",
        frac * 100.0,
        coverage::COUNT - missed.len(),
        coverage::COUNT,
        COVERAGE_THRESHOLD * 100.0
    );
    if !missed.is_empty() {
        println!("productions never exercised: {missed:?}");
    }
    assert!(
        frac >= COVERAGE_THRESHOLD,
        "corpus exercises only {:.1}% of parser productions (< {:.0}%); missing: {missed:?}",
        frac * 100.0,
        COVERAGE_THRESHOLD * 100.0
    );
}
