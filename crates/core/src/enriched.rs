//! The enriched query — the hot-path envelope around [`LabeledQuery`].
//!
//! The paper's premise is that *one* learned representation serves every
//! workload-management app, yet a plain [`LabeledQuery`] forces each
//! consumer to re-derive that representation: every classifier and every
//! app re-lexed the SQL and re-embedded the tokens. An
//! [`EnrichedQuery`] carries the derived artifacts alongside the query:
//!
//! * the **normalized token stream**, lexed at most once
//!   ([`std::sync::OnceLock`]-memoized — the "tokenize once per query"
//!   invariant is regression-tested against the lexer's call counter);
//! * the **template fingerprint** (`querc_sql::fingerprint`), derived
//!   from the memoized tokens so it costs no extra lex;
//! * zero or more **embedding vectors**, each tagged with the
//!   [`Embedder::cache_namespace`] that produced it, shared by `Arc` so
//!   a vector computed once at manager ingress fans out to every app
//!   shard for free.
//!
//! Components that only understand labels keep receiving
//! [`LabeledQuery`] — [`EnrichedQuery::into_labeled`] unwraps at the
//! pipeline edge (database sink, training mirror).

use crate::labeled::LabeledQuery;
use querc_embed::Embedder;
use std::sync::{Arc, OnceLock};

/// A [`LabeledQuery`] plus memoized derived artifacts (tokens, template
/// fingerprint, embedding vectors). See the module docs.
///
/// The SQL text is treated as immutable once any artifact has been
/// derived; labels remain freely mutable through
/// [`EnrichedQuery::set`].
#[derive(Debug)]
pub struct EnrichedQuery {
    query: LabeledQuery,
    tokens: OnceLock<Vec<String>>,
    fingerprint: OnceLock<u64>,
    /// `(cache namespace, vector)` pairs — at most a handful (one per
    /// embedder that has seen this query), so a flat vec beats a map.
    vectors: Vec<(u64, Arc<Vec<f32>>)>,
}

impl EnrichedQuery {
    /// Wrap a labeled query; artifacts are derived lazily.
    pub fn new(query: LabeledQuery) -> EnrichedQuery {
        EnrichedQuery {
            query,
            tokens: OnceLock::new(),
            fingerprint: OnceLock::new(),
            vectors: Vec::new(),
        }
    }

    /// A fresh, unlabeled query from SQL text.
    pub fn from_sql(sql: impl Into<String>) -> EnrichedQuery {
        EnrichedQuery::new(LabeledQuery::new(sql))
    }

    /// The raw SQL text.
    pub fn sql(&self) -> &str {
        &self.query.sql
    }

    /// First value of a label, if attached.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.query.get(name)
    }

    /// Attach or replace a label.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.query.set(name, value);
    }

    /// Borrow the wrapped labeled query.
    pub fn labeled(&self) -> &LabeledQuery {
        &self.query
    }

    /// Mutably borrow the wrapped labeled query (e.g. to apply an
    /// [`crate::apps::AppOutput`]). Labels are free to change; the SQL
    /// text must not be replaced once tokens/fingerprint/vectors have
    /// been derived, or the memoized artifacts go stale.
    pub fn labeled_mut(&mut self) -> &mut LabeledQuery {
        &mut self.query
    }

    /// Unwrap into the plain labeled query (pipeline edge: database
    /// sink, training mirror), dropping the derived artifacts.
    pub fn into_labeled(self) -> LabeledQuery {
        self.query
    }

    /// The normalized token stream, lexed on first use and memoized —
    /// every later consumer (fingerprint, classifiers, apps) reads the
    /// same buffer instead of re-parsing the SQL.
    pub fn tokens(&self) -> &[String] {
        self.tokens
            .get_or_init(|| querc_embed::sql_tokens(&self.query.sql))
    }

    /// The template fingerprint (literals stripped, case folded) — the
    /// embed plane's cache key. Derived from the memoized tokens, so a
    /// query is still lexed at most once.
    pub fn fingerprint(&self) -> u64 {
        *self
            .fingerprint
            .get_or_init(|| querc_sql::fingerprint_tokens(self.tokens()))
    }

    /// The vector computed under `namespace`
    /// ([`Embedder::cache_namespace`]), if any.
    pub fn vector_for(&self, namespace: u64) -> Option<&Arc<Vec<f32>>> {
        self.vectors
            .iter()
            .find(|(ns, _)| *ns == namespace)
            .map(|(_, v)| v)
    }

    /// Whether any embedding vector has been attached (diagnostics).
    pub fn has_vector(&self) -> bool {
        !self.vectors.is_empty()
    }

    /// Attach the vector computed under `namespace`, replacing any
    /// previous vector for the same namespace.
    pub fn set_vector(&mut self, namespace: u64, vector: Arc<Vec<f32>>) {
        match self.vectors.iter_mut().find(|(ns, _)| *ns == namespace) {
            Some(slot) => slot.1 = vector,
            None => self.vectors.push((namespace, vector)),
        }
    }

    /// Vectors for a whole chunk under `embedder`: cached vectors are
    /// reused, the rest are embedded in **one**
    /// [`Embedder::embed_batch`] call from the memoized token streams.
    /// `out[i]` is the vector of `batch[i]`, bit-identical to
    /// `embedder.embed(batch[i].tokens())`.
    pub fn vectors(batch: &[EnrichedQuery], embedder: &dyn Embedder) -> Vec<Arc<Vec<f32>>> {
        let ns = embedder.cache_namespace();
        let mut out: Vec<Option<Arc<Vec<f32>>>> =
            batch.iter().map(|q| q.vector_for(ns).cloned()).collect();
        let missing: Vec<usize> = (0..batch.len()).filter(|&i| out[i].is_none()).collect();
        if !missing.is_empty() {
            let docs: Vec<Vec<String>> = missing
                .iter()
                .map(|&i| batch[i].tokens().to_vec())
                .collect();
            for (&i, v) in missing.iter().zip(embedder.embed_batch(&docs)) {
                out[i] = Some(Arc::new(v));
            }
        }
        out.into_iter().map(|v| v.expect("filled above")).collect()
    }

    /// [`EnrichedQuery::vectors`], but newly-computed vectors are also
    /// attached back onto the queries, so a later consumer sharing the
    /// same embedder namespace (another classifier, the app) reuses them
    /// instead of re-embedding.
    pub fn vectors_memo(
        batch: &mut [EnrichedQuery],
        embedder: &dyn Embedder,
    ) -> Vec<Arc<Vec<f32>>> {
        let ns = embedder.cache_namespace();
        let vectors = Self::vectors(batch, embedder);
        for (q, v) in batch.iter_mut().zip(&vectors) {
            if q.vector_for(ns).is_none() {
                q.set_vector(ns, Arc::clone(v));
            }
        }
        vectors
    }
}

impl From<LabeledQuery> for EnrichedQuery {
    fn from(query: LabeledQuery) -> EnrichedQuery {
        EnrichedQuery::new(query)
    }
}

impl Clone for EnrichedQuery {
    fn clone(&self) -> EnrichedQuery {
        let tokens = OnceLock::new();
        if let Some(t) = self.tokens.get() {
            let _ = tokens.set(t.clone());
        }
        let fingerprint = OnceLock::new();
        if let Some(f) = self.fingerprint.get() {
            let _ = fingerprint.set(*f);
        }
        EnrichedQuery {
            query: self.query.clone(),
            tokens,
            fingerprint,
            vectors: self.vectors.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_embed::BagOfTokens;

    #[test]
    fn tokens_are_lexed_exactly_once() {
        let q = EnrichedQuery::from_sql("SELECT X FROM T WHERE y = 5");
        let before = querc_sql::lex_calls_this_thread();
        assert_eq!(
            q.tokens(),
            ["select", "x", "from", "t", "where", "y", "=", "<num>"]
        );
        let _ = q.tokens();
        let _ = q.fingerprint();
        let _ = q.fingerprint();
        assert_eq!(
            querc_sql::lex_calls_this_thread() - before,
            1,
            "tokens + fingerprint must share a single lex"
        );
    }

    #[test]
    fn fingerprint_matches_the_sql_level_entry_point() {
        let q = EnrichedQuery::from_sql("select a from t where x = 99");
        assert_eq!(
            q.fingerprint(),
            querc_sql::template_fingerprint(
                "select a from t where x = 1",
                querc_sql::Dialect::Generic
            )
        );
    }

    #[test]
    fn vectors_reuse_cached_namespaces_and_embed_the_rest() {
        let bow = BagOfTokens::new(32, true);
        let ns = bow.cache_namespace();
        let mut a = EnrichedQuery::from_sql("select a from t");
        let b = EnrichedQuery::from_sql("select b from u");
        // Pre-attach a sentinel vector for `a`: it must be served as-is.
        let sentinel = Arc::new(vec![9.0f32; 32]);
        a.set_vector(ns, Arc::clone(&sentinel));
        let batch = [a, b];
        let vectors = EnrichedQuery::vectors(&batch, &bow);
        assert!(Arc::ptr_eq(&vectors[0], &sentinel));
        assert_eq!(*vectors[1], bow.embed(batch[1].tokens()));
    }

    #[test]
    fn vectors_memo_attaches_computed_vectors() {
        let bow = BagOfTokens::new(16, false);
        let ns = bow.cache_namespace();
        let mut batch = vec![EnrichedQuery::from_sql("select 1")];
        assert!(batch[0].vector_for(ns).is_none());
        let first = EnrichedQuery::vectors_memo(&mut batch, &bow);
        let cached = batch[0].vector_for(ns).expect("memoized");
        assert!(Arc::ptr_eq(cached, &first[0]));
        // A second pass serves the memoized Arc.
        let second = EnrichedQuery::vectors(&batch, &bow);
        assert!(Arc::ptr_eq(&second[0], &first[0]));
    }

    #[test]
    fn namespaces_do_not_bleed_into_each_other() {
        let uni = BagOfTokens::new(16, false);
        let bi = BagOfTokens::new(16, true);
        let mut batch = vec![EnrichedQuery::from_sql("select a from t join u on a = b")];
        let vu = EnrichedQuery::vectors_memo(&mut batch, &uni);
        let vb = EnrichedQuery::vectors_memo(&mut batch, &bi);
        assert_ne!(*vu[0], *vb[0], "different configs embed differently");
        assert!(Arc::ptr_eq(
            batch[0].vector_for(uni.cache_namespace()).unwrap(),
            &vu[0]
        ));
        assert!(Arc::ptr_eq(
            batch[0].vector_for(bi.cache_namespace()).unwrap(),
            &vb[0]
        ));
    }

    #[test]
    fn clone_preserves_artifacts_and_labels() {
        let mut q = EnrichedQuery::from_sql("select 1");
        q.set("user", "alice");
        let _ = q.fingerprint();
        let c = q.clone();
        assert_eq!(c.get("user"), Some("alice"));
        assert_eq!(c.fingerprint(), q.fingerprint());
        assert_eq!(c.tokens(), q.tokens());
        let lq = c.into_labeled();
        assert_eq!(lq.get("user"), Some("alice"));
    }
}
