//! Silhouette scores — a clustering-quality diagnostic.
//!
//! Not used for K selection in the headline experiment (the paper insists
//! on the simple elbow method) but provided for the ablation comparing K
//! selectors and for sanity-checking the embedding space.

use querc_linalg::ops;

/// Mean silhouette coefficient over all points, in `[-1, 1]`.
///
/// For each point: `s = (b - a) / max(a, b)` where `a` is the mean
/// intra-cluster distance and `b` the mean distance to the nearest other
/// cluster. Points in singleton clusters score 0 by convention. Returns 0
/// if fewer than 2 clusters are populated.
pub fn mean_silhouette(points: &[Vec<f32>], assignments: &[usize]) -> f64 {
    assert_eq!(points.len(), assignments.len());
    let n = points.len();
    if n == 0 {
        return 0.0;
    }
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; k];
    for &a in assignments {
        sizes[a] += 1;
    }
    if sizes.iter().filter(|&&s| s > 0).count() < 2 {
        return 0.0;
    }
    let mut total = 0.0f64;
    for i in 0..n {
        let ci = assignments[i];
        if sizes[ci] <= 1 {
            continue; // singleton: s = 0
        }
        // Mean distance to every cluster.
        let mut dist_sum = vec![0.0f64; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            dist_sum[assignments[j]] += ops::dist(&points[i], &points[j]) as f64;
        }
        let a = dist_sum[ci] / (sizes[ci] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != ci && sizes[c] > 0)
            .map(|c| dist_sum[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_linalg::Pcg32;

    #[test]
    fn perfect_separation_scores_near_one() {
        let mut rng = Pcg32::new(1);
        let mut pts = Vec::new();
        let mut asg = Vec::new();
        for (c, &(cx, cy)) in [(0.0f32, 0.0f32), (100.0, 100.0)].iter().enumerate() {
            for _ in 0..20 {
                pts.push(vec![cx + rng.normal(), cy + rng.normal()]);
                asg.push(c);
            }
        }
        let s = mean_silhouette(&pts, &asg);
        assert!(s > 0.9, "silhouette {s}");
    }

    #[test]
    fn random_assignment_scores_near_zero_or_negative() {
        let mut rng = Pcg32::new(2);
        let pts: Vec<Vec<f32>> = (0..60).map(|_| vec![rng.f32(), rng.f32()]).collect();
        let asg: Vec<usize> = (0..60).map(|_| rng.below_usize(3)).collect();
        let s = mean_silhouette(&pts, &asg);
        assert!(s < 0.2, "silhouette of random labels {s}");
    }

    #[test]
    fn wrong_split_of_one_blob_scores_low() {
        let mut rng = Pcg32::new(3);
        let pts: Vec<Vec<f32>> = (0..40).map(|_| vec![rng.normal(), rng.normal()]).collect();
        let asg: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let s = mean_silhouette(&pts, &asg);
        assert!(s < 0.15, "splitting one blob should score poorly, got {s}");
    }

    #[test]
    fn single_cluster_returns_zero() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        assert_eq!(mean_silhouette(&pts, &[0, 0, 0]), 0.0);
    }

    #[test]
    fn empty_input_returns_zero() {
        assert_eq!(mean_silhouette(&[], &[]), 0.0);
    }
}
