//! Cost-based plan selection with an estimated/true cost split.
//!
//! The optimizer chooses access paths (sequential scan vs index seek) and
//! join strategies (hash vs index nested-loop) by **estimated** cost, then
//! re-prices the *chosen* plan with **true** selectivities. The runtime
//! charges the true cost. When the estimates are accurate the two agree;
//! when they are not (HAVING semi-joins, skewed columns) the optimizer can
//! pick an index plan whose true cost exceeds the plain-scan plan — the
//! regression the paper's Figure 4 shows for TPC-H Q18 under low-budget
//! index recommendations. No query is special-cased anywhere.

use crate::catalog::Catalog;
use crate::index::Index;
use crate::selectivity;
use querc_sql::ast::{Lhs, Predicate, QueryShape, StatementKind};

// ---- cost constants (seconds) -------------------------------------------
// Calibrated so a TPC-H SF1 ~840-query workload with no indexes runs
// ≈ 1200 s, the paper's Fig 3 baseline plateau.

/// Sequential scan, per row.
pub const SEQ_ROW: f64 = 2.0e-7;
/// Row fetch through a secondary index (random I/O), per row.
pub const IDX_ROW: f64 = 1.0e-6;
/// Per-seek B-tree descent.
pub const SEEK_BASE: f64 = 1.5e-5;
/// Hash join build, per row.
pub const HASH_BUILD_ROW: f64 = 4.0e-7;
/// Hash join probe, per row.
pub const HASH_PROBE_ROW: f64 = 2.0e-7;
/// Hash aggregation, per input row.
pub const AGG_ROW: f64 = 1.5e-7;
/// Sort, per row·log2(row).
pub const SORT_ROW: f64 = 2.0e-8;
/// Write amplification for DML, per affected row.
pub const WRITE_ROW: f64 = 2.0e-6;
/// Fraction of input rows surviving a GROUP BY (coarse output model).
pub const GROUP_OUT_FRACTION: f64 = 0.1;
/// Default row count for tables missing from the catalog.
pub const UNKNOWN_TABLE_ROWS: u64 = 1_000;

/// The outcome of planning one query.
#[derive(Debug, Clone)]
pub struct PlanSummary {
    /// Cost the optimizer believed (decision basis).
    pub est_cost: f64,
    /// Cost the chosen plan actually incurs.
    pub true_cost: f64,
    /// Human-readable plan sketch, e.g.
    /// `seek(lineitem via idx_lineitem(l_shipdate)) ⋈nl orders | agg | sort`.
    pub desc: String,
}

/// Per-table planning state.
struct TableNode {
    name: String,
    rows: f64,
    /// Cost of producing this table's filtered rows (est, true).
    access_est: f64,
    access_true: f64,
    /// Cardinality after local predicates + attached HAVING (est, true).
    card_est: f64,
    card_true: f64,
    desc: String,
}

/// Plan a query under an index configuration.
pub fn plan_query(shape: &QueryShape, catalog: &Catalog, indexes: &[Index]) -> PlanSummary {
    match shape.kind {
        Some(StatementKind::Select) | Some(StatementKind::CreateView) | None => {}
        Some(StatementKind::Insert) | Some(StatementKind::Update) | Some(StatementKind::Delete) => {
            return plan_dml(shape, catalog, indexes)
        }
        Some(_) => {
            // DDL / session commands: negligible, constant.
            return PlanSummary {
                est_cost: 1e-3,
                true_cost: 1e-3,
                desc: "utility".into(),
            };
        }
    }

    let tables = distinct_tables(shape);
    if tables.is_empty() {
        return PlanSummary {
            est_cost: 1e-4,
            true_cost: 1e-4,
            desc: "const".into(),
        };
    }

    let nodes: Vec<TableNode> = tables
        .iter()
        .map(|t| plan_access(t, shape, catalog, indexes))
        .collect();

    // Greedy connectivity-aware join order: start from the smallest
    // estimated cardinality, then repeatedly fold in the table that (a)
    // has a join edge to the joined set and (b) minimizes the estimated
    // output cardinality. Tables with no recovered edge join last with a
    // "lost edge" assumption (output = max of the two sides) — our parser
    // is best-effort, and a missing edge usually means an unresolvable
    // column (e.g. a CTE output), not a genuine Cartesian product.
    let mut remaining: Vec<TableNode> = nodes;
    let start = remaining
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.card_est
                .partial_cmp(&b.card_est)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
        .expect("non-empty");
    let first = remaining.remove(start);
    let mut est = first.access_est;
    let mut tru = first.access_true;
    let mut card_est = first.card_est;
    let mut card_true = first.card_true;
    let mut desc = first.desc.clone();
    let mut joined: Vec<String> = vec![first.name.clone()];

    while !remaining.is_empty() {
        // Evaluate every remaining table's resulting cardinality.
        let mut best: Option<(usize, f64, bool)> = None; // (idx, out_card, connected)
        for (i, node) in remaining.iter().enumerate() {
            let edge = join_edge_between(shape, &joined, &node.name);
            let connected = edge.is_some();
            let out = match &edge {
                Some((_, right_col)) => {
                    let key_ndv = catalog
                        .column(&node.name, right_col)
                        .map(|s| s.ndv as f64)
                        .unwrap_or((node.rows / 10.0).max(1.0));
                    (card_est * node.card_est / key_ndv).max(1.0)
                }
                None => card_est.max(node.card_est),
            };
            let better = match &best {
                None => true,
                Some((_, bo, bc)) => (connected && !bc) || (connected == *bc && out < *bo),
            };
            if better {
                best = Some((i, out, connected));
            }
        }
        let (idx, _, _) = best.expect("non-empty remaining");
        let node = remaining.remove(idx);
        let edge = join_edge_between(shape, &joined, &node.name);
        let key_ndv = edge
            .as_ref()
            .and_then(|(_, right_col)| catalog.column(&node.name, right_col))
            .map(|s| s.ndv as f64)
            .unwrap_or((node.rows / 10.0).max(1.0));

        // Option A: hash join (pay the table's access cost + build/probe).
        let hash_est = node.access_est
            + HASH_BUILD_ROW * card_est.min(node.card_est)
            + HASH_PROBE_ROW * card_est.max(node.card_est);
        let hash_true = node.access_true
            + HASH_BUILD_ROW * card_true.min(node.card_true)
            + HASH_PROBE_ROW * card_true.max(node.card_true);

        // Option B: index nested-loop into the new table (skip its scan).
        // Matches per probe follow the table's *filtered* cardinality, in
        // both estimated and true flavours.
        let nl = edge.as_ref().and_then(|(_, right_col)| {
            indexes
                .iter()
                .find(|ix| ix.serves(&node.name, right_col))
                .map(|ix| {
                    let matches_est = (node.card_est / key_ndv).max(1.0);
                    let matches_true = (node.card_true / key_ndv).max(1.0);
                    let probe_est = SEEK_BASE + matches_est * IDX_ROW;
                    let probe_true = SEEK_BASE + matches_true * IDX_ROW;
                    (card_est * probe_est, card_true * probe_true, ix)
                })
        });

        let (j_est, j_true, j_desc) = match nl {
            Some((nl_est, nl_true, ix)) if nl_est < hash_est => {
                (nl_est, nl_true, format!("⋈nl[{ix}] {}", node.name))
            }
            _ => (hash_est, hash_true, format!("⋈hash {}", node.desc)),
        };
        est += j_est;
        tru += j_true;

        // Output cardinality: containment assumption on edges, lost-edge
        // max() fallback otherwise.
        if edge.is_some() {
            card_est = (card_est * node.card_est / key_ndv).max(1.0);
            card_true = (card_true * node.card_true / key_ndv).max(1.0);
        } else {
            card_est = card_est.max(node.card_est);
            card_true = card_true.max(node.card_true);
        }
        desc = format!("{desc} {j_desc}");
        joined.push(node.name.clone());
    }

    // Aggregation.
    let mut out_est = card_est;
    let mut out_true = card_true;
    if !shape.group_by.is_empty() || !shape.aggregates.is_empty() {
        est += card_est * AGG_ROW;
        tru += card_true * AGG_ROW;
        if !shape.group_by.is_empty() {
            out_est = (card_est * GROUP_OUT_FRACTION).max(1.0);
            out_true = (card_true * GROUP_OUT_FRACTION).max(1.0);
        } else {
            out_est = 1.0;
            out_true = 1.0;
        }
        desc = format!("{desc} | agg");
    }

    // Sort for ORDER BY.
    if !shape.order_by.is_empty() && out_est > 1.0 {
        est += out_est * out_est.log2().max(1.0) * SORT_ROW;
        tru += out_true * out_true.log2().max(1.0) * SORT_ROW;
        desc = format!("{desc} | sort");
    }

    PlanSummary {
        est_cost: est,
        true_cost: tru,
        desc,
    }
}

/// Access-path selection for one table.
fn plan_access(table: &str, shape: &QueryShape, catalog: &Catalog, indexes: &[Index]) -> TableNode {
    let rows = catalog
        .table(table)
        .map(|t| t.rows)
        .unwrap_or(UNKNOWN_TABLE_ROWS) as f64;

    let local: Vec<&Predicate> = shape
        .predicates
        .iter()
        .filter(|p| predicate_table(p, shape, catalog).as_deref() == Some(table))
        .collect();
    let having: Vec<&Predicate> = shape
        .having
        .iter()
        .filter(|p| predicate_table(p, shape, catalog).as_deref() == Some(table))
        .collect();

    // IN/= (subquery) predicates: the parser flattens the subquery, merging
    // its HAVING into `shape.having`. The optimizer still *guesses* the
    // magic constant, but the TRUE semi-join selectivity is the merged
    // HAVING's declared truth (the fraction of join keys surviving the
    // grouped filter) — this is exactly the Q18 fan-in misestimate.
    let subquery_truth: Option<f64> = shape
        .having
        .iter()
        .filter_map(|h| match &h.lhs {
            querc_sql::ast::Lhs::Agg {
                func,
                column: Some(c),
            } => catalog.having_truth(func, &c.column),
            _ => None,
        })
        .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))));

    let (plain, subq): (Vec<&Predicate>, Vec<&Predicate>) = local
        .iter()
        .partition(|p| !matches!(p.rhs, querc_sql::ast::Rhs::Subquery));

    // Combined filter factor (plain predicates + semi-joins + HAVING).
    let (mut sel_est, mut sel_true) = selectivity::conjunction(catalog, table, &plain);
    for p in &subq {
        let e = selectivity::estimate(catalog, table, p);
        sel_est *= e;
        sel_true *= subquery_truth.unwrap_or(e);
    }
    let (h_est, h_true) = selectivity::conjunction(catalog, table, &having);
    sel_est *= h_est;
    sel_true *= h_true;

    // Sequential scan baseline.
    let scan_cost = rows * SEQ_ROW;
    let mut best_est = scan_cost;
    let mut best_true = scan_cost;
    let mut desc = format!("scan({table})");

    // Candidate index seeks: all sargable predicates on one column drive
    // the seek together (range pairs intersect to a window); residual
    // predicates filter afterwards during the fetch.
    let mut by_col: std::collections::BTreeMap<&str, Vec<&Predicate>> = Default::default();
    for p in &local {
        if !p.sargable() {
            continue;
        }
        if let Some(col) = p.column() {
            by_col.entry(col.column.as_str()).or_default().push(p);
        }
    }
    for (col, preds) in by_col {
        let Some(ix) = indexes.iter().find(|ix| ix.serves(table, col)) else {
            continue;
        };
        let (s_est, s_true) = selectivity::column_sel(catalog, table, &preds);
        let cost_est = SEEK_BASE + rows * s_est * IDX_ROW;
        if cost_est < best_est {
            best_est = cost_est;
            best_true = SEEK_BASE + rows * s_true * IDX_ROW;
            desc = format!("seek({table} via {ix})");
        }
    }

    TableNode {
        name: table.to_string(),
        rows,
        access_est: best_est,
        access_true: best_true,
        card_est: (rows * sel_est).max(1.0),
        card_true: (rows * sel_true).max(1.0),
        desc,
    }
}

fn plan_dml(shape: &QueryShape, catalog: &Catalog, indexes: &[Index]) -> PlanSummary {
    // Cost = locating the affected rows (like a select on the target
    // table) + writing them (+ index maintenance).
    let Some(table) = shape.tables.first().map(|t| t.name.clone()) else {
        return PlanSummary {
            est_cost: 1e-3,
            true_cost: 1e-3,
            desc: "dml".into(),
        };
    };
    let node = plan_access(&table, shape, catalog, indexes);
    let n_indexes = indexes.iter().filter(|ix| ix.table == table).count() as f64;
    let write_est = node.card_est * WRITE_ROW * (1.0 + 0.5 * n_indexes);
    let write_true = node.card_true * WRITE_ROW * (1.0 + 0.5 * n_indexes);
    PlanSummary {
        est_cost: node.access_est + write_est,
        true_cost: node.access_true + write_true,
        desc: format!("dml({})", node.desc),
    }
}

/// Distinct table names in first-appearance order.
fn distinct_tables(shape: &QueryShape) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for t in &shape.tables {
        if seen.insert(t.name.clone()) {
            out.push(t.name.clone());
        }
    }
    out
}

/// Which table does a predicate constrain? Resolves qualifiers through the
/// shape's aliases, falls back to catalog column ownership.
fn predicate_table(p: &Predicate, shape: &QueryShape, catalog: &Catalog) -> Option<String> {
    let col = match &p.lhs {
        Lhs::Column(c) => c,
        Lhs::Agg { column, .. } => column.as_ref()?,
    };
    if let Some(q) = &col.qualifier {
        if let Some(t) = shape.resolve_table(q) {
            return Some(t.to_string());
        }
    }
    // Unqualified: catalog ownership, restricted to the query's tables.
    let owner = catalog.table_of_column(&col.column)?;
    if shape.tables.iter().any(|t| t.name == owner) {
        Some(owner.to_string())
    } else {
        None
    }
}

/// Find a join edge connecting the joined set to `new_table`; returns
/// (left column, right column-on-new-table).
fn join_edge_between(
    shape: &QueryShape,
    joined: &[String],
    new_table: &str,
) -> Option<(String, String)> {
    for e in &shape.joins {
        let lt = column_table(&e.left, shape);
        let rt = column_table(&e.right, shape);
        match (lt.as_deref(), rt.as_deref()) {
            (Some(l), Some(r)) if r == new_table && joined.iter().any(|j| j == l) => {
                return Some((e.left.column.clone(), e.right.column.clone()));
            }
            (Some(l), Some(r)) if l == new_table && joined.iter().any(|j| j == r) => {
                return Some((e.right.column.clone(), e.left.column.clone()));
            }
            _ => {}
        }
    }
    None
}

/// Resolve a column reference to its table using aliases, then the TPC-H
/// prefix convention (`l_` → lineitem …), then give up.
fn column_table(col: &querc_sql::ast::ColumnRef, shape: &QueryShape) -> Option<String> {
    if let Some(q) = &col.qualifier {
        if let Some(t) = shape.resolve_table(q) {
            return Some(t.to_string());
        }
    }
    // Prefix convention covers unqualified TPC-H columns.
    let prefixes = [
        ("l_", "lineitem"),
        ("o_", "orders"),
        ("c_", "customer"),
        ("ps_", "partsupp"),
        ("p_", "part"),
        ("s_", "supplier"),
        ("n_", "nation"),
        ("r_", "region"),
    ];
    for (pre, table) in prefixes {
        if col.column.starts_with(pre) && shape.tables.iter().any(|t| t.name == table) {
            return Some(table.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_sql::{parse_query, Dialect};

    fn plan(sql: &str, indexes: &[Index]) -> PlanSummary {
        let shape = parse_query(sql, Dialect::Generic);
        plan_query(&shape, &Catalog::tpch_sf1(), indexes)
    }

    #[test]
    fn full_scan_cost_scales_with_table_size() {
        let big = plan("select * from lineitem", &[]);
        let small = plan("select * from region", &[]);
        assert!(big.true_cost > 100.0 * small.true_cost);
        assert!((big.true_cost - 6_000_000.0 * SEQ_ROW).abs() < 0.1);
    }

    #[test]
    fn selective_index_beats_scan_unselective_does_not() {
        let idx = [Index::new("lineitem", &["l_shipdate"])];
        // One-month range (~1.2% of the domain) → seek wins.
        let narrow = "select * from lineitem where l_shipdate >= date '1995-01-01' and l_shipdate < date '1995-02-01'";
        let with = plan(narrow, &idx);
        let without = plan(narrow, &[]);
        assert!(with.est_cost < without.est_cost, "narrow range should seek");
        assert!(with.desc.contains("seek"), "{}", with.desc);
        // Q1-style 96%-of-table predicate → scan stays.
        let wide = "select * from lineitem where l_shipdate <= date '1998-09-01'";
        let w = plan(wide, &idx);
        assert!(w.desc.contains("scan"), "{}", w.desc);
    }

    #[test]
    fn join_plans_cost_more_than_single_table() {
        let single = plan("select * from orders", &[]);
        let join = plan(
            "select * from customer c, orders o where c.c_custkey = o.o_custkey",
            &[],
        );
        assert!(join.true_cost > single.true_cost);
        assert!(join.desc.contains("hash"));
    }

    #[test]
    fn index_nested_loop_chosen_for_small_outer() {
        let idx = [Index::new("lineitem", &["l_orderkey"])];
        // region (5 rows) is not joinable to lineitem; use a filtered
        // orders instead: tight o_orderdate window → tiny outer.
        let sql = "select * from orders, lineitem where o_orderkey = l_orderkey \
                   and o_orderdate >= date '1995-01-01' and o_orderdate < date '1995-01-05'";
        let with = plan(sql, &idx);
        assert!(with.desc.contains("⋈nl"), "{}", with.desc);
        let without = plan(sql, &[]);
        assert!(with.est_cost < without.est_cost);
    }

    #[test]
    fn q18_regression_mechanism() {
        // The optimizer underestimates the HAVING semi-join fan-in, so
        // given join indexes it picks an NL plan whose TRUE cost exceeds
        // the no-index plan — Fig 4's regression, from the cost model.
        let q18 =
            "select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum(l_quantity) \
             from customer, orders, lineitem \
             where o_orderkey in (select l_orderkey from lineitem group by l_orderkey \
             having sum(l_quantity) > 313) \
             and c_custkey = o_custkey and o_orderkey = l_orderkey \
             group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
             order by o_totalprice desc, o_orderdate limit 100";
        let bad_indexes = [
            Index::new("lineitem", &["l_orderkey"]),
            Index::new("orders", &["o_orderkey"]),
        ];
        let without = plan(q18, &[]);
        let with = plan(q18, &bad_indexes);
        assert!(
            with.est_cost < without.est_cost,
            "optimizer must BELIEVE the index plan is better: {} vs {}",
            with.est_cost,
            without.est_cost
        );
        assert!(
            with.true_cost > 1.5 * without.true_cost,
            "reality must punish it: {} vs {}",
            with.true_cost,
            without.true_cost
        );
    }

    #[test]
    fn accurate_estimates_mean_no_regression() {
        // On a query with accurate stats, any plan the optimizer picks
        // must be no worse in truth than the scan plan.
        let sql = "select * from lineitem where l_shipdate >= date '1998-06-01'";
        let idx = [Index::new("lineitem", &["l_shipdate"])];
        let with = plan(sql, &idx);
        let without = plan(sql, &[]);
        assert!(with.true_cost <= without.true_cost * 1.01);
    }

    #[test]
    fn aggregation_and_sort_add_cost() {
        let flat = plan("select l_quantity from lineitem", &[]);
        let agg = plan(
            "select l_returnflag, sum(l_quantity) from lineitem group by l_returnflag order by l_returnflag",
            &[],
        );
        assert!(agg.true_cost > flat.true_cost);
        assert!(agg.desc.contains("agg"));
    }

    #[test]
    fn dml_costs_writes_and_index_maintenance() {
        let no_idx = plan(
            "update orders set o_comment = 'x' where o_orderkey = 5",
            &[],
        );
        let idx = [
            Index::new("orders", &["o_orderdate"]),
            Index::new("orders", &["o_custkey"]),
        ];
        let with_idx = plan(
            "update orders set o_comment = 'x' where o_orderkey = 5",
            &idx,
        );
        assert!(
            with_idx.true_cost > no_idx.true_cost,
            "index maintenance costs"
        );
    }

    #[test]
    fn unknown_tables_get_default_stats() {
        let p = plan("select * from mystery_table where x = 1", &[]);
        assert!(p.true_cost > 0.0 && p.true_cost < 1.0);
    }

    #[test]
    fn utility_statements_are_cheap() {
        let p = plan("show tables", &[]);
        assert!(p.true_cost < 0.01);
    }

    #[test]
    fn costs_always_positive_and_finite() {
        let w = querc_workloads::TpchWorkload::generate(2, 5);
        let cat = Catalog::tpch_sf1();
        for q in &w.queries {
            let shape = parse_query(&q.sql, Dialect::Generic);
            let p = plan_query(&shape, &cat, &[]);
            assert!(
                p.est_cost.is_finite() && p.est_cost > 0.0,
                "t{}",
                q.template
            );
            assert!(
                p.true_cost.is_finite() && p.true_cost > 0.0,
                "t{}",
                q.template
            );
        }
    }
}
