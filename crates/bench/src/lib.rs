//! # querc-bench
//!
//! The experiment harness regenerating **every table and figure** of the
//! paper's evaluation, plus criterion micro-benchmarks of the building
//! blocks. See DESIGN.md §4 for the experiment index.
//!
//! | artifact | binary | what it shows |
//! |---|---|---|
//! | Figure 3 | `cargo run --release -p querc-bench --bin fig3` | workload runtime vs advisor budget, 5 series |
//! | Figure 4 | `cargo run --release -p querc-bench --bin fig4` | per-query regression under low-budget indexes |
//! | Table 1 | `cargo run --release -p querc-bench --bin table1` | account/user labeling CV accuracy, Doc2Vec vs LSTM |
//! | Table 2 | `cargo run --release -p querc-bench --bin table2` | per-account user-labeling accuracy |
//! | ablation | `cargo run --release -p querc-bench --bin ablation` | summary methods & embedder variants |
//!
//! Each binary prints the paper-shaped rows/series, runs executable shape
//! checks (who wins, where crossovers fall), and exits non-zero when a
//! check fails — EXPERIMENTS.md records the outcomes.

pub mod harness;
