//! Offline stand-in for `parking_lot`: the `Mutex`/`RwLock` API the
//! workspace uses (guards returned directly, no poisoning), implemented
//! over `std::sync`. A poisoned std lock means a panic already happened
//! under the lock; matching parking_lot, we propagate the inner data
//! anyway rather than surfacing a second error.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Default, Debug)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Default, Debug)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
