//! Property tests: clustering invariants on arbitrary point clouds.

use proptest::prelude::*;
use querc_cluster::{kmeans, mean_silhouette, try_nearest_centroid, KMeansConfig};
use querc_linalg::{ops, Pcg32};

fn points_strategy() -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-100.0f32..100.0, 2..5), 2..60).prop_filter(
        "uniform dims",
        |pts| {
            let d = pts[0].len();
            pts.iter().all(|p| p.len() == d)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// K-means always yields valid assignments, k centroids, and SSE that
    /// cannot beat zero or lose to the trivial upper bound.
    #[test]
    fn kmeans_wellformed(pts in points_strategy(), k in 1usize..8, seed in any::<u64>()) {
        let res = kmeans(&pts, &KMeansConfig { k, ..Default::default() }, &mut Pcg32::new(seed));
        prop_assert_eq!(res.assignments.len(), pts.len());
        let kk = res.centroids.len();
        prop_assert!(kk <= k.min(pts.len()) && kk >= 1);
        prop_assert!(res.assignments.iter().all(|&a| a < kk));
        prop_assert!(res.sse >= 0.0 && res.sse.is_finite());
    }

    /// More clusters never makes the best-of-two-seeds SSE dramatically
    /// worse (weak monotonicity modulo local optima).
    #[test]
    fn kmeans_sse_weakly_improves(pts in points_strategy(), seed in any::<u64>()) {
        let run = |k: usize| {
            (0..2)
                .map(|r| {
                    kmeans(&pts, &KMeansConfig { k, ..Default::default() },
                           &mut Pcg32::new(seed ^ r)).sse
                })
                .fold(f64::INFINITY, f64::min)
        };
        prop_assert!(run(4) <= run(1) * 1.001 + 1e-6);
    }

    /// Silhouette is bounded in [-1, 1] for any assignment.
    #[test]
    fn silhouette_bounded(pts in points_strategy(), seed in any::<u64>()) {
        let mut rng = Pcg32::new(seed);
        let asg: Vec<usize> = (0..pts.len()).map(|_| rng.below_usize(3)).collect();
        let s = mean_silhouette(&pts, &asg);
        prop_assert!((-1.0..=1.0).contains(&s), "{s}");
    }

    /// Tie-breaking determinism for centroid assignment: duplicate the
    /// centroid set (every centroid now has an equal-distance twin) and
    /// the winner is still the lowest index — the naive argmin over the
    /// original set — identically across repeated calls.
    #[test]
    fn nearest_centroid_ties_resolve_to_lowest_index(pts in points_strategy(), seed in any::<u64>()) {
        let mut rng = Pcg32::new(seed);
        let n_cents = 1 + rng.below_usize(4.min(pts.len()));
        let cents: Vec<Vec<f32>> = pts.iter().take(n_cents).cloned().collect();
        // Duplicate every centroid: indices n_cents..2*n_cents are twins.
        let mut doubled = cents.clone();
        doubled.extend(cents.iter().cloned());
        for q in pts.iter().take(8) {
            let dists: Vec<f32> = cents.iter().map(|c| ops::sq_dist(q, c)).collect();
            let expect = ops::argmin(&dists);
            let got = try_nearest_centroid(q, &doubled);
            prop_assert_eq!(got, expect); // twin at i+n_cents never outranks i
            prop_assert_eq!(try_nearest_centroid(q, &doubled), got); // stable across calls
            prop_assert!(got.unwrap() < n_cents);
        }
        prop_assert_eq!(try_nearest_centroid(&pts[0], &[]), None);
    }
}
