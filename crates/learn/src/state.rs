//! Serializable snapshots of trained classifiers — the `Persist`
//! capability of the learn crate.
//!
//! Each labeler exposes `to_state`/`from_state` converting between its
//! private in-memory representation and a flat, derive-friendly state
//! struct; [`ClassifierState`] is the type-erased union the snapshot
//! layer stores. Restoration **validates** everything the inference
//! path would otherwise trust blindly — child indices inside the tree
//! arena, label ranges, matrix shapes — so a corrupt-but-parseable
//! state surfaces [`crate::LearnError::BadState`] instead of an index
//! panic (or an infinite traversal loop) at label time.
//!
//! Restored models are inference-ready clones of the originals: they
//! produce bit-identical predictions, but carry default *build*
//! hyperparameters (split strategy, tree depth, SGD schedule), since
//! those only matter to `fit` and snapshots exist to avoid refitting.

use crate::forest::RandomForest;
use crate::knn::Knn;
use crate::linear::SoftmaxRegression;
use crate::tree::DecisionTree;
use crate::LearnError;
use serde::{json, Deserialize, Serialize};

/// One arena node of a [`DecisionTree`], flattened for the derive shim
/// (which has no data-carrying enum support): `leaf` selects which of
/// the field groups is meaningful.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeState {
    /// Leaf node? (`counts` valid) — otherwise a split (`feature`,
    /// `threshold`, `left`, `right` valid).
    pub leaf: bool,
    /// Leaf: per-class sample counts.
    pub counts: Vec<u32>,
    /// Split: feature column compared at this node.
    pub feature: usize,
    /// Split: go left iff `x[feature] <= threshold`.
    pub threshold: f32,
    /// Split: arena index of the left child.
    pub left: usize,
    /// Split: arena index of the right child.
    pub right: usize,
}

/// Snapshot of a [`DecisionTree`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeState {
    /// Number of classes the tree was fitted with.
    pub n_classes: usize,
    /// The node arena, root first.
    pub nodes: Vec<NodeState>,
}

/// Snapshot of a [`RandomForest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestState {
    /// Number of classes the forest was fitted with.
    pub n_classes: usize,
    /// Per-tree snapshots.
    pub trees: Vec<TreeState>,
}

/// Snapshot of a [`Knn`] classifier (training set + index layout).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnState {
    /// Neighborhood size.
    pub k: usize,
    /// `true` = cosine metric, `false` = squared Euclidean.
    pub cosine: bool,
    /// Number of classes.
    pub n_classes: usize,
    /// Training labels, one per stored row.
    pub y: Vec<u32>,
    /// Row dimensionality (`0` only when the training set is empty).
    pub dim: usize,
    /// Training vectors, row-major (`y.len() * dim` floats).
    pub rows: Vec<f32>,
    /// `true` = IVF backend (`nprobe`/`centroids`/`lists` valid),
    /// `false` = exact flat scan.
    pub ivf: bool,
    /// IVF: lists probed per query.
    pub nprobe: usize,
    /// IVF: coarse centroids, row-major (`dim` floats each).
    pub centroids: Vec<f32>,
    /// IVF: `lists[c]` = row ids assigned to centroid `c`.
    pub lists: Vec<Vec<u32>>,
}

/// Snapshot of a [`SoftmaxRegression`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxState {
    /// Weight-matrix rows (classes).
    pub rows: usize,
    /// Weight-matrix columns (`d + 1`; last column is the bias).
    pub cols: usize,
    /// Weights, row-major (`rows * cols` floats).
    pub w: Vec<f32>,
    /// SGD epochs (refit hyperparameter, round-tripped for fidelity).
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularization strength.
    pub l2: f32,
}

/// Type-erased classifier snapshot — what the persistence plane stores
/// for each fitted labeler.
///
/// Serialized as `{"kind": "...", "state": {...}}` (manual impl; the
/// derive shim has no data-carrying enums).
#[derive(Debug, Clone, PartialEq)]
pub enum ClassifierState {
    /// A [`RandomForest`].
    Forest(ForestState),
    /// A single [`DecisionTree`].
    Tree(TreeState),
    /// A [`Knn`].
    Knn(KnnState),
    /// A [`SoftmaxRegression`].
    Softmax(SoftmaxState),
}

impl ClassifierState {
    /// The `kind` tag used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            ClassifierState::Forest(_) => "forest",
            ClassifierState::Tree(_) => "tree",
            ClassifierState::Knn(_) => "knn",
            ClassifierState::Softmax(_) => "softmax",
        }
    }

    /// Rebuild a boxed [`crate::Classifier`] from this snapshot,
    /// validating every index and shape (see module docs).
    pub fn into_classifier(self) -> Result<Box<dyn crate::Classifier>, LearnError> {
        Ok(match self {
            ClassifierState::Forest(s) => Box::new(RandomForest::from_state(s)?),
            ClassifierState::Tree(s) => Box::new(DecisionTree::from_state(s)?),
            ClassifierState::Knn(s) => Box::new(Knn::from_state(s)?),
            ClassifierState::Softmax(s) => Box::new(SoftmaxRegression::from_state(s)?),
        })
    }
}

impl Serialize for ClassifierState {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"kind\":\"");
        out.push_str(self.kind());
        out.push_str("\",\"state\":");
        match self {
            ClassifierState::Forest(s) => s.serialize_json(out),
            ClassifierState::Tree(s) => s.serialize_json(out),
            ClassifierState::Knn(s) => s.serialize_json(out),
            ClassifierState::Softmax(s) => s.serialize_json(out),
        }
        out.push('}');
    }
}

impl Deserialize for ClassifierState {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        let kind = v.field("kind")?.as_str()?;
        let state = v.field("state")?;
        match kind {
            "forest" => Ok(ClassifierState::Forest(ForestState::deserialize_json(
                state,
            )?)),
            "tree" => Ok(ClassifierState::Tree(TreeState::deserialize_json(state)?)),
            "knn" => Ok(ClassifierState::Knn(KnnState::deserialize_json(state)?)),
            "softmax" => Ok(ClassifierState::Softmax(SoftmaxState::deserialize_json(
                state,
            )?)),
            other => Err(json::Error::msg(format!(
                "unknown classifier kind: {other:?}"
            ))),
        }
    }
}

/// Shared helper: reject a bad state with a formatted detail message.
pub(crate) fn bad_state(detail: impl Into<String>) -> LearnError {
    LearnError::BadState {
        detail: detail.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Classifier, ForestConfig, KnnBackend, KnnMetric, TreeConfig};
    use querc_linalg::Pcg32;

    fn blobs(seed: u64, n_per: usize) -> (Vec<Vec<f32>>, Vec<u32>) {
        let mut rng = Pcg32::new(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in [(0.0f32, 0.0f32), (4.0, 4.0), (0.0, 4.0)]
            .iter()
            .enumerate()
        {
            for _ in 0..n_per {
                x.push(vec![cx + rng.normal() * 0.6, cy + rng.normal() * 0.6]);
                y.push(c as u32);
            }
        }
        (x, y)
    }

    fn probes() -> Vec<Vec<f32>> {
        let mut rng = Pcg32::new(99);
        (0..40)
            .map(|_| vec![rng.range_f32(-1.0, 5.0), rng.range_f32(-1.0, 5.0)])
            .collect()
    }

    /// Round-trip through JSON text, the way the snapshot layer does it.
    fn json_round_trip(state: &ClassifierState) -> ClassifierState {
        let mut s = String::new();
        state.serialize_json(&mut s);
        let v = json::parse(&s).expect("state serializes to valid JSON");
        ClassifierState::deserialize_json(&v).expect("state deserializes")
    }

    #[test]
    fn forest_round_trips_bit_identically() {
        let (x, y) = blobs(1, 40);
        let mut f = RandomForest::new(ForestConfig::extra_trees(12));
        f.fit(&x, &y, 3, &mut Pcg32::new(2));
        let state = ClassifierState::Forest(f.to_state());
        let restored = json_round_trip(&state).into_classifier().unwrap();
        for p in probes() {
            assert_eq!(f.predict(&p), restored.predict(&p));
            assert_eq!(f.predict_proba(&p, 3), restored.predict_proba(&p, 3));
        }
    }

    #[test]
    fn tree_round_trips_bit_identically() {
        let (x, y) = blobs(3, 40);
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y, 3, &mut Pcg32::new(4));
        let restored = json_round_trip(&ClassifierState::Tree(t.to_state()))
            .into_classifier()
            .unwrap();
        for p in probes() {
            assert_eq!(t.predict(&p), restored.predict(&p));
        }
    }

    #[test]
    fn knn_round_trips_both_backends() {
        let (x, y) = blobs(5, 30);
        for backend in [
            KnnBackend::Exact,
            KnnBackend::Ivf {
                nlist: 3,
                nprobe: 2,
            },
        ] {
            let mut knn = Knn::new(3, KnnMetric::Euclidean).with_backend(backend);
            knn.fit(&x, &y, 3, &mut Pcg32::new(6));
            let restored = json_round_trip(&ClassifierState::Knn(knn.to_state()))
                .into_classifier()
                .unwrap();
            for p in probes() {
                assert_eq!(knn.predict(&p), restored.predict(&p), "{backend:?}");
            }
        }
    }

    #[test]
    fn softmax_round_trips_bit_identically() {
        let (x, y) = blobs(7, 40);
        let mut m = SoftmaxRegression::default();
        m.fit(&x, &y, 3, &mut Pcg32::new(8));
        let restored = json_round_trip(&ClassifierState::Softmax(m.to_state()))
            .into_classifier()
            .unwrap();
        for p in probes() {
            assert_eq!(m.predict_proba(&p, 3), restored.predict_proba(&p, 3));
        }
    }

    #[test]
    fn export_state_via_trait_object() {
        let (x, y) = blobs(9, 20);
        let mut f = RandomForest::new(ForestConfig::extra_trees(4));
        f.fit(&x, &y, 3, &mut Pcg32::new(10));
        let boxed: Box<dyn Classifier> = Box::new(f);
        let state = boxed.export_state().expect("forests are persistable");
        assert_eq!(state.kind(), "forest");
    }

    #[test]
    fn corrupt_tree_indices_are_rejected_not_looping() {
        // A self-referential split would make `proba` loop forever.
        let evil = TreeState {
            n_classes: 2,
            nodes: vec![NodeState {
                leaf: false,
                counts: Vec::new(),
                feature: 0,
                threshold: 0.5,
                left: 0, // cycle!
                right: 0,
            }],
        };
        assert!(matches!(
            DecisionTree::from_state(evil),
            Err(LearnError::BadState { .. })
        ));
        let oob = TreeState {
            n_classes: 2,
            nodes: vec![NodeState {
                leaf: false,
                counts: Vec::new(),
                feature: 0,
                threshold: 0.5,
                left: 7, // out of the arena
                right: 8,
            }],
        };
        assert!(matches!(
            DecisionTree::from_state(oob),
            Err(LearnError::BadState { .. })
        ));
    }

    #[test]
    fn corrupt_knn_labels_and_shapes_are_rejected() {
        let base = KnnState {
            k: 1,
            cosine: false,
            n_classes: 2,
            y: vec![0, 1],
            dim: 2,
            rows: vec![0.0; 4],
            ivf: false,
            nprobe: 0,
            centroids: Vec::new(),
            lists: Vec::new(),
        };
        let mut label_oob = base.clone();
        label_oob.y[1] = 9; // would index past the vote histogram
        assert!(matches!(
            Knn::from_state(label_oob),
            Err(LearnError::BadState { .. })
        ));
        let mut ragged = base.clone();
        ragged.rows.pop();
        assert!(matches!(
            Knn::from_state(ragged),
            Err(LearnError::BadState { .. })
        ));
        let mut zero_k = base;
        zero_k.k = 0;
        assert!(matches!(
            Knn::from_state(zero_k),
            Err(LearnError::InvalidK { .. })
        ));
    }

    #[test]
    fn corrupt_softmax_shape_is_rejected() {
        let evil = SoftmaxState {
            rows: 3,
            cols: 4,
            w: vec![0.0; 5], // != 12
            epochs: 1,
            lr: 0.1,
            l2: 0.0,
        };
        assert!(matches!(
            SoftmaxRegression::from_state(evil),
            Err(LearnError::BadState { .. })
        ));
    }

    #[test]
    fn unknown_kind_is_a_parse_error() {
        let v = json::parse(r#"{"kind":"magic","state":{}}"#).unwrap();
        assert!(ClassifierState::deserialize_json(&v).is_err());
    }

    #[test]
    fn empty_models_round_trip() {
        let mut f = RandomForest::new(ForestConfig::extra_trees(3));
        f.fit(&[], &[], 2, &mut Pcg32::new(1));
        let r = json_round_trip(&ClassifierState::Forest(f.to_state()))
            .into_classifier()
            .unwrap();
        assert_eq!(r.predict(&[1.0, 2.0]), 0);

        let mut knn = Knn::new(3, KnnMetric::Cosine);
        knn.fit(&[], &[], 2, &mut Pcg32::new(2));
        let r = json_round_trip(&ClassifierState::Knn(knn.to_state()))
            .into_classifier()
            .unwrap();
        assert_eq!(r.predict(&[1.0]), 0);
    }
}
