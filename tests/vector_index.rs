//! Vector-plane parity suite: the new index layer must be a drop-in
//! for the brute-force scans it replaced.
//!
//! * `FlatIndex` ≡ the pre-refactor linear scan, **bit for bit**: same
//!   distance kernels in the same order, so distances compare equal as
//!   raw `u32` bits, and the deterministic `(distance, id)` order
//!   returns exactly the reference neighbor set.
//! * `Knn` with the default exact backend predicts identically to the
//!   historical `Vec<Vec<f32>>` brute force (re-implemented here
//!   verbatim as the reference).
//! * `IvfIndex` holds recall@10 ≥ 0.95 on clustered data — the shape
//!   of an embedded templated workload — while scanning a fraction of
//!   the corpus.
//! * The scalar and AVX2 kernel arms return **identical top-k
//!   orderings with bit-identical distances** across the whole index
//!   plane — forcing either arm through the dispatch override changes
//!   nothing observable.
//! * `Sq8Index` with re-ranking holds recall@10 ≥ 0.95 on the same
//!   clustered regime at a fraction of flat's resident bytes.

use querc_index::simd::{self, Kernel};
use querc_index::{
    FlatIndex, IvfConfig, IvfIndex, Metric, Sq8Config, Sq8Index, VectorIndex, VectorStore,
};
use querc_learn::{Classifier, Knn, KnnMetric};
use querc_linalg::{ops, Pcg32};

/// Gaussian blobs around `centers` — clustered data, IVF's target
/// regime and what embedded SQL templates look like.
fn blobs(n_per: usize, centers: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Pcg32::new(seed);
    let mut pts = Vec::new();
    for _ in 0..centers {
        let center: Vec<f32> = (0..dim).map(|_| rng.normal() * 10.0).collect();
        for _ in 0..n_per {
            pts.push(center.iter().map(|c| c + rng.normal() * 0.5).collect());
        }
    }
    pts
}

/// The pre-refactor brute force: walk the corpus in row order with
/// `ops::sq_dist`, keep the k smallest, ties to the lower row id.
fn reference_knn(corpus: &[Vec<f32>], q: &[f32], k: usize) -> Vec<(u32, f32)> {
    let mut dists: Vec<(u32, f32)> = corpus
        .iter()
        .enumerate()
        .map(|(i, row)| (i as u32, ops::sq_dist(q, row)))
        .collect();
    dists.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    dists.truncate(k);
    dists
}

#[test]
fn flat_index_is_bit_identical_to_brute_force() {
    let corpus = blobs(200, 5, 16, 0xf1a7);
    let flat = FlatIndex::from_rows(&corpus, Metric::Euclidean);
    let mut rng = Pcg32::new(7);
    for _ in 0..50 {
        let q: Vec<f32> = (0..16).map(|_| rng.normal() * 10.0).collect();
        let expect = reference_knn(&corpus, &q, 10);
        let got = flat.search(&q, 10);
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(g.0, e.0, "neighbor ids must match the brute force");
            assert_eq!(
                g.1.to_bits(),
                e.1.to_bits(),
                "distances must be bit-identical, not approximately equal"
            );
        }
    }
}

#[test]
fn flat_search_batch_is_the_single_path_verbatim() {
    let corpus = blobs(150, 4, 8, 0xba7c);
    let flat = FlatIndex::from_rows(&corpus, Metric::Euclidean);
    let mut rng = Pcg32::new(8);
    let queries: Vec<Vec<f32>> = (0..20)
        .map(|_| (0..8).map(|_| rng.normal() * 10.0).collect())
        .collect();
    let refs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
    let batched = flat.search_batch(&refs, 7);
    for (q, hits) in refs.iter().zip(&batched) {
        assert_eq!(*hits, flat.search(q, 7));
    }
}

#[test]
fn knn_exact_backend_matches_the_old_brute_force_classifier() {
    // The historical Knn::predict vote, computed from the k nearest:
    // returns the per-class counts so the test can distinguish the
    // determinate case (unique majority — the old code and the new one
    // must agree exactly) from a vote tie, where the old
    // `max_by_key` happened to keep the *highest* tied class and the
    // new rule deliberately picks the *lowest* (the documented
    // determinism contract) — asserting byte equality there would pin
    // the old ambiguity, not the behavior.
    fn old_votes(x: &[Vec<f32>], y: &[u32], n_classes: usize, k: usize, q: &[f32]) -> Vec<u32> {
        let mut dists: Vec<(f32, u32)> = x
            .iter()
            .zip(y)
            .map(|(xi, &yi)| (ops::sq_dist(q, xi), yi))
            .collect();
        let k = k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut votes = vec![0u32; n_classes.max(1)];
        for &(_, label) in &dists[..k] {
            votes[label as usize] += 1;
        }
        votes
    }

    let x = blobs(80, 4, 12, 0x01d0);
    let y: Vec<u32> = (0..x.len()).map(|i| (i / 80) as u32).collect();
    let mut knn = Knn::new(5, KnnMetric::Euclidean);
    knn.fit(&x, &y, 4, &mut Pcg32::new(1));
    let mut rng = Pcg32::new(2);
    let mut determinate = 0;
    for _ in 0..60 {
        let q: Vec<f32> = (0..12).map(|_| rng.normal() * 10.0).collect();
        let votes = old_votes(&x, &y, 4, 5, &q);
        let max = *votes.iter().max().unwrap();
        let winners: Vec<u32> = (0..votes.len() as u32)
            .filter(|&c| votes[c as usize] == max)
            .collect();
        let got = knn.predict(&q);
        if winners.len() == 1 {
            determinate += 1;
            assert_eq!(
                got, winners[0],
                "index-backed kNN must predict exactly as the old brute force"
            );
        } else {
            assert_eq!(
                got, winners[0],
                "on a vote tie the new rule picks the lowest tied class"
            );
        }
    }
    assert!(
        determinate >= 50,
        "parity needs mostly tie-free queries to mean anything, got {determinate}/60"
    );
}

/// recall@k of `got` against exact ground truth `expect` (id overlap).
fn recall(got: &[(u32, f32)], expect: &[(u32, f32)]) -> f64 {
    let truth: std::collections::HashSet<u32> = expect.iter().map(|h| h.0).collect();
    got.iter().filter(|h| truth.contains(&h.0)).count() as f64 / expect.len() as f64
}

#[test]
fn ivf_recall_at_10_on_clustered_data() {
    let corpus = blobs(125, 40, 16, 0x1ecf); // 5 000 vectors, 40 clusters
    let store = VectorStore::from_rows(&corpus);
    let flat = FlatIndex::new(store.clone(), Metric::Euclidean);
    let ivf = IvfIndex::build(
        store,
        Metric::Euclidean,
        &IvfConfig {
            nlist: 64,
            nprobe: 8,
            ..Default::default()
        },
    );
    let mut rng = Pcg32::new(3);
    // Queries near the data (perturbed corpus points): the serving case.
    let queries: Vec<Vec<f32>> = (0..200)
        .map(|_| {
            let base = &corpus[rng.below_usize(corpus.len())];
            base.iter().map(|v| v + rng.normal() * 0.3).collect()
        })
        .collect();
    let mut total_recall = 0.0;
    for q in &queries {
        total_recall += recall(&ivf.search(q, 10), &flat.search(q, 10));
    }
    let mean_recall = total_recall / queries.len() as f64;
    assert!(
        mean_recall >= 0.95,
        "IVF recall@10 must hold ≥ 0.95 on clustered data, got {mean_recall:.3}"
    );
    // And it must have *earned* it: an 8-of-64 probe cannot have scanned
    // anything close to the whole corpus per query.
    let stats = ivf.stats();
    assert_eq!(stats.searches, 200);
    assert!(
        stats.candidates_per_search() < corpus.len() as f64 / 3.0,
        "ANN scanned {} candidates/search over a {}-vector corpus",
        stats.candidates_per_search(),
        corpus.len()
    );
}

#[test]
fn full_probe_ivf_equals_flat_on_every_query() {
    let corpus = blobs(50, 6, 8, 0xe9a1);
    let flat = FlatIndex::from_rows(&corpus, Metric::Euclidean);
    let ivf = IvfIndex::from_rows(
        &corpus,
        Metric::Euclidean,
        &IvfConfig {
            nlist: 10,
            nprobe: 10,
            ..Default::default()
        },
    );
    let mut rng = Pcg32::new(5);
    for _ in 0..40 {
        let q: Vec<f32> = (0..8).map(|_| rng.normal() * 10.0).collect();
        assert_eq!(ivf.search(&q, 10), flat.search(&q, 10));
    }
}

/// Every backend, forced through each kernel arm in turn, returns the
/// same `(id, distance)` sequences bit for bit. The override is
/// process-global, but because the arms are bit-identical by contract,
/// flipping it under concurrently running tests is unobservable — that
/// invariance is exactly what this test pins.
#[test]
fn kernel_arms_agree_on_every_backend_top_k() {
    let corpus = blobs(100, 8, 20, 0x51d3); // dim 20: tail residue 4
    let store = VectorStore::from_rows(&corpus);
    let mut arms = vec![Kernel::Scalar];
    if matches!(simd::active_kernel(), Kernel::Avx2) {
        arms.push(Kernel::Avx2);
    }
    let mut rng = Pcg32::new(11);
    let queries: Vec<Vec<f32>> = (0..30)
        .map(|_| (0..20).map(|_| rng.normal() * 8.0).collect())
        .collect();

    for metric in [Metric::Euclidean, Metric::Cosine] {
        let flat = FlatIndex::new(store.clone(), metric);
        let ivf = IvfIndex::build(
            store.clone(),
            metric,
            &IvfConfig {
                nlist: 12,
                nprobe: 4,
                ..Default::default()
            },
        );
        let sq8 = Sq8Index::build(
            store.clone(),
            metric,
            &Sq8Config {
                nlist: 0,
                rerank_factor: 4,
                ..Default::default()
            },
        );
        let indexes: [(&str, &dyn VectorIndex); 3] =
            [("flat", &flat), ("ivf", &ivf), ("sq8", &sq8)];
        for (tag, ix) in indexes {
            let mut per_arm: Vec<Vec<Vec<(u32, u32)>>> = Vec::new();
            for &arm in &arms {
                let prev = simd::set_kernel_override(Some(arm));
                assert_eq!(prev, arm, "override must force the requested arm");
                per_arm.push(
                    queries
                        .iter()
                        .map(|q| {
                            ix.search(q, 10)
                                .into_iter()
                                .map(|(id, d)| (id, d.to_bits()))
                                .collect()
                        })
                        .collect(),
                );
                simd::set_kernel_override(None);
            }
            for other in &per_arm[1..] {
                assert_eq!(
                    &per_arm[0], other,
                    "{metric:?}/{tag}: kernel arms must return identical top-k \
                     orderings with bit-identical distances"
                );
            }
        }
    }
}

#[test]
fn sq8_rerank_recall_at_10_on_clustered_data() {
    let corpus = blobs(125, 40, 16, 0x1ecf); // same regime as the IVF gate
    let store = VectorStore::from_rows(&corpus);
    let flat = FlatIndex::new(store.clone(), Metric::Euclidean);
    let sq8 = Sq8Index::build(
        store.clone(),
        Metric::Euclidean,
        &Sq8Config {
            nlist: Sq8Config::AUTO_NLIST,
            nprobe: 8,
            rerank_factor: 4,
            ..Default::default()
        },
    );
    let mut rng = Pcg32::new(3);
    let queries: Vec<Vec<f32>> = (0..200)
        .map(|_| {
            let base = &corpus[rng.below_usize(corpus.len())];
            base.iter().map(|v| v + rng.normal() * 0.3).collect()
        })
        .collect();
    let mut total_recall = 0.0;
    for q in &queries {
        total_recall += recall(&sq8.search(q, 10), &flat.search(q, 10));
    }
    let mean_recall = total_recall / queries.len() as f64;
    assert!(
        mean_recall >= 0.95,
        "IVF+SQ8 recall@10 must hold ≥ 0.95 with re-ranking, got {mean_recall:.3}"
    );
    // The memory story is the point: quantized codes + coarse structure
    // must undercut the flat store even with the re-rank rows resident.
    let (flat_bytes, sq8_bytes) = (flat.stats().resident_bytes, sq8.stats().resident_bytes);
    assert!(
        sq8_bytes < flat_bytes * 3 / 2,
        "sq8-with-rerank resident bytes {sq8_bytes} vs flat {flat_bytes}"
    );
    // Without the exact rows (rerank_factor 0) it must be far below.
    let codes_only = Sq8Index::build(
        store,
        Metric::Euclidean,
        &Sq8Config {
            nlist: Sq8Config::AUTO_NLIST,
            nprobe: 8,
            rerank_factor: 0,
            ..Default::default()
        },
    );
    assert!(
        codes_only.stats().resident_bytes * 3 <= flat_bytes,
        "codes-only sq8 must hold ≤ ⅓ of flat's bytes, got {} vs {flat_bytes}",
        codes_only.stats().resident_bytes
    );
}
