//! Microbenchmarks for the SQL front end: lexing, normalization, shape
//! extraction and the baseline feature vector, over TPC-H and SnowCloud
//! query text. These are the per-query serving costs every Qworker pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use querc_sql::{
    features::feature_vector, normalize::normalized_text, parse_query, tokenize, Dialect,
};
use querc_workloads::{SnowCloud, SnowCloudConfig, TpchWorkload};
use std::hint::black_box;

fn corpus() -> Vec<String> {
    let tpch = TpchWorkload::generate(3, 1);
    let cloud = SnowCloud::generate(&SnowCloudConfig::pretrain(6, 20, 2));
    tpch.queries
        .into_iter()
        .map(|q| q.sql)
        .chain(cloud.records.into_iter().map(|r| r.sql))
        .collect()
}

fn bench_frontend(c: &mut Criterion) {
    let sqls = corpus();
    let total_bytes: usize = sqls.iter().map(String::len).sum();
    let mut g = c.benchmark_group("sql_frontend");
    g.throughput(Throughput::Bytes(total_bytes as u64));

    g.bench_function("tokenize", |b| {
        b.iter(|| {
            for s in &sqls {
                black_box(tokenize(s, Dialect::Generic));
            }
        })
    });
    g.bench_function("normalize", |b| {
        b.iter(|| {
            for s in &sqls {
                black_box(normalized_text(s, Dialect::Generic));
            }
        })
    });
    g.bench_function("parse_shape", |b| {
        b.iter(|| {
            for s in &sqls {
                black_box(parse_query(s, Dialect::Generic));
            }
        })
    });
    g.bench_function("baseline_features", |b| {
        b.iter(|| {
            for s in &sqls {
                black_box(feature_vector(s, Dialect::Generic));
            }
        })
    });
    g.finish();
}

fn bench_dialects(c: &mut Criterion) {
    let sql = "select a.x, sum(b.y) from warehouse_facts a join dim_dates b \
               on a.d = b.d where a.x > 100 and b.q like 'x%' group by a.x order by 2 desc limit 50";
    let mut g = c.benchmark_group("tokenize_dialects");
    for d in Dialect::all() {
        g.bench_with_input(BenchmarkId::from_parameter(d.name()), &d, |b, &d| {
            b.iter(|| black_box(tokenize(sql, d)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_frontend, bench_dialects
}
criterion_main!(benches);
