//! Compute-plane training benchmark: fit wall-clock across the
//! kernel-arm × thread frontier, plus embed-miss (inference) throughput.
//!
//! Every learner in the workspace now fits on the shared compute plane
//! (`querc_linalg::kernel` + `ComputePool`), so this harness sweeps the
//! two knobs that plane exposes — `QUERC_SIMD` arm and training thread
//! count — over the heavy fits (Doc2Vec negative sampling, k-means
//! assignment, forest tree fitting) and over the serving-side
//! cache-miss path (`embed_batch` on a trained Doc2Vec). By the plane's
//! determinism contract every cell of the sweep produces bit-identical
//! models; only wall-clock moves (asserted separately in the learner
//! test suites).
//!
//! A real `cargo bench` run rewrites `BENCH_train.json` at the repo
//! root and asserts the acceptance floor: aggregate Doc2Vec + k-means
//! fit time at the best configuration (widest SIMD arm, 4 threads)
//! must be ≥ 2.5× faster than 1-thread scalar — *when the thread axis
//! exists*. On a single-core container the thread cells are measured
//! honestly but flat, and the scalar canon is deliberately written in
//! the 8-lane form LLVM auto-vectorizes (the price of bit-identical
//! arms: the "scalar" baseline is itself SSE-speed), so the SIMD axis
//! alone carries ~2×. The floor therefore scales with the hardware:
//! 2.5 with ≥ 4 cores, a 1.6 SIMD-only floor otherwise. The report
//! records `cores` and per-task speedups so the configuration is
//! never ambiguous. CI smoke (`--test` / debug_assertions) runs every
//! cell once on tiny inputs and leaves the committed report alone.

use criterion::{criterion_group, criterion_main, Criterion};
use querc_cluster::{kmeans, KMeansConfig};
use querc_embed::{Doc2Vec, Doc2VecConfig, Embedder, VocabConfig};
use querc_learn::{Classifier, ForestConfig, RandomForest};
use querc_linalg::kernel::{self, Kernel};
use querc_linalg::{pool, Pcg32};
use querc_workloads::TpchWorkload;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

fn sql_corpus(n_per_template: usize) -> Vec<Vec<String>> {
    TpchWorkload::generate(n_per_template, 3)
        .queries
        .iter()
        .map(|q| querc_embed::sql_tokens(&q.sql))
        .collect()
}

fn d2v_cfg() -> Doc2VecConfig {
    Doc2VecConfig {
        dim: 128,
        epochs: 3,
        negative: 11,
        vocab: VocabConfig {
            min_count: 1,
            max_size: 5000,
            hash_buckets: 128,
        },
        ..Default::default()
    }
}

/// Gaussian blobs for the k-means fit (dim 64 — embedded-template shape).
fn blobs(n: usize, dim: usize, centers: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Pcg32::new(seed);
    let centroids: Vec<Vec<f32>> = (0..centers)
        .map(|_| (0..dim).map(|_| rng.normal() * 8.0).collect())
        .collect();
    (0..n)
        .map(|i| {
            centroids[i % centers]
                .iter()
                .map(|v| v + rng.normal() * 0.7)
                .collect()
        })
        .collect()
}

/// Labeled blobs for the forest fit.
fn labeled(n: usize, dim: usize, classes: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<u32>) {
    let x = blobs(n, dim, classes, seed);
    let y = (0..n).map(|i| (i % classes) as u32).collect();
    (x, y)
}

struct Cell {
    task: &'static str,
    arm: &'static str,
    threads: usize,
    ms: f64,
}

/// Run `f` once under (arm, threads) and return elapsed milliseconds.
fn timed(arm: Kernel, threads: usize, f: impl FnOnce()) -> f64 {
    kernel::set_kernel_override(Some(arm));
    pool::set_training_threads(Some(threads));
    let t = Instant::now();
    f();
    let ms = t.elapsed().as_secs_f64() * 1e3;
    pool::set_training_threads(None);
    kernel::set_kernel_override(None);
    ms
}

fn sweep(
    rows: &mut Vec<Cell>,
    task: &'static str,
    arms: &[Kernel],
    threads: &[usize],
    mut f: impl FnMut(),
) {
    for &arm in arms {
        for &t in threads {
            let ms = timed(arm, t, &mut f);
            rows.push(Cell {
                task,
                arm: arm.name(),
                threads: t,
                ms,
            });
        }
    }
}

fn cell_ms(rows: &[Cell], task: &str, arm: &str, threads: usize) -> f64 {
    rows.iter()
        .find(|c| c.task == task && c.arm == arm && c.threads == threads)
        .map(|c| c.ms)
        .unwrap_or(f64::NAN)
}

fn write_report(rows: &[Cell], miss_qps: &[(String, f64)], aggregate: f64, cores: usize) {
    let mut out = format!(
        "{{\n  \"bench\": \"train\",\n  \"unit\": \"ms\",\n  \"cores\": {cores},\n  \"fits\": [\n"
    );
    for (i, c) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"task\": \"{}\", \"arm\": \"{}\", \"threads\": {}, \"ms\": {:.2}}}{}\n",
            c.task,
            c.arm,
            c.threads,
            c.ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"embed_miss\": [\n");
    for (i, (label, qps)) in miss_qps.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"config\": \"{label}\", \"queries_per_sec\": {qps:.0}}}{}\n",
            if i + 1 < miss_qps.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"aggregate_fit_speedup_simd4_vs_scalar1\": {aggregate:.2}\n}}\n"
    ));
    let dest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_train.json");
    std::fs::write(&dest, out).unwrap();
    println!("wrote {}", dest.display());
}

fn bench_train(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test") || cfg!(debug_assertions);
    let mut arm_list = vec![Kernel::Scalar];
    if kernel::avx2_available() {
        arm_list.push(Kernel::Avx2);
    }
    if kernel::avx512_available() {
        arm_list.push(Kernel::Avx512);
    }
    let arms: &[Kernel] = &arm_list;
    let threads: &[usize] = &[1, 2, 4];
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Workload sizes: real runs are big enough for stable wall-clocks;
    // smoke keeps every cell under a few ms. Dims are the serving
    // shapes (128-wide embeddings) — the regime where fit time lives
    // in the blocked/gathered kernels rather than tokenizing overhead.
    let (n_per_template, km_n, forest_n) = if test_mode {
        (2, 256, 128)
    } else {
        (40, 12_000, 4_000)
    };
    let docs = sql_corpus(n_per_template);
    let km_points = blobs(km_n, 128, 64, 0xb10b);
    let (fx, fy) = labeled(forest_n, 16, 4, 0xf0e);

    let mut rows: Vec<Cell> = Vec::new();
    sweep(&mut rows, "doc2vec_fit", arms, threads, || {
        black_box(Doc2Vec::train(&docs, d2v_cfg()));
    });
    let km_cfg = KMeansConfig {
        k: 64,
        max_iters: 8,
        ..Default::default()
    };
    sweep(&mut rows, "kmeans_fit", arms, threads, || {
        black_box(kmeans(&km_points, &km_cfg, &mut Pcg32::new(7)));
    });
    sweep(&mut rows, "forest_fit", arms, threads, || {
        let mut forest = RandomForest::new(ForestConfig::extra_trees(30));
        forest.fit(&fx, &fy, 4, &mut Pcg32::new(9));
        black_box(forest.len());
    });

    // Embed-miss throughput: the serving path when the template cache
    // misses — batched Doc2Vec inference over fresh queries.
    let model = Doc2Vec::train(&docs, d2v_cfg());
    let fresh = sql_corpus(if test_mode { 1 } else { 8 });
    let mut miss_qps: Vec<(String, f64)> = Vec::new();
    for &arm in arms {
        for &t in [1usize, 4].iter() {
            let reps = if test_mode { 1 } else { 3 };
            let ms = timed(arm, t, || {
                for _ in 0..reps {
                    black_box(model.embed_batch(&fresh));
                }
            });
            let qps = (fresh.len() * reps) as f64 / (ms / 1e3);
            miss_qps.push((format!("{}x{}", arm.name(), t), qps));
        }
    }

    // Acceptance floor: aggregate doc2vec + kmeans, best config vs
    // 1-thread scalar. With ≥ 4 cores the thread axis must deliver the
    // full 2.5×; a single-core container can only witness the SIMD
    // axis, whose floor against the auto-vectorized scalar canon is
    // 1.6× (see the module doc).
    let best_arm = arms.last().unwrap().name();
    let scalar1 =
        cell_ms(&rows, "doc2vec_fit", "scalar", 1) + cell_ms(&rows, "kmeans_fit", "scalar", 1);
    let best4 =
        cell_ms(&rows, "doc2vec_fit", best_arm, 4) + cell_ms(&rows, "kmeans_fit", best_arm, 4);
    let aggregate = scalar1 / best4;
    if !test_mode {
        if kernel::avx2_available() {
            let floor = if cores >= 4 { 2.5 } else { 1.6 };
            assert!(
                aggregate >= floor,
                "aggregate doc2vec+kmeans fit speedup {aggregate:.2}x below the {floor}x floor \
                 on {cores} core(s) (scalar/1t {scalar1:.0}ms vs {best_arm}/4t {best4:.0}ms)"
            );
        }
        write_report(&rows, &miss_qps, aggregate, cores);
    }

    // Criterion steady-state numbers for the two gate fits at the
    // default (ambient) arm and thread count.
    let mut g = c.benchmark_group("train");
    g.sample_size(10);
    let small = sql_corpus(if test_mode { 1 } else { 4 });
    g.bench_function("doc2vec_fit_small", |b| {
        b.iter(|| black_box(Doc2Vec::train(&small, d2v_cfg())))
    });
    let small_pts = blobs(if test_mode { 128 } else { 2_000 }, 64, 8, 3);
    let small_cfg = KMeansConfig {
        k: 8,
        max_iters: 5,
        ..Default::default()
    };
    g.bench_function("kmeans_fit_small", |b| {
        b.iter(|| black_box(kmeans(&small_pts, &small_cfg, &mut Pcg32::new(11))))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_train
}
criterion_main!(benches);
