//! Integration: the unified serving façade end to end.
//!
//! All six workload apps register with one `WorkloadManager`, a mixed
//! 200-query stream is submitted across them, and the drained outputs
//! are checked for per-app labels and accurate throughput counters —
//! the paper's Fig 1 exercised as a single API.

use querc::apps::{
    AuditApp, ErrorsApp, RecommendApp, ResourcesApp, RoutingApp, SummarizeApp, TrainCorpus,
};
use querc::{LabeledQuery, QuercError, WorkloadManager, WorkloadManagerConfig};
use querc_embed::{BagOfTokens, Embedder};
use querc_workloads::QueryRecord;
use std::sync::Arc;

/// A synthetic multi-tenant log with enough structure for every app:
/// two users with distinct habits, two routing clusters, one flaky
/// query shape, three runtime classes, and alternating session flows.
fn training_records() -> Vec<QueryRecord> {
    (0..120u64)
        .map(|i| {
            let (user, cluster, sql, ms, err) = match i % 4 {
                0 => (
                    "acct/ana",
                    "bi-cluster",
                    format!("select revenue, region from finance_cube where q = {i} group by region"),
                    400.0,
                    None,
                ),
                1 => (
                    "acct/bo",
                    "etl-cluster",
                    format!("insert into lake_events select * from staging_{}", i % 3),
                    30.0,
                    None,
                ),
                2 => (
                    "acct/ana",
                    "bi-cluster",
                    format!("select v from kv_store where k = {i}"),
                    5.0,
                    None,
                ),
                _ => (
                    "acct/bo",
                    "etl-cluster",
                    format!(
                        "select a.*, b.* from giant_facts a join giant_facts b on a.k = b.k where a.x > {i}"
                    ),
                    2000.0,
                    (i % 8 != 3).then_some(604),
                ),
            };
            QueryRecord {
                sql,
                user: user.into(),
                account: "acct".into(),
                cluster: cluster.into(),
                dialect: "generic".into(),
                runtime_ms: ms,
                mem_mb: ms / 2.0,
                error_code: err,
                timestamp: i,
            }
        })
        .collect()
}

fn embedder() -> Arc<dyn Embedder> {
    Arc::new(BagOfTokens::new(128, true))
}

const APPS: [&str; 6] = [
    "audit",
    "errors",
    "recommend",
    "resources",
    "routing",
    "summarize",
];

#[test]
fn manager_serves_all_six_apps_over_a_mixed_stream() {
    let corpus = TrainCorpus::from_records(training_records(), 0x2019);
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
        shards_per_app: 2,
        batch: 16,
        ..Default::default()
    });

    // Register all six apps; every report reflects the shared corpus.
    mgr.register(AuditApp::new(embedder()).with_trees(20), &corpus)
        .unwrap();
    mgr.register(ErrorsApp::new(embedder()), &corpus).unwrap();
    mgr.register(RecommendApp::new(embedder()).with_clusters(4), &corpus)
        .unwrap();
    mgr.register(ResourcesApp::new(embedder()), &corpus)
        .unwrap();
    mgr.register(RoutingApp::new(embedder()), &corpus).unwrap();
    // Fixed K: the elbow scan is an offline-tuning concern, not a
    // serving-path one, and it dominates test runtime.
    let summary_cfg = querc::apps::summarize::SummaryConfig {
        k: Some(6),
        ..Default::default()
    };
    mgr.register(
        SummarizeApp::new(embedder()).with_config(summary_cfg),
        &corpus,
    )
    .unwrap();
    assert_eq!(mgr.app_names(), APPS);
    for report in mgr.reports().unwrap() {
        assert_eq!(report.trained_queries, 120, "{}", report.app);
        assert!(!report.task.is_empty());
    }

    // A mixed 200-query stream, round-robin across the apps, with the
    // metadata labels the checking apps compare against.
    let mut submitted_per_app = [0usize; 6];
    for i in 0..200u64 {
        let app = APPS[(i % 6) as usize];
        let mut lq = match i % 4 {
            0 => LabeledQuery::new(format!(
                "select revenue, region from finance_cube where q = {i} group by region"
            )),
            1 => LabeledQuery::new(format!(
                "insert into lake_events select * from staging_{}",
                i % 3
            )),
            2 => LabeledQuery::new(format!("select v from kv_store where k = {i}")),
            _ => LabeledQuery::new(format!(
                "select a.*, b.* from giant_facts a join giant_facts b on a.k = b.k where a.x > {i}"
            )),
        };
        // Metadata matching the training pattern: ana runs the BI shapes
        // (i%4 ∈ {0,2}), bo the ETL/join shapes (i%4 ∈ {1,3}).
        lq.set(
            "user",
            if i % 4 % 2 == 0 {
                "acct/ana"
            } else {
                "acct/bo"
            },
        );
        lq.set(
            "cluster",
            if i % 4 % 2 == 0 {
                "bi-cluster"
            } else {
                "etl-cluster"
            },
        );
        if i % 2 == 0 {
            mgr.submit(app, lq).unwrap();
        } else {
            assert_eq!(mgr.submit_batch(app, [lq]).unwrap(), 1);
        }
        submitted_per_app[(i % 6) as usize] += 1;
    }

    let drained = mgr.drain();

    // Counters: every submission processed, per app, and every query's
    // enqueue→labeled latency recorded.
    assert_eq!(drained.throughput.len(), 6);
    for tp in &drained.throughput {
        let expected = submitted_per_app[APPS.iter().position(|a| *a == tp.app).unwrap()];
        assert_eq!(tp.submitted, expected as u64, "{} submitted", tp.app);
        assert_eq!(tp.processed, expected as u64, "{} processed", tp.app);
        assert_eq!(
            drained.outputs[&tp.app].len(),
            expected,
            "{} outputs",
            tp.app
        );
        assert_eq!(tp.latency.count, expected as u64, "{} latency", tp.app);
        assert!(tp.latency.p50_us <= tp.latency.p99_us);
    }
    let total: usize = drained.outputs.values().map(Vec::len).sum();
    assert_eq!(total, 200);
    // The training mirror saw the whole stream.
    assert_eq!(drained.training_log.len(), 200);

    // Per-app labels: each app attached its own label family, plus the
    // worker's application tag, and no serving-path errors surfaced.
    for (app, queries) in &drained.outputs {
        for lq in queries {
            assert_eq!(lq.get("application").unwrap(), app);
            assert_eq!(lq.get("app_error"), None, "{app}: {lq:?}");
            match app.as_str() {
                "audit" => {
                    assert!(lq.get("predicted_user").is_some());
                    assert!(lq.get("audit_flag").is_some());
                }
                "errors" => {
                    assert!(lq.get("error_probability").is_some());
                    assert!(lq.get("error_risky").is_some());
                }
                "recommend" => {
                    assert!(lq.get("query_cluster").is_some());
                    assert!(lq.get("next_query").is_some());
                }
                "resources" => {
                    let class = lq.get("resource_class").unwrap();
                    assert!(["short", "medium", "long"].contains(&class));
                }
                "routing" => {
                    assert!(lq.get("predicted_cluster").is_some());
                    assert!(lq.get("routing_anomaly").is_some());
                }
                "summarize" => {
                    assert!(lq.get("summary_cluster").is_some());
                    assert!(lq.get("summary_witness").is_some());
                }
                other => panic!("unexpected app {other}"),
            }
        }
    }

    // Model quality spot checks on the well-separated families.
    let audited = &drained.outputs["audit"];
    let correct_users = audited
        .iter()
        .filter(|lq| lq.get("predicted_user") == lq.get("user"))
        .count();
    assert!(
        correct_users * 10 >= audited.len() * 8,
        "user prediction should be strong on separable habits: {correct_users}/{}",
        audited.len()
    );
    let resources = &drained.outputs["resources"];
    assert!(
        resources
            .iter()
            .filter(|lq| lq.sql.contains("kv_store"))
            .all(|lq| lq.get("resource_class") == Some("short")),
        "point lookups must classify short"
    );
    let risky_flags = drained.outputs["errors"]
        .iter()
        .filter(|lq| lq.sql.contains("giant_facts"))
        .filter(|lq| lq.get("error_risky") == Some("true"))
        .count();
    assert!(risky_flags > 0, "the flaky join shape must be flagged");
}

/// An app whose worker thread dies when it sees the SQL text `poison` —
/// the regression rig for mid-batch `ChannelClosed` accounting. Panicking
/// (instead of returning `Err`, which the serving path catches) kills the
/// consuming shard worker, closing that shard's queue while the app's
/// other shards keep serving.
struct PoisonableApp {
    tripped: Arc<std::sync::atomic::AtomicBool>,
}

impl querc::WorkloadApp for PoisonableApp {
    type Model = ();

    fn name(&self) -> &'static str {
        "poisonable"
    }

    fn task(&self) -> &'static str {
        "die on the poison query (test rig)"
    }

    fn fit(&self, _corpus: &querc::TrainCorpus) -> querc::Result<()> {
        Ok(())
    }

    fn label_batch(
        &self,
        _model: &(),
        batch: &[querc::EnrichedQuery],
    ) -> querc::Result<Vec<querc::AppOutput>> {
        if batch.iter().any(|q| q.sql() == "poison") {
            self.tripped
                .store(true, std::sync::atomic::Ordering::SeqCst);
            panic!("poison query consumed");
        }
        Ok(batch
            .iter()
            .map(|_| {
                let mut out = querc::AppOutput::new();
                out.set("ok", "true");
                out
            })
            .collect())
    }

    fn report(&self, _model: &()) -> querc::AppReport {
        querc::AppReport {
            app: "poisonable".into(),
            task: "test rig".into(),
            trained_queries: 0,
            detail: Vec::new(),
        }
    }
}

/// Regression test: `submit_batch` must count sends as they happen. With
/// the pre-fix accounting (bump `submitted` only after the whole batch),
/// a batch that dies mid-way on a closed shard leaves its already-enqueued
/// queries uncounted while live shards still process them — `processed`
/// overtakes `submitted`.
#[test]
fn mid_batch_channel_closure_keeps_counters_consistent() {
    use std::sync::atomic::{AtomicBool, Ordering};

    // Silence the expected worker panic (other panics pass through).
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg_is_poison = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("poison"))
            .unwrap_or(false);
        if !msg_is_poison {
            prev_hook(info);
        }
    }));

    let tripped = Arc::new(AtomicBool::new(false));
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
        shards_per_app: 2,
        batch: 1,
        queue_depth: 256,
        ..Default::default()
    });
    mgr.register(
        PoisonableApp {
            tripped: Arc::clone(&tripped),
        },
        &TrainCorpus::from_records(training_records(), 1),
    )
    .unwrap();

    // Two tenants pinned to different shards.
    let shards = 2;
    let tenant_a = (0..100)
        .map(|i| format!("tenant{i:02}"))
        .find(|t| querc::shard_for(t, shards) == 0)
        .unwrap();
    let tenant_b = (0..100)
        .map(|i| format!("tenant{i:02}"))
        .find(|t| querc::shard_for(t, shards) == 1)
        .unwrap();
    let query = |tenant: &str, sql: &str| {
        let mut lq = LabeledQuery::new(sql);
        lq.set("account", tenant);
        lq
    };

    // Kill tenant B's shard, then wait until its queue is observably
    // closed (sends start failing).
    mgr.submit("poisonable", query(&tenant_b, "poison"))
        .unwrap();
    let mut b_shard_dead = false;
    for _ in 0..500 {
        if tripped.load(Ordering::SeqCst)
            && mgr
                .submit("poisonable", query(&tenant_b, "select 1"))
                .is_err()
        {
            b_shard_dead = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(b_shard_dead, "poisoned shard never went down");

    // A batch that routes 50 queries to the live shard and then one to
    // the dead shard: the send to the dead shard fails mid-batch.
    let mut batch: Vec<LabeledQuery> = (0..50)
        .map(|i| query(&tenant_a, &format!("select {i}")))
        .collect();
    batch.push(query(&tenant_b, "select 999"));
    let err = mgr.submit_batch("poisonable", batch).unwrap_err();
    assert!(matches!(err, QuercError::ChannelClosed { .. }));

    // The 50 live-shard queries were accepted and will be processed;
    // the counters must account for them despite the error return.
    let drained = mgr.drain();
    let tp = &drained.throughput[0];
    assert!(
        tp.processed <= tp.submitted,
        "processed ({}) must never exceed submitted ({})",
        tp.processed,
        tp.submitted
    );
    let live_outputs = drained.outputs["poisonable"]
        .iter()
        .filter(|lq| lq.get("account") == Some(tenant_a.as_str()))
        .count();
    assert_eq!(live_outputs, 50, "live shard processed the partial batch");
}

#[test]
fn manager_rejects_unknown_apps_and_empty_corpora() {
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig::default());
    assert!(matches!(
        mgr.submit("nope", LabeledQuery::new("select 1")),
        Err(QuercError::UnknownApp { .. })
    ));
    let err = mgr
        .register(AuditApp::new(embedder()), &TrainCorpus::default())
        .unwrap_err();
    assert!(matches!(err, QuercError::EmptyCorpus { .. }));
    assert!(
        mgr.app_names().is_empty(),
        "failed registration must not leak"
    );
}
