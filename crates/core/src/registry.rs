//! Versioned model registry — the "Model Deployment" arrow of Fig 1.
//!
//! The training module deploys classifiers here; Qworkers resolve them by
//! name on each batch. Deployments are atomic swaps of `Arc`s behind a
//! `parking_lot` RwLock, so serving threads never block on retrains.

use crate::classifier::QueryClassifier;
use crate::error::{QuercError, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// One entry in the registry's deployment history — what the
/// persistence plane snapshots so version numbers survive a restore.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RegistryEvent {
    /// `"deploy"` or `"undeploy"`.
    pub action: String,
    /// Classifier name the event concerns.
    pub name: String,
    /// Version deployed, or the last live version for an undeploy.
    pub version: u64,
}

/// A named, versioned store of deployed classifiers.
#[derive(Default)]
pub struct ModelRegistry {
    inner: RwLock<HashMap<String, (u64, Arc<QueryClassifier>)>>,
    events: RwLock<Vec<RegistryEvent>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploy (or replace) a classifier under `name`; returns the new
    /// version number (1 for first deployment).
    pub fn deploy(&self, name: &str, classifier: QueryClassifier) -> u64 {
        // Lock order (inner, then events) is shared by every writer, so
        // the history's ordering matches the versions handed out.
        let mut inner = self.inner.write();
        let version = inner.get(name).map(|(v, _)| v + 1).unwrap_or(1);
        inner.insert(name.to_string(), (version, Arc::new(classifier)));
        self.events.write().push(RegistryEvent {
            action: "deploy".to_string(),
            name: name.to_string(),
            version,
        });
        version
    }

    /// Resolve the current classifier for `name`.
    pub fn get(&self, name: &str) -> Option<Arc<QueryClassifier>> {
        self.inner.read().get(name).map(|(_, c)| Arc::clone(c))
    }

    /// Like [`ModelRegistry::get`] but reports the miss as a
    /// [`QuercError::ModelNotDeployed`] — for serving paths that treat a
    /// missing deployment as an error rather than an option.
    pub fn resolve(&self, name: &str) -> Result<Arc<QueryClassifier>> {
        self.get(name).ok_or_else(|| QuercError::ModelNotDeployed {
            name: name.to_string(),
        })
    }

    /// Current version of `name`, if deployed.
    pub fn version(&self, name: &str) -> Option<u64> {
        self.inner.read().get(name).map(|(v, _)| *v)
    }

    /// Names of all deployed classifiers, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Remove a deployment.
    pub fn undeploy(&self, name: &str) -> bool {
        let mut inner = self.inner.write();
        match inner.remove(name) {
            Some((version, _)) => {
                self.events.write().push(RegistryEvent {
                    action: "undeploy".to_string(),
                    name: name.to_string(),
                    version,
                });
                true
            }
            None => false,
        }
    }

    /// The full deploy/undeploy history, oldest first.
    pub fn history(&self) -> Vec<RegistryEvent> {
        self.events.read().clone()
    }

    /// Re-install a deployment at an **explicit** version — the restore
    /// path, which must pin the version a snapshot recorded rather than
    /// restart counting at 1. Subsequent [`ModelRegistry::deploy`] calls
    /// bump from the pinned version. Records no event; the snapshot's
    /// history comes back through [`ModelRegistry::restore_history`].
    pub fn restore_deployment(&self, name: &str, version: u64, classifier: QueryClassifier) {
        self.inner
            .write()
            .insert(name.to_string(), (version, Arc::new(classifier)));
    }

    /// Replace the event log with a snapshot's history (restore path).
    pub fn restore_history(&self, events: Vec<RegistryEvent>) {
        *self.events.write() = events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::TrainedLabeler;
    use querc_embed::{BagOfTokens, Embedder};
    use querc_learn::{ForestConfig, RandomForest};
    use querc_linalg::Pcg32;

    fn dummy_classifier(tag: &str) -> QueryClassifier {
        let embedder: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(16, false));
        let vectors = vec![vec![0.0; 16], vec![1.0; 16]];
        let labels = vec![tag, tag];
        let labeler = TrainedLabeler::train(
            RandomForest::new(ForestConfig::extra_trees(2)),
            &vectors,
            &labels,
            &mut Pcg32::new(1),
        );
        QueryClassifier::new("tag", embedder, labeler)
    }

    #[test]
    fn deploy_bumps_versions() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.deploy("user", dummy_classifier("a")), 1);
        assert_eq!(reg.deploy("user", dummy_classifier("b")), 2);
        assert_eq!(reg.version("user"), Some(2));
        assert_eq!(reg.version("other"), None);
    }

    #[test]
    fn get_returns_latest() {
        let reg = ModelRegistry::new();
        reg.deploy("user", dummy_classifier("a"));
        let before = reg.get("user").unwrap();
        reg.deploy("user", dummy_classifier("b"));
        let after = reg.get("user").unwrap();
        // Old Arc still usable (serving threads mid-batch), new one served.
        assert_eq!(before.label_sql("select 1"), "a");
        assert_eq!(after.label_sql("select 1"), "b");
    }

    #[test]
    fn resolve_reports_missing_deployments() {
        use crate::error::QuercError;
        let reg = ModelRegistry::new();
        assert!(matches!(
            reg.resolve("ghost"),
            Err(QuercError::ModelNotDeployed { .. })
        ));
        reg.deploy("user", dummy_classifier("a"));
        assert!(reg.resolve("user").is_ok());
    }

    #[test]
    fn names_and_undeploy() {
        let reg = ModelRegistry::new();
        reg.deploy("b", dummy_classifier("x"));
        reg.deploy("a", dummy_classifier("y"));
        assert_eq!(reg.names(), vec!["a".to_string(), "b".to_string()]);
        assert!(reg.undeploy("a"));
        assert!(!reg.undeploy("a"));
        assert!(reg.get("a").is_none());
    }

    #[test]
    fn concurrent_reads_during_deploys() {
        let reg = Arc::new(ModelRegistry::new());
        reg.deploy("user", dummy_classifier("a"));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let c = r.get("user").expect("always deployed");
                    let _ = c.label_sql("select 1");
                }
            }));
        }
        for i in 0..20 {
            reg.deploy("user", dummy_classifier(if i % 2 == 0 { "a" } else { "b" }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.version("user"), Some(21));
    }

    #[test]
    fn history_records_deploys_and_undeploys_in_order() {
        let reg = ModelRegistry::new();
        reg.deploy("user", dummy_classifier("a"));
        reg.deploy("user", dummy_classifier("b"));
        reg.deploy("cluster", dummy_classifier("c"));
        reg.undeploy("user");
        reg.undeploy("ghost"); // no-op: must not be recorded
        let ev = reg.history();
        let brief: Vec<(String, String, u64)> = ev
            .into_iter()
            .map(|e| (e.action, e.name, e.version))
            .collect();
        assert_eq!(
            brief,
            vec![
                ("deploy".into(), "user".into(), 1),
                ("deploy".into(), "user".into(), 2),
                ("deploy".into(), "cluster".into(), 1),
                ("undeploy".into(), "user".into(), 2),
            ]
        );
    }

    #[test]
    fn restore_deployment_pins_the_version() {
        let reg = ModelRegistry::new();
        reg.restore_deployment("user", 7, dummy_classifier("a"));
        assert_eq!(reg.version("user"), Some(7));
        assert_eq!(reg.get("user").unwrap().label_sql("select 1"), "a");
        // History restore replaces the log wholesale…
        reg.restore_history(vec![RegistryEvent {
            action: "deploy".to_string(),
            name: "user".to_string(),
            version: 7,
        }]);
        // …and later deploys bump from the pinned version and append.
        assert_eq!(reg.deploy("user", dummy_classifier("b")), 8);
        assert_eq!(reg.history().len(), 2);
        assert_eq!(reg.history()[1].version, 8);
    }
}
