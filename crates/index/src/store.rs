//! Contiguous row-major vector storage.
//!
//! Every nearest-neighbor structure in the workspace used to clone its
//! training set as `Vec<Vec<f32>>` — one heap allocation per row, with
//! a pointer chase per distance computation. A [`VectorStore`] packs
//! rows into one `f32` buffer with rows padded to a 32-byte boundary,
//! so a scan walks memory linearly and the auto-vectorized distance
//! kernels see aligned, contiguous operands.

/// Row padding unit: 8 `f32`s = 32 bytes, one AVX lane / half a cache
/// line, so consecutive rows never share a partially-filled vector
/// register load.
const ROW_ALIGN: usize = 8;

/// Contiguous row-major storage of fixed-dimension `f32` vectors.
///
/// Rows are stored at a stride of `dim` rounded up to a multiple of 8
/// floats; the padding is zero-filled and never exposed —
/// [`VectorStore::row`] returns exactly `dim` components.
#[derive(Debug, Clone, Default)]
pub struct VectorStore {
    data: Vec<f32>,
    dim: usize,
    stride: usize,
    len: usize,
}

impl VectorStore {
    /// An empty store for vectors of `dim` components.
    ///
    /// # Panics
    /// If `dim == 0`.
    pub fn new(dim: usize) -> VectorStore {
        assert!(dim > 0, "VectorStore dimension must be positive");
        let stride = dim.div_ceil(ROW_ALIGN) * ROW_ALIGN;
        VectorStore {
            data: Vec::new(),
            dim,
            stride,
            len: 0,
        }
    }

    /// An empty store with room for `rows` vectors pre-allocated.
    pub fn with_capacity(dim: usize, rows: usize) -> VectorStore {
        let mut s = VectorStore::new(dim);
        s.data.reserve(rows * s.stride);
        s
    }

    /// Bulk-build a store from ragged-free row data.
    ///
    /// # Panics
    /// If `rows` is empty (the dimension would be unknown) or any row's
    /// length differs from the first row's.
    pub fn from_rows(rows: &[Vec<f32>]) -> VectorStore {
        assert!(!rows.is_empty(), "VectorStore::from_rows on empty input");
        let mut s = VectorStore::with_capacity(rows[0].len(), rows.len());
        s.extend(rows.iter().map(Vec::as_slice));
        s
    }

    /// Append one row; returns its id (insertion order, dense from 0).
    ///
    /// # Panics
    /// If `row.len() != self.dim()`.
    pub fn push(&mut self, row: &[f32]) -> u32 {
        assert_eq!(
            row.len(),
            self.dim,
            "VectorStore::push: row has {} components, store holds {}-dim vectors",
            row.len(),
            self.dim
        );
        self.data.extend_from_slice(row);
        self.data
            .resize(self.data.len() + (self.stride - self.dim), 0.0);
        self.len += 1;
        (self.len - 1) as u32
    }

    /// Bulk insert: append every row, in order.
    ///
    /// # Panics
    /// If any row's length differs from the store dimension.
    pub fn extend<'a, I: IntoIterator<Item = &'a [f32]>>(&mut self, rows: I) {
        for row in rows {
            self.push(row);
        }
    }

    /// Row `i` (exactly `dim` components — padding is not exposed).
    ///
    /// # Panics
    /// If `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        let start = i * self.stride;
        &self.data[start..start + self.dim]
    }

    /// Iterate over all rows in id order.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        (0..self.len).map(move |i| self.row(i))
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of stored vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Padded row stride in `f32`s (≥ `dim`, multiple of 8).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The raw padded backing buffer (`len() * stride()` floats, row
    /// `i` at `i * stride()`, padding zero-filled) — the operand the
    /// fused [`crate::simd`] block kernels scan without per-row slicing.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Bytes held by the backing buffer.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Materialize row `i` as an owned vector (diagnostics / interop
    /// with `Vec<Vec<f32>>` consumers like `querc_cluster::kmeans`).
    pub fn row_vec(&self, i: usize) -> Vec<f32> {
        self.row(i).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_roundtrip_and_ids_are_dense() {
        let mut s = VectorStore::new(3);
        assert_eq!(s.push(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(s.push(&[4.0, 5.0, 6.0]), 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(s.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn stride_is_padded_to_32_bytes_and_rows_stay_exact() {
        for dim in [1usize, 3, 7, 8, 9, 17, 32, 33] {
            let mut s = VectorStore::new(dim);
            let row: Vec<f32> = (0..dim).map(|i| i as f32 + 0.5).collect();
            s.push(&row);
            s.push(&row);
            assert_eq!(s.stride() % 8, 0);
            assert!(s.stride() >= dim && s.stride() < dim + 8);
            assert_eq!(s.row(1), row.as_slice(), "padding must not leak, dim={dim}");
        }
    }

    #[test]
    fn from_rows_bulk_builds() {
        let rows = vec![vec![0.0f32, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]];
        let s = VectorStore::from_rows(&rows);
        assert_eq!((s.len(), s.dim()), (3, 2));
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(s.row(i), r.as_slice());
        }
        assert_eq!(s.row_vec(2), rows[2]);
        assert!(s.memory_bytes() >= 3 * 2 * 4);
    }

    #[test]
    #[should_panic(expected = "row has 2 components")]
    fn ragged_push_panics() {
        let mut s = VectorStore::new(3);
        s.push(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn from_rows_empty_panics() {
        VectorStore::from_rows(&[]);
    }
}
