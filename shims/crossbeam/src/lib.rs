//! Offline stand-in for the `crossbeam` channel API used by this
//! workspace: unbounded and bounded MPMC channels with hang-up
//! detection, built on `Mutex<VecDeque>` + `Condvar`. Semantics match
//! crossbeam where the workspace relies on them:
//!
//! * both `Sender` and `Receiver` are `Clone` (MPMC — replicated
//!   Qworkers pull from one stream);
//! * `send` fails only when every receiver is gone;
//! * `recv`/`iter` block until a message arrives or every sender is
//!   gone and the queue is drained;
//! * on a [`channel::bounded`] channel, `send` blocks while the queue
//!   is at capacity (backpressure) and wakes either when space frees
//!   up or when the last receiver disconnects (then it fails).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled when a message is consumed (bounded senders wait on
        /// this for space) and when the last receiver disconnects.
        space: Condvar,
        /// `None` = unbounded.
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    /// Create a bounded MPMC channel holding at most `cap` messages
    /// (at least 1). `send` blocks while the channel is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// Error returned by `send` when all receivers are gone; carries the
    /// unsent message back to the caller.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by `try_send`; carries the unsent message back to
    /// the caller, distinguishing a full bounded queue from a channel
    /// whose receivers are all gone.
    pub enum TrySendError<T> {
        /// The bounded queue is at capacity.
        Full(T),
        /// All receivers have disconnected.
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(match self {
                TrySendError::Full(_) => "Full(..)",
                TrySendError::Disconnected(_) => "Disconnected(..)",
            })
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(match self {
                TrySendError::Full(_) => "sending on a full channel",
                TrySendError::Disconnected(_) => "sending on a disconnected channel",
            })
        }
    }

    /// Error returned by `recv` when the channel is drained and closed.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by `try_recv`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut queue = self.inner.queue.lock().unwrap();
            if let Some(cap) = self.inner.capacity {
                while queue.len() >= cap {
                    if self.inner.receivers.load(Ordering::Acquire) == 0 {
                        return Err(SendError(msg));
                    }
                    queue = self.inner.space.wait(queue).unwrap();
                }
                // All receivers may have hung up while we slept.
                if self.inner.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(msg));
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Non-blocking send: fails with [`TrySendError::Full`] instead
        /// of blocking when a bounded queue is at capacity.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            let mut queue = self.inner.queue.lock().unwrap();
            if let Some(cap) = self.inner.capacity {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                let _guard = self.inner.queue.lock().unwrap();
                self.inner.ready.notify_all();
            }
        }
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().unwrap();
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    self.inner.space.notify_one();
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.inner.ready.wait(queue).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().unwrap();
            match queue.pop_front() {
                Some(msg) => {
                    drop(queue);
                    self.inner.space.notify_one();
                    Ok(msg)
                }
                None if self.inner.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator: yields until the channel is closed and empty.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Number of queued messages (diagnostic).
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver gone: wake senders blocked on a full
                // bounded queue so they observe the disconnect.
                let _guard = self.inner.queue.lock().unwrap();
                self.inner.space.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn mpmc_fanout_consumes_each_message_once() {
        let (tx, rx) = unbounded();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_send_blocks_until_space_frees_up() {
        let (tx, rx) = bounded(2);
        let producer = std::thread::spawn(move || {
            for i in 0..50 {
                tx.send(i).unwrap();
            }
        });
        // The producer can be at most capacity ahead of the consumer; a
        // full drain still sees every message exactly once, in order.
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_send_fails_when_receiver_hangs_up_mid_block() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap(); // fill the queue
        let blocked = std::thread::spawn(move || tx.send(1));
        // Give the sender time to block on the full queue, then hang up.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(rx);
        assert!(
            blocked.join().unwrap().is_err(),
            "blocked send must fail once all receivers are gone"
        );
    }

    #[test]
    fn try_send_distinguishes_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        assert!(tx.try_send(0).is_ok());
        assert!(matches!(tx.try_send(1), Err(TrySendError::Full(1))));
        assert_eq!(rx.recv(), Ok(0));
        assert!(tx.try_send(2).is_ok());
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
        // Unbounded channels are never Full.
        let (utx, urx) = unbounded();
        for i in 0..100 {
            assert!(utx.try_send(i).is_ok());
        }
        assert_eq!(urx.len(), 100);
    }

    #[test]
    fn bounded_never_exceeds_capacity() {
        let (tx, rx) = bounded(3);
        for i in 0..3 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 3);
        assert_eq!(rx.recv(), Ok(0));
        tx.send(3).unwrap();
        assert_eq!(rx.len(), 3);
    }
}
