//! Vector search plane benchmark: the million-vector frontier.
//!
//! One clustered corpus per size (100k and 1M vectors of dim 32 — the
//! shape of an embedded templated workload at cloud scale; smoke mode
//! shrinks to 2k) swept across the whole backend × kernel frontier:
//!
//! * **flat/scalar** — exact blocked scan on the `querc_linalg::ops`
//!   reference loops (the pre-SIMD baseline, forced via the process
//!   kernel override), timed for both metrics;
//! * **flat/simd** — the same scans on the AVX2 arm (bit-identical
//!   results). The tentpole's ≥ 3× floor binds on the **cosine** scan,
//!   where the fused kernel's one-pass/two-accumulator structure is a
//!   real algorithmic win. On squared Euclidean the honest ceiling is
//!   lower: LLVM auto-vectorizes the lane-strided scalar reference
//!   into SSE, so the AVX2 edge there is width-bound (~2×, floored at
//!   1.8×) — asserting 3× against a baseline that is itself SIMD would
//!   require breaking the bit-parity contract (FMA);
//! * **ivf** — coarse k-means partitions at the cheapest `nprobe`
//!   holding recall@10 ≥ 0.95;
//! * **sq8** — flat ADC scan over u8 codes with exact re-rank;
//! * **ivf+sq8** — coarse lists over residual-quantized codes, no f32
//!   rows retained (memory parity: ≤ ⅓ of flat's resident bytes), the
//!   ≥ 25×-vs-scalar-flat claim.
//!
//! A real `cargo bench` run asserts the acceptance floors on the
//! largest corpus and rewrites `BENCH_index.json` at the repo root so
//! the frontier is tracked across PRs; the CI smoke (`--test` /
//! debug_assertions) runs every path once on the tiny corpus and
//! leaves the committed numbers alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use querc_index::simd::{self, Kernel};
use querc_index::{
    FlatIndex, IvfConfig, IvfIndex, Metric, Sq8Config, Sq8Index, VectorIndex, VectorStore,
};
use querc_linalg::Pcg32;
use std::collections::HashSet;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const K: usize = 10;
const N_QUERIES: usize = 64;
const RECALL_FLOOR: f64 = 0.95;

/// Gaussian blobs: `centers` clusters of `dim`-d points, `n` total.
fn clustered(n: usize, centers: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Pcg32::new(seed);
    let mut pts = Vec::with_capacity(n);
    let centroids: Vec<Vec<f32>> = (0..centers)
        .map(|_| (0..dim).map(|_| rng.normal() * 10.0).collect())
        .collect();
    for i in 0..n {
        let c = &centroids[i % centers];
        pts.push(c.iter().map(|v| v + rng.normal() * 0.6).collect());
    }
    pts
}

/// Serving-shaped queries: perturbed corpus points.
fn queries(corpus: &[Vec<f32>], n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Pcg32::new(seed);
    (0..n)
        .map(|_| {
            let base = &corpus[rng.below_usize(corpus.len())];
            base.iter().map(|v| v + rng.normal() * 0.3).collect()
        })
        .collect()
}

/// Recall@K of `ix` against the exact ground truth.
fn mean_recall(ix: &dyn VectorIndex, truth: &[HashSet<u32>], qs: &[Vec<f32>]) -> f64 {
    let mut total = 0.0;
    for (q, t) in qs.iter().zip(truth) {
        let got = ix.search(q, K);
        total += got.iter().filter(|h| t.contains(&h.0)).count() as f64 / t.len() as f64;
    }
    total / qs.len() as f64
}

/// Best-of-2 wall time of one full query batch against `ix`.
fn time_batch(ix: &dyn VectorIndex, refs: &[&[f32]]) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let t0 = Instant::now();
        black_box(ix.search_batch(refs, K));
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Sweep `nprobe` upward to the cheapest setting holding the recall
/// floor (`eval` applies the setting and reports recall@K); panics — a
/// recall regression, reported as one — if none does.
fn tune_nprobe(eval: &mut dyn FnMut(usize) -> f64, nlist: usize, tag: &str) -> (usize, f64) {
    for nprobe in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        if nprobe > nlist.max(1) {
            break;
        }
        let r = eval(nprobe);
        println!("  {tag}: nprobe={nprobe:>3}  recall@{K}={r:.3}");
        if r >= RECALL_FLOOR {
            return (nprobe, r);
        }
    }
    panic!("{tag}: no swept nprobe reached recall@{K} ≥ {RECALL_FLOOR}")
}

/// One corpus size's measured frontier row.
struct FrontierRow {
    n: usize,
    dim: usize,
    scalar_flat_ms: f64,
    simd_flat_ms: f64,
    scalar_cosine_ms: f64,
    simd_cosine_ms: f64,
    ivf_nprobe: usize,
    ivf_recall: f64,
    ivf_ms: f64,
    sq8_recall: f64,
    sq8_ms: f64,
    ivfsq8_nprobe: usize,
    ivfsq8_recall: f64,
    ivfsq8_ms: f64,
    flat_bytes: usize,
    sq8_bytes: usize,
    ivfsq8_bytes: usize,
}

fn write_report(rows: &[FrontierRow]) {
    let mut out = String::from("{\n  \"bench\": \"vector_index\",\n  \"unit\": \"ms\",\n");
    out.push_str(&format!(
        "  \"queries\": {N_QUERIES}, \"k\": {K},\n  \"results\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"dim\": {}, \"scalar_flat_ms\": {:.2}, \"simd_flat_ms\": {:.2}, \
             \"simd_speedup\": {:.2}, \"scalar_cosine_ms\": {:.2}, \"simd_cosine_ms\": {:.2}, \
             \"simd_cosine_speedup\": {:.2}, \
             \"ivf_nprobe\": {}, \"ivf_recall\": {:.3}, \"ivf_ms\": {:.2}, \
             \"sq8_recall\": {:.3}, \"sq8_ms\": {:.2}, \"ivfsq8_nprobe\": {}, \
             \"ivfsq8_recall\": {:.3}, \"ivfsq8_ms\": {:.2}, \"ivfsq8_speedup_vs_scalar\": {:.1}, \
             \"flat_bytes\": {}, \"sq8_bytes\": {}, \"ivfsq8_bytes\": {}}}{}\n",
            r.n,
            r.dim,
            r.scalar_flat_ms,
            r.simd_flat_ms,
            r.scalar_flat_ms / r.simd_flat_ms,
            r.scalar_cosine_ms,
            r.simd_cosine_ms,
            r.scalar_cosine_ms / r.simd_cosine_ms,
            r.ivf_nprobe,
            r.ivf_recall,
            r.ivf_ms,
            r.sq8_recall,
            r.sq8_ms,
            r.ivfsq8_nprobe,
            r.ivfsq8_recall,
            r.ivfsq8_ms,
            r.scalar_flat_ms / r.ivfsq8_ms,
            r.flat_bytes,
            r.sq8_bytes,
            r.ivfsq8_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let dest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_index.json");
    std::fs::write(&dest, out).unwrap();
    println!("wrote {}", dest.display());
}

fn bench_vector_index(c: &mut Criterion) {
    // Full sizes per the issue under `cargo bench` (release profile);
    // the CI smoke compiles benches under the unoptimized test profile
    // (debug_assertions on) and gets a corpus it can index fast.
    let test_mode = std::env::args().any(|a| a == "--test") || cfg!(debug_assertions);
    let sizes: &[usize] = if test_mode {
        &[2_000]
    } else {
        &[100_000, 1_000_000]
    };
    let dim = 32;
    let mut rows = Vec::new();

    for &n in sizes {
        let corpus = clustered(n, (n as f64).sqrt() as usize / 2, dim, 0x1dab + n as u64);
        let qs = queries(&corpus, N_QUERIES, 0x9e1);
        let store = VectorStore::from_rows(&corpus);
        drop(corpus); // the stores now carry the data; free ~n*dim*4 B
        let refs: Vec<&[f32]> = qs.iter().map(Vec::as_slice).collect();
        let train_iters = if test_mode { 4 } else { 8 };

        let flat = FlatIndex::new(store.clone(), Metric::Euclidean);
        let truth: Vec<HashSet<u32>> = qs
            .iter()
            .map(|q| flat.search(q, K).iter().map(|h| h.0).collect())
            .collect();

        println!("\nvector_index: n={n} dim={dim} (recall@{K} floor {RECALL_FLOOR})");

        // ---- Kernel axis: the same exact scan on both arms. ----
        simd::set_kernel_override(Some(Kernel::Scalar));
        let scalar_flat_ms = time_batch(&flat, &refs);
        simd::set_kernel_override(None);
        let simd_flat_ms = time_batch(&flat, &refs);
        println!(
            "  flat: scalar {scalar_flat_ms:.2} ms vs {} {simd_flat_ms:.2} ms \
             ({:.2}× speedup, bit-identical results)",
            simd::kernel_name(),
            scalar_flat_ms / simd_flat_ms,
        );
        let cflat = FlatIndex::new(store.clone(), Metric::Cosine);
        simd::set_kernel_override(Some(Kernel::Scalar));
        let scalar_cosine_ms = time_batch(&cflat, &refs);
        simd::set_kernel_override(None);
        let simd_cosine_ms = time_batch(&cflat, &refs);
        drop(cflat);
        println!(
            "  flat cosine: scalar {scalar_cosine_ms:.2} ms vs {} {simd_cosine_ms:.2} ms \
             ({:.2}× speedup, bit-identical results)",
            simd::kernel_name(),
            scalar_cosine_ms / simd_cosine_ms,
        );

        // ---- IVF at the cheapest nprobe holding the recall floor. ----
        let mut ivf = IvfIndex::build(
            store.clone(),
            Metric::Euclidean,
            &IvfConfig {
                nlist: 0, // auto √n
                nprobe: 1,
                train_iters,
                ..Default::default()
            },
        );
        let nlist = ivf.nlist();
        let (ivf_nprobe, ivf_recall) = tune_nprobe(
            &mut |p| {
                ivf.set_nprobe(p);
                mean_recall(&ivf, &truth, &qs)
            },
            nlist,
            "ivf",
        );
        let ivf_ms = time_batch(&ivf, &refs);

        // ---- Flat SQ8 with exact re-rank: full-recall compression. ----
        let sq8 = Sq8Index::build(
            store.clone(),
            Metric::Euclidean,
            &Sq8Config {
                nlist: 0,
                rerank_factor: 4,
                ..Default::default()
            },
        );
        let sq8_recall = mean_recall(&sq8, &truth, &qs);
        let sq8_ms = time_batch(&sq8, &refs);
        assert!(
            sq8_recall >= RECALL_FLOOR,
            "re-ranked flat SQ8 must hold the recall floor: {sq8_recall:.3}"
        );

        // ---- IVF+SQ8, rerank 0: the memory-parity serving point. ----
        let mut ivfsq8 = Sq8Index::build(
            store,
            Metric::Euclidean,
            &Sq8Config {
                nlist: Sq8Config::AUTO_NLIST,
                nprobe: 1,
                rerank_factor: 0,
                train_iters,
                ..Default::default()
            },
        );
        let nlist = ivfsq8.nlist();
        let (ivfsq8_nprobe, ivfsq8_recall) = tune_nprobe(
            &mut |p| {
                ivfsq8.set_nprobe(p);
                mean_recall(&ivfsq8, &truth, &qs)
            },
            nlist,
            "ivf+sq8",
        );
        let ivfsq8_ms = time_batch(&ivfsq8, &refs);

        let row = FrontierRow {
            n,
            dim,
            scalar_flat_ms,
            simd_flat_ms,
            scalar_cosine_ms,
            simd_cosine_ms,
            ivf_nprobe,
            ivf_recall,
            ivf_ms,
            sq8_recall,
            sq8_ms,
            ivfsq8_nprobe,
            ivfsq8_recall,
            ivfsq8_ms,
            flat_bytes: flat.stats().resident_bytes,
            sq8_bytes: sq8.stats().resident_bytes,
            ivfsq8_bytes: ivfsq8.stats().resident_bytes,
        };
        println!(
            "  frontier: ivf nprobe={} {:.2} ms | sq8 {:.2} ms | ivf+sq8 nprobe={} {:.2} ms \
             ({:.1}× vs scalar flat) | bytes flat {} vs ivf+sq8 {} ({:.2}×)",
            row.ivf_nprobe,
            row.ivf_ms,
            row.sq8_ms,
            row.ivfsq8_nprobe,
            row.ivfsq8_ms,
            row.scalar_flat_ms / row.ivfsq8_ms,
            row.flat_bytes,
            row.ivfsq8_bytes,
            row.ivfsq8_bytes as f64 / row.flat_bytes as f64,
        );

        // Memory parity holds at every size (it's a layout property).
        assert!(
            row.ivfsq8_bytes * 3 <= row.flat_bytes,
            "ivf+sq8 must be ≤ 1/3 of flat's resident bytes: {} vs {}",
            row.ivfsq8_bytes,
            row.flat_bytes
        );
        // Wall-clock floors only bind on the real corpus — debug-profile
        // smoke timings on 2k vectors measure nothing.
        if !test_mode && n >= 1_000_000 {
            // The 3× floor binds on the fused cosine scan; Euclidean is
            // width-bound against the SSE-auto-vectorized scalar
            // reference (see the module docs), floored at 1.8×.
            assert!(
                scalar_cosine_ms >= 3.0 * simd_cosine_ms,
                "SIMD cosine flat must be ≥ 3× scalar at n={n}: \
                 {scalar_cosine_ms:.2} vs {simd_cosine_ms:.2} ms"
            );
            assert!(
                scalar_flat_ms >= 1.8 * simd_flat_ms,
                "SIMD flat must be ≥ 1.8× scalar flat at n={n}: {scalar_flat_ms:.2} vs {simd_flat_ms:.2} ms"
            );
            assert!(
                scalar_flat_ms >= 25.0 * ivfsq8_ms,
                "IVF+SQ8 must be ≥ 25× scalar flat at n={n}: {scalar_flat_ms:.2} vs {ivfsq8_ms:.2} ms"
            );
        }
        rows.push(row);

        // Criterion statistics on the mid-size corpus only (a 1M-row
        // scalar criterion pass would dominate the whole run).
        if n <= 100_000 {
            let mut g = c.benchmark_group(format!("vector_index/{n}"));
            g.sample_size(10);
            g.throughput(Throughput::Elements(N_QUERIES as u64));
            g.bench_function(BenchmarkId::new("flat", n), |b| {
                b.iter(|| black_box(flat.search_batch(&refs, K)))
            });
            g.bench_function(
                BenchmarkId::new(format!("ivf_nprobe{ivf_nprobe}"), n),
                |b| b.iter(|| black_box(ivf.search_batch(&refs, K))),
            );
            g.bench_function(BenchmarkId::new("sq8_rerank4", n), |b| {
                b.iter(|| black_box(sq8.search_batch(&refs, K)))
            });
            g.bench_function(
                BenchmarkId::new(format!("ivfsq8_nprobe{ivfsq8_nprobe}"), n),
                |b| b.iter(|| black_box(ivfsq8.search_batch(&refs, K))),
            );
            g.finish();
        }
    }

    // Only a real bench run may rewrite the committed trajectory.
    if !test_mode {
        write_report(&rows);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_vector_index
}
criterion_main!(benches);
