//! Error prediction from query syntax (paper §4, "Error prediction").
//!
//! Syntax patterns correlate with resource errors and engine bugs; with
//! learned features "a classifier to predict errors from syntax is
//! trivial to engineer". Predicted-risky queries can be routed to an
//! instrumented or higher-memory runtime before they fail.

use super::{AppOutput, AppReport, TrainCorpus, WorkloadApp};
use crate::enriched::EnrichedQuery;
use crate::error::Result;
use querc_embed::Embedder;
use querc_learn::{Classifier, ForestConfig, RandomForest};
use querc_linalg::Pcg32;
use querc_workloads::QueryRecord;
use std::sync::Arc;

/// Risk assessment for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorRisk {
    /// Probability the query fails (forest vote share).
    pub probability: f64,
    /// True when above the predictor's threshold.
    pub risky: bool,
}

/// A trained error predictor (binary: fails / succeeds).
pub struct ErrorPredictor {
    embedder: Arc<dyn Embedder>,
    model: RandomForest,
    /// Queries with failure probability ≥ this are flagged.
    pub threshold: f64,
}

impl ErrorPredictor {
    /// Train from log records (the error label ships in the log itself —
    /// "training data is readily available from the query logs").
    pub fn train(
        records: &[QueryRecord],
        embedder: Arc<dyn Embedder>,
        threshold: f64,
        seed: u64,
    ) -> ErrorPredictor {
        let docs: Vec<Vec<String>> = records.iter().map(|r| r.tokens()).collect();
        let vectors = embedder.embed_batch(&docs);
        let labels: Vec<u32> = records.iter().map(|r| u32::from(r.is_error())).collect();
        let mut model = RandomForest::new(ForestConfig::extra_trees(40));
        let mut rng = Pcg32::with_stream(seed, 0xe440);
        model.fit(&vectors, &labels, 2, &mut rng);
        ErrorPredictor {
            embedder,
            model,
            threshold,
        }
    }

    /// Assess one query.
    pub fn assess(&self, sql: &str) -> ErrorRisk {
        self.assess_vector(&self.embedder.embed_sql(sql))
    }

    /// Assess a precomputed embedding vector — the single risk rule
    /// shared by the SQL-level, batched, and serving paths.
    pub fn assess_vector(&self, v: &[f32]) -> ErrorRisk {
        let proba = self.model.predict_proba(v, 2);
        let probability = proba.get(1).copied().unwrap_or(0.0) as f64;
        ErrorRisk {
            probability,
            risky: probability >= self.threshold,
        }
    }

    /// Fraction of held-out records classified correctly (diagnostic).
    pub fn holdout_accuracy(&self, records: &[QueryRecord]) -> f64 {
        if records.is_empty() {
            return 0.0;
        }
        let hits = records
            .iter()
            .filter(|r| self.assess(&r.sql).risky == r.is_error())
            .count();
        hits as f64 / records.len() as f64
    }

    /// Assess a chunk of pre-tokenized queries through the embedder's
    /// batched path.
    pub fn assess_batch(&self, docs: &[Vec<String>]) -> Vec<ErrorRisk> {
        self.embedder
            .embed_batch(docs)
            .iter()
            .map(|v| self.assess_vector(v))
            .collect()
    }
}

/// [`ErrorPredictor`] behind the uniform [`WorkloadApp`] interface.
///
/// Labels attached per query: `error_probability` and `error_risky` —
/// routable to an instrumented runtime before the query fails.
pub struct ErrorsApp {
    embedder: Arc<dyn Embedder>,
    /// Queries with failure probability ≥ this are flagged.
    pub threshold: f64,
}

impl ErrorsApp {
    /// An error-prediction app over `embedder` with the default 0.5
    /// flagging threshold.
    pub fn new(embedder: Arc<dyn Embedder>) -> ErrorsApp {
        ErrorsApp {
            embedder,
            threshold: 0.5,
        }
    }

    /// Override the failure-probability flagging threshold.
    pub fn with_threshold(mut self, threshold: f64) -> ErrorsApp {
        self.threshold = threshold;
        self
    }
}

/// A fitted error model plus its training size.
pub struct ErrorsModel {
    /// The underlying trained predictor (bespoke entry point).
    pub predictor: ErrorPredictor,
    trained_queries: usize,
}

impl WorkloadApp for ErrorsApp {
    type Model = ErrorsModel;

    fn name(&self) -> &'static str {
        "errors"
    }

    fn task(&self) -> &'static str {
        "predict failure probability from query syntax"
    }

    fn fit(&self, corpus: &TrainCorpus) -> Result<ErrorsModel> {
        corpus.require_records("errors.fit")?;
        Ok(ErrorsModel {
            predictor: ErrorPredictor::train(
                &corpus.records,
                Arc::clone(&self.embedder),
                self.threshold,
                corpus.seed ^ 0xe440,
            ),
            trained_queries: corpus.len(),
        })
    }

    fn label_batch(&self, model: &ErrorsModel, batch: &[EnrichedQuery]) -> Result<Vec<AppOutput>> {
        let vectors = EnrichedQuery::vectors(batch, model.predictor.embedder.as_ref());
        Ok(vectors
            .iter()
            .map(|v| {
                let risk = model.predictor.assess_vector(v);
                let mut out = AppOutput::new();
                out.set("error_probability", format!("{:.3}", risk.probability));
                out.set("error_risky", risk.risky.to_string());
                out
            })
            .collect())
    }

    fn embedder(&self) -> Option<Arc<dyn Embedder>> {
        Some(Arc::clone(&self.embedder))
    }

    fn report(&self, model: &ErrorsModel) -> AppReport {
        AppReport {
            app: self.name().to_string(),
            task: self.task().to_string(),
            trained_queries: model.trained_queries,
            detail: vec![
                (
                    "embedder".to_string(),
                    model.predictor.embedder.name().to_string(),
                ),
                (
                    "threshold".to_string(),
                    format!("{:.2}", model.predictor.threshold),
                ),
            ],
        }
    }

    fn save_model(&self, model: &ErrorsModel) -> Option<String> {
        crate::persist::to_json(&ErrorsState {
            forest: model.predictor.model.to_state(),
            threshold: model.predictor.threshold,
            trained_queries: model.trained_queries,
        })
    }

    fn load_model(&self, json: &str) -> Result<ErrorsModel> {
        let state: ErrorsState = crate::persist::from_json(json, "errors model")?;
        crate::persist::check_forest(&state.forest, self.embedder.dim())?;
        let model =
            RandomForest::from_state(state.forest).map_err(crate::persist::bad_learn_state)?;
        Ok(ErrorsModel {
            predictor: ErrorPredictor {
                embedder: Arc::clone(&self.embedder),
                model,
                threshold: state.threshold,
            },
            trained_queries: state.trained_queries,
        })
    }
}

/// Serialized form of an [`ErrorsModel`]. The threshold travels with
/// the model (it is a label-time decision rule), so a restored model
/// flags exactly the queries the saved one did.
#[derive(serde::Serialize, serde::Deserialize)]
struct ErrorsState {
    forest: querc_learn::ForestState,
    threshold: f64,
    trained_queries: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A workload where one query shape reliably blows memory.
    fn records(seed_off: u64) -> Vec<QueryRecord> {
        (0..80)
            .map(|i| {
                let i = i + seed_off * 1000;
                let flaky = i.is_multiple_of(4);
                let sql = if flaky {
                    format!(
                        "select a.*, b.* from giant_facts a join giant_facts b on a.k = b.k where a.x > {i}"
                    )
                } else {
                    format!("select c from small_dim where id = {i}")
                };
                QueryRecord {
                    sql,
                    user: "u".into(),
                    account: "a".into(),
                    cluster: "c".into(),
                    dialect: "generic".into(),
                    runtime_ms: 1.0,
                    mem_mb: 1.0,
                    // The flaky shape fails most of the time.
                    error_code: (flaky && i % 8 != 4).then_some(604),
                    timestamp: i,
                }
            })
            .collect()
    }

    fn predictor() -> ErrorPredictor {
        ErrorPredictor::train(
            &records(0),
            Arc::new(querc_embed::BagOfTokens::new(64, true)),
            0.5,
            1,
        )
    }

    #[test]
    fn flaky_shape_is_risky_safe_shape_is_not() {
        let p = predictor();
        let risky = p.assess(
            "select a.*, b.* from giant_facts a join giant_facts b on a.k = b.k where a.x > 999",
        );
        let safe = p.assess("select c from small_dim where id = 999");
        assert!(risky.probability > safe.probability);
        assert!(risky.risky, "{risky:?}");
        assert!(!safe.risky, "{safe:?}");
    }

    #[test]
    fn holdout_accuracy_beats_base_rate() {
        let p = predictor();
        let held = records(7);
        let acc = p.holdout_accuracy(&held);
        // Base rate of the majority class ("no error") is ~81%.
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn errors_app_implements_workload_app() {
        // seed ^ 0xe440 == 1 → the exact forest `predictor()` exercises.
        let corpus = TrainCorpus::from_records(records(0), 0xe441);
        let app = ErrorsApp::new(Arc::new(querc_embed::BagOfTokens::new(64, true)));
        let model = app.fit(&corpus).unwrap();
        let risky = EnrichedQuery::from_sql(
            "select a.*, b.* from giant_facts a join giant_facts b on a.k = b.k where a.x > 999",
        );
        let safe = EnrichedQuery::from_sql("select c from small_dim where id = 999");
        let out = app.label_batch(&model, &[risky, safe]).unwrap();
        assert_eq!(out[0].get("error_risky"), Some("true"));
        assert_eq!(out[1].get("error_risky"), Some("false"));
        let p0: f64 = out[0].get("error_probability").unwrap().parse().unwrap();
        let p1: f64 = out[1].get("error_probability").unwrap().parse().unwrap();
        assert!(p0 > p1);
        assert_eq!(app.report(&model).app, "errors");
    }

    #[test]
    fn model_round_trips_through_save_load() {
        let corpus = TrainCorpus::from_records(records(0), 3);
        let app = ErrorsApp::new(Arc::new(querc_embed::BagOfTokens::new(64, true)));
        let model = app.fit(&corpus).unwrap();
        let json = app.save_model(&model).expect("forest is persistable");
        let restored = app.load_model(&json).unwrap();
        let batch: Vec<EnrichedQuery> = [
            "select a.*, b.* from giant_facts a join giant_facts b on a.k = b.k where a.x > 7",
            "select c from small_dim where id = 7",
        ]
        .iter()
        .map(|s| EnrichedQuery::from_sql(*s))
        .collect();
        assert_eq!(
            app.label_batch(&model, &batch).unwrap(),
            app.label_batch(&restored, &batch).unwrap()
        );
        assert_eq!(app.report(&restored), app.report(&model));
    }

    #[test]
    fn load_rejects_forest_wider_than_the_embedder() {
        let corpus = TrainCorpus::from_records(records(0), 3);
        let wide = ErrorsApp::new(Arc::new(querc_embed::BagOfTokens::new(64, true)));
        let json = wide.save_model(&wide.fit(&corpus).unwrap()).unwrap();
        // Restoring under a narrower embedder would index-panic at
        // label time; it must be rejected up front.
        let narrow = ErrorsApp::new(Arc::new(querc_embed::BagOfTokens::new(4, true)));
        assert!(matches!(
            narrow.load_model(&json),
            Err(crate::error::QuercError::Corrupt { .. })
        ));
        assert!(matches!(
            wide.load_model("{broken"),
            Err(crate::error::QuercError::Corrupt { .. })
        ));
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let p = predictor();
        for sql in ["select 1", "drop table x", ""] {
            let r = p.assess(sql);
            assert!((0.0..=1.0).contains(&r.probability));
        }
    }
}
