//! Quickstart: train an embedder, build a classifier, label queries.
//!
//! The minimal Querc loop from the paper's §2: pool a workload, learn a
//! representation once, then train a tiny labeler on top of it and serve
//! (embedder, labeler) as a classifier.
//!
//! Run with: `cargo run --release --example quickstart`

use querc::{EmbedderKind, LabeledQuery, ModelRegistry, TrainingConfig, TrainingModule};
use querc_embed::{Doc2VecConfig, VocabConfig};

fn main() {
    // 1. A toy query log: two applications with distinct habits. In
    //    production these arrive over Qworker streams; here we ingest
    //    directly.
    let mut trainer = TrainingModule::new(TrainingConfig::default());
    for i in 0..60 {
        let mut lq = if i % 2 == 0 {
            LabeledQuery::new(format!(
                "select region, sum(amount) from sales_facts where day >= '2024-01-{:02}' group by region",
                1 + i % 28
            ))
        } else {
            LabeledQuery::new(format!(
                "insert into clickstream values ({i}, 'pageview', {i})"
            ))
        };
        lq.set("app", if i % 2 == 0 { "dashboards" } else { "ingest" });
        trainer.ingest(lq);
    }

    // 2. Learn a representation from the pooled corpus (Doc2Vec here; use
    //    EmbedderKind::Lstm for the autoencoder).
    let embedder = trainer.train_embedder(&EmbedderKind::Doc2Vec(Doc2VecConfig {
        dim: 32,
        epochs: 20,
        vocab: VocabConfig {
            min_count: 1,
            max_size: 1000,
            hash_buckets: 64,
        },
        ..Default::default()
    }));
    println!(
        "trained {} embedder, dim = {}",
        embedder.name(),
        embedder.dim()
    );

    // 3. Train a labeler for the `app` label and deploy the (embedder,
    //    labeler) pair through the registry.
    let registry = ModelRegistry::new();
    let version = trainer
        .train_and_deploy(&registry, &embedder, "app")
        .expect("training data carries the label");
    println!("deployed classifier `app` v{version}");

    // 4. Serve: label unseen queries.
    let clf = registry.get("app").expect("deployed");
    for sql in [
        "select region, sum(amount) from sales_facts where day >= '2024-03-01' group by region",
        "insert into clickstream values (999, 'click', 42)",
    ] {
        println!("  {:<95} -> {}", sql, clf.label_sql(sql));
    }
}
