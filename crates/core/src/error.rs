//! The workspace-wide error type for the labeling pipeline.
//!
//! Before this module existed, bad inputs died as `assert!`s deep inside
//! training code (dimension mismatches, empty corpora) or as index
//! panics inside `querc-learn`. Everything reachable from the
//! [`crate::apps::WorkloadApp`] / [`crate::service::WorkloadManager`]
//! surface now reports a [`QuercError`] instead; the legacy bespoke
//! entry points keep their panicking signatures but route through the
//! same checks, so they fail with a named error message rather than an
//! index out of bounds.
//!
//! Hand-rolled in `thiserror` style — the build environment is offline,
//! so no derive dependency.

use std::fmt;

/// Convenience alias used across `querc`.
pub type Result<T> = std::result::Result<T, QuercError>;

/// Every failure the labeling pipeline can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuercError {
    /// A training entry point received zero usable queries.
    EmptyCorpus {
        /// Which component rejected the corpus (e.g. `"audit.fit"`).
        context: &'static str,
    },
    /// A vector's dimensionality disagrees with the trained model.
    DimensionMismatch {
        /// Which component detected the mismatch.
        context: &'static str,
        /// Dimensionality the model was trained with.
        expected: usize,
        /// Dimensionality actually received.
        got: usize,
    },
    /// Training rows and label rows have different lengths.
    LabelMismatch {
        /// Number of training vectors.
        vectors: usize,
        /// Number of labels.
        labels: usize,
    },
    /// No logged query carries the requested label.
    MissingLabel {
        /// The label name that was requested.
        label: String,
    },
    /// `submit`/`report` named an application the manager doesn't know.
    UnknownApp {
        /// The unregistered application name.
        app: String,
    },
    /// A registry lookup missed — the classifier was never deployed (or
    /// was undeployed).
    ModelNotDeployed {
        /// The classifier name that was looked up.
        name: String,
    },
    /// A serving channel hung up while the manager still needed it.
    ChannelClosed {
        /// Which operation hit the closed channel.
        context: &'static str,
    },
    /// An app's `label_batch` was handed a model fitted by a different
    /// app type (only reachable through the type-erased serving path).
    ModelTypeMismatch {
        /// The application whose model downcast failed.
        app: String,
    },
    /// Catch-all for app-specific training failures.
    Training {
        /// Which component failed.
        context: &'static str,
        /// Human-readable failure description.
        message: String,
    },
    /// QoS admission control shed this query instead of enqueuing it —
    /// the tenant exceeded its rate, its backlog cap, or its shard's
    /// queue was full. An explicit per-tenant outcome, not a failure of
    /// the serving plane: other tenants proceed unaffected.
    Rejected {
        /// The routing key whose budget was exceeded.
        tenant: String,
        /// Which admission check shed the query.
        reason: crate::qos::RejectReason,
    },
    /// A snapshot failed validation: bad magic, CRC mismatch,
    /// truncation, or structurally-valid bytes that decode to an
    /// inconsistent state (e.g. out-of-range tree indices). Restore
    /// never panics on corrupt input — it reports this.
    Corrupt {
        /// What failed to validate, and where.
        detail: String,
    },
}

impl fmt::Display for QuercError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuercError::EmptyCorpus { context } => {
                write!(f, "{context}: training corpus is empty")
            }
            QuercError::DimensionMismatch {
                context,
                expected,
                got,
            } => write!(
                f,
                "{context}: dimension mismatch (expected {expected}, got {got})"
            ),
            QuercError::LabelMismatch { vectors, labels } => write!(
                f,
                "training rows and labels disagree ({vectors} vectors, {labels} labels)"
            ),
            QuercError::MissingLabel { label } => {
                write!(f, "no logged query carries label `{label}`")
            }
            QuercError::UnknownApp { app } => {
                write!(f, "no application registered under `{app}`")
            }
            QuercError::ModelNotDeployed { name } => {
                write!(f, "no classifier deployed under `{name}`")
            }
            QuercError::ChannelClosed { context } => {
                write!(f, "{context}: serving channel closed")
            }
            QuercError::ModelTypeMismatch { app } => {
                write!(f, "app `{app}` was handed a model of the wrong type")
            }
            QuercError::Training { context, message } => {
                write!(f, "{context}: {message}")
            }
            QuercError::Rejected { tenant, reason } => {
                write!(f, "query from tenant `{tenant}` rejected: {reason}")
            }
            QuercError::Corrupt { detail } => {
                write!(f, "corrupt snapshot: {detail}")
            }
        }
    }
}

impl std::error::Error for QuercError {}

impl From<querc_learn::LearnError> for QuercError {
    fn from(e: querc_learn::LearnError) -> QuercError {
        QuercError::Training {
            context: "learn",
            message: e.to_string(),
        }
    }
}

impl From<querc_persist::PersistError> for QuercError {
    fn from(e: querc_persist::PersistError) -> QuercError {
        match e {
            querc_persist::PersistError::Corrupt { detail } => QuercError::Corrupt { detail },
            querc_persist::PersistError::Io { detail } => QuercError::Training {
                context: "persist.io",
                message: detail,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QuercError::DimensionMismatch {
            context: "labeler.predict",
            expected: 64,
            got: 16,
        };
        let s = e.to_string();
        assert!(s.contains("64") && s.contains("16") && s.contains("labeler.predict"));
        assert!(QuercError::UnknownApp { app: "x".into() }
            .to_string()
            .contains("`x`"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(QuercError::EmptyCorpus { context: "test" });
        assert!(e.to_string().contains("empty"));
    }
}
