//! The unified serving façade end to end: all six workload apps behind
//! one `WorkloadManager`, fed a mixed query stream.
//!
//! Run with: `cargo run --release --example workload_manager`

use querc::apps::summarize::SummaryConfig;
use querc::apps::{
    AuditApp, ErrorsApp, RecommendApp, ResourcesApp, RoutingApp, SummarizeApp, TrainCorpus,
};
use querc::{LabeledQuery, WorkloadManager, WorkloadManagerConfig};
use querc_embed::{BagOfTokens, Embedder};
use querc_workloads::{SnowCloud, SnowCloudConfig};
use std::sync::Arc;

fn main() {
    // 1. A multi-tenant query log → training corpus (per-user session
    //    histories are derived automatically).
    let workload = SnowCloud::generate(&SnowCloudConfig::pretrain(6, 80, 0x2019));
    let corpus = TrainCorpus::from_records(workload.records.clone(), 0x2019);
    println!(
        "corpus: {} queries, {} user sessions",
        corpus.len(),
        corpus.histories.len()
    );

    // 2. One shared embedder, six apps, one manager.
    let embedder: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(128, true));
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
        shards_per_app: 2,
        batch: 32,
        ..Default::default()
    });
    mgr.register(AuditApp::new(embedder.clone()), &corpus)
        .unwrap();
    mgr.register(ErrorsApp::new(embedder.clone()), &corpus)
        .unwrap();
    mgr.register(
        RecommendApp::new(embedder.clone()).with_clusters(6),
        &corpus,
    )
    .unwrap();
    mgr.register(ResourcesApp::new(embedder.clone()), &corpus)
        .unwrap();
    mgr.register(RoutingApp::new(embedder.clone()), &corpus)
        .unwrap();
    mgr.register(
        SummarizeApp::new(embedder.clone()).with_config(SummaryConfig {
            k: Some(8),
            ..Default::default()
        }),
        &corpus,
    )
    .unwrap();

    println!("\nregistered apps:");
    for report in mgr.reports().unwrap() {
        println!(
            "  {:<10} {:<62} ({} training queries)",
            report.app, report.task, report.trained_queries
        );
    }

    // 3. Error paths are typed, not panics.
    let err = mgr
        .submit("no-such-app", LabeledQuery::new("select 1"))
        .unwrap_err();
    println!("\nsubmit to unknown app -> {err}");
    let err = mgr
        .register(AuditApp::new(embedder.clone()), &TrainCorpus::default())
        .unwrap_err();
    println!("register on empty corpus -> {err}");

    // 4. A mixed stream, round-robin across the apps.
    let apps = mgr.app_names();
    for (i, record) in workload.records.iter().take(240).enumerate() {
        let mut lq = LabeledQuery::from_record(record);
        lq.set("user", record.user.clone());
        mgr.submit(&apps[i % apps.len()], lq).unwrap();
    }

    // 5. Drain: labeled outputs per app + training mirror + counters.
    let drained = mgr.drain();
    println!("\nper-app throughput:");
    for tp in &drained.throughput {
        println!(
            "  {:<10} submitted {:>3}  processed {:>3}  {}",
            tp.app,
            tp.submitted,
            tp.processed,
            tp.latency.display()
        );
    }
    println!("training mirror: {} queries", drained.training_log.len());

    // App-attached labels are appended after the record's imported
    // metadata, so the tail of the label list is each app's output.
    println!("\nsample app-attached labels:");
    for (app, queries) in &drained.outputs {
        if let Some(lq) = queries.first() {
            let labels: Vec<String> = lq
                .labels
                .iter()
                .rev()
                .take(3)
                .rev()
                .map(|(n, v)| format!("{n}={}", v.chars().take(36).collect::<String>()))
                .collect();
            println!("  {:<10} {}", app, labels.join("  "));
        }
    }
}
