//! Integration: the embed-once ingress plane across all six apps.
//!
//! One embedder Arc serves every app; a templated trace goes through a
//! cache-enabled and a cache-disabled manager. The contract under test:
//! per-app label outputs are **bit-identical** either way (caching is an
//! amortization, never a semantic change), misses equal the trace's
//! template cardinality, and every other submission is a hit.

use querc::apps::summarize::SummaryConfig;
use querc::apps::{
    AuditApp, ErrorsApp, RecommendApp, ResourcesApp, RoutingApp, SummarizeApp, TrainCorpus,
};
use querc::{LabeledQuery, ServiceDrain, WorkloadManager, WorkloadManagerConfig};
use querc_embed::{BagOfTokens, Embedder};
use querc_workloads::{QueryRecord, ReplayConfig, ReplaySchedule};
use std::sync::Arc;

fn templated_sql(template: usize, literal: usize) -> String {
    match template % 5 {
        0 => format!("select v from kv_store where k = {literal}"),
        1 => format!("select revenue, region from finance_cube where q = {literal} group by region"),
        2 => format!(
            "insert into lake_events select * from staging where batch = {}",
            literal % 3
        ),
        3 => format!("select count(*) from web_clicks where day = {literal}"),
        _ => format!(
            "select a.g, sum(b.v) from facts a join facts b on a.k = b.k where a.x > {literal} group by a.g"
        ),
    }
}

fn training_records() -> Vec<QueryRecord> {
    (0..100u64)
        .map(|i| QueryRecord {
            sql: templated_sql(i as usize, i as usize),
            user: format!("acct/u{}", i % 3),
            account: "acct".into(),
            cluster: if i % 2 == 0 { "bi" } else { "etl" }.into(),
            dialect: "generic".into(),
            runtime_ms: [5.0, 300.0, 2000.0][(i % 3) as usize],
            mem_mb: 10.0,
            error_code: (i % 5 == 4 && i % 2 == 0).then_some(604),
            timestamp: i,
        })
        .collect()
}

/// Register all six apps over ONE embedder Arc and serve `trace`.
fn serve(corpus: &TrainCorpus, trace: &[LabeledQuery], cache_capacity: usize) -> ServiceDrain {
    let embedder: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(64, true));
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
        shards_per_app: 2,
        batch: 16,
        embed_cache_capacity: cache_capacity,
        ..Default::default()
    });
    mgr.register(AuditApp::new(embedder.clone()).with_trees(10), corpus)
        .unwrap();
    mgr.register(ErrorsApp::new(embedder.clone()), corpus)
        .unwrap();
    mgr.register(RecommendApp::new(embedder.clone()).with_clusters(4), corpus)
        .unwrap();
    mgr.register(ResourcesApp::new(embedder.clone()), corpus)
        .unwrap();
    mgr.register(RoutingApp::new(embedder.clone()), corpus)
        .unwrap();
    mgr.register(
        SummarizeApp::new(embedder.clone()).with_config(SummaryConfig {
            k: Some(4),
            ..Default::default()
        }),
        corpus,
    )
    .unwrap();
    for app in mgr.app_names() {
        mgr.submit_batch(&app, trace.iter().cloned()).unwrap();
    }
    mgr.drain()
}

/// Order-independent view of one app's outputs (shards race on
/// completion order; the label multiset is the invariant).
fn sorted_labels(drain: &ServiceDrain, app: &str) -> Vec<Vec<(String, String)>> {
    let mut labels: Vec<Vec<(String, String)>> = drain.outputs[app]
        .iter()
        .map(|lq| lq.labels.clone())
        .collect();
    labels.sort();
    labels
}

#[test]
fn cached_serving_is_bit_identical_and_embeds_each_template_once() {
    let corpus = TrainCorpus::from_records(training_records(), 0x2019);
    let trace: Vec<LabeledQuery> = (0..120)
        .map(|i| {
            let mut lq = LabeledQuery::new(templated_sql(i, 7000 + i));
            lq.set("user", format!("acct/u{}", i % 3));
            lq.set("cluster", if i % 2 == 0 { "bi" } else { "etl" });
            lq
        })
        .collect();
    // The trace's template cardinality, as the load harness reports it.
    let records: Vec<QueryRecord> = training_records()
        .into_iter()
        .zip(&trace)
        .map(|(mut r, lq)| {
            r.sql = lq.sql.clone();
            r
        })
        .collect();
    let schedule = ReplaySchedule::from_records(&records, &ReplayConfig::default());
    let templates = schedule.distinct_templates();
    assert_eq!(templates, 5, "five templates by construction");

    let off = serve(&corpus, &trace, 0);
    let on = serve(&corpus, &trace, 4096);

    // 1. Bit-identical labels per app, cache on vs. off.
    for app in off.outputs.keys() {
        assert_eq!(
            sorted_labels(&off, app),
            sorted_labels(&on, app),
            "{app}: cache on/off must label identically"
        );
    }

    // 2. Each template embedded exactly once across ALL six apps.
    assert_eq!(on.embed_cache.misses, templates as u64);
    assert_eq!(on.embed_cache.entries, templates as u64);
    assert_eq!(on.embed_cache.evictions, 0);

    // 3. Everything else was a hit: 6 apps × 120 queries − 5 embeds.
    let submissions = 6 * trace.len() as u64;
    assert_eq!(on.embed_cache.hits, submissions - templates as u64);

    // 4. Per-app attribution adds up, and every app after the first
    //    sighting of each template served pure hits.
    let (mut hits, mut misses) = (0u64, 0u64);
    for tp in &on.throughput {
        assert_eq!(
            tp.cache_hits + tp.cache_misses,
            trace.len() as u64,
            "{}: every submission is a lookup",
            tp.app
        );
        hits += tp.cache_hits;
        misses += tp.cache_misses;
    }
    assert_eq!((hits, misses), (on.embed_cache.hits, on.embed_cache.misses));

    // 5. The disabled-cache run reports an idle plane.
    assert_eq!(off.embed_cache.hits + off.embed_cache.misses, 0);
}
