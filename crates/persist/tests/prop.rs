//! Property tests: the snapshot reader is total — every corruption of a
//! valid snapshot surfaces `PersistError::Corrupt`, never a panic, and
//! every uncorrupted snapshot round-trips its sections bit-exactly.

use proptest::prelude::*;
use querc_persist::{PersistError, Snapshot, SnapshotReader};

/// Build a snapshot from generated `(name-suffix, payload)` sections.
fn build(sections: &[(String, Vec<u8>)]) -> Vec<u8> {
    let mut s = Snapshot::new();
    for (suffix, payload) in sections {
        s.add_section(&format!("sec-{suffix}"), payload.clone());
    }
    s.to_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Valid snapshots round-trip: every section's payload comes back
    /// bit-exact under last-wins lookup.
    #[test]
    fn roundtrip_is_exact(
        sections in prop::collection::vec(
            ("[a-z0-9]{1,8}", prop::collection::vec(any::<u8>(), 0..200)),
            0..6,
        )
    ) {
        let bytes = build(&sections);
        let r = SnapshotReader::from_bytes(&bytes).expect("valid snapshot");
        prop_assert_eq!(r.len(), sections.len());
        for (suffix, payload) in &sections {
            let name = format!("sec-{suffix}");
            // Last occurrence of the name wins; find it in the input.
            let expected = sections
                .iter()
                .rev()
                .find(|(s, _)| s == suffix)
                .map(|(_, p)| p.as_slice());
            prop_assert_eq!(r.section(&name), expected);
            let _ = payload;
        }
    }

    /// Any strict truncation of a valid snapshot is rejected with
    /// `Corrupt` — never accepted, never a panic.
    #[test]
    fn truncation_never_panics_never_passes(
        sections in prop::collection::vec(
            ("[a-z]{1,6}", prop::collection::vec(any::<u8>(), 0..120)),
            1..5,
        ),
        cut_seed in any::<u64>(),
    ) {
        let bytes = build(&sections);
        let cut = (cut_seed % bytes.len() as u64) as usize; // < len: strict prefix
        match SnapshotReader::from_bytes(&bytes[..cut]) {
            Err(PersistError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "wrong error for truncation: {other:?}"),
            Ok(_) => prop_assert!(false, "truncated snapshot accepted at {cut}/{}", bytes.len()),
        }
    }

    /// Any single bit flip in a valid snapshot is rejected with
    /// `Corrupt` — the per-section CRC, the footer CRC, or the framing
    /// catches it.
    #[test]
    fn bit_flips_never_panic_never_pass(
        sections in prop::collection::vec(
            ("[a-z]{1,6}", prop::collection::vec(any::<u8>(), 1..120)),
            1..5,
        ),
        pos_seed in any::<u64>(),
        bit in 0u32..8,
    ) {
        let bytes = build(&sections);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        let mut evil = bytes.clone();
        evil[pos] ^= 1u8 << bit;
        prop_assert!(evil != bytes);
        match SnapshotReader::from_bytes(&evil) {
            Err(PersistError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "wrong error for bit flip: {other:?}"),
            Ok(_) => prop_assert!(
                false,
                "bit flip at byte {pos} bit {bit} went undetected"
            ),
        }
    }

    /// Arbitrary garbage bytes never panic the reader.
    #[test]
    fn arbitrary_bytes_never_panic(
        garbage in prop::collection::vec(any::<u8>(), 0..400)
    ) {
        // Either a (vanishingly unlikely) valid parse or a clean error.
        let _ = SnapshotReader::from_bytes(&garbage);
    }
}
