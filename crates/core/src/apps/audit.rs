//! Security auditing by user/account prediction (paper §5.2).
//!
//! Train a classifier `V → user` from query syntax alone; at serving time
//! a query whose *predicted* user differs from the *actual* submitting
//! user is flagged for audit (a possibly compromised account). The same
//! machinery with `account` labels powers Table 1's account-labeling task
//! and misrouting detection.

use super::{AppOutput, AppReport, TrainCorpus, WorkloadApp};
use crate::classifier::TrainedLabeler;
use crate::enriched::EnrichedQuery;
use crate::error::Result;
use querc_embed::Embedder;
use querc_learn::{ForestConfig, RandomForest};
use querc_linalg::Pcg32;
use querc_workloads::QueryRecord;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Verdict for one audited query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditVerdict {
    /// The user the query was actually submitted as.
    pub actual_user: String,
    /// The user the model believes wrote it.
    pub predicted_user: String,
    /// True when prediction and reality disagree — flag for review.
    pub flagged: bool,
}

/// Per-account labeling accuracy (Table 2's rows).
#[derive(Debug, Clone, PartialEq)]
pub struct AccountAccuracy {
    /// Account (tenant) name.
    pub account: String,
    /// Held-out queries scored for this account.
    pub queries: usize,
    /// Distinct users seen in those queries.
    pub users: usize,
    /// Fraction of queries whose predicted user matched the actual one.
    pub accuracy: f64,
}

/// A trained security auditor.
pub struct SecurityAuditor {
    embedder: Arc<dyn Embedder>,
    user_model: TrainedLabeler,
    /// Number of records the user model was fitted on.
    pub trained_queries: usize,
}

impl SecurityAuditor {
    /// Train the user predictor from labeled log records.
    pub fn train(
        records: &[QueryRecord],
        embedder: Arc<dyn Embedder>,
        n_trees: usize,
        seed: u64,
    ) -> SecurityAuditor {
        let docs: Vec<Vec<String>> = records.iter().map(|r| r.tokens()).collect();
        let vectors = embedder.embed_batch(&docs);
        let names: Vec<&str> = records.iter().map(|r| r.user.as_str()).collect();
        let mut rng = Pcg32::with_stream(seed, 0xa0d1);
        let user_model = TrainedLabeler::train(
            RandomForest::new(ForestConfig::extra_trees(n_trees)),
            &vectors,
            &names,
            &mut rng,
        );
        SecurityAuditor {
            embedder,
            user_model,
            trained_queries: records.len(),
        }
    }

    /// Audit one query submission.
    pub fn audit(&self, sql: &str, actual_user: &str) -> AuditVerdict {
        let v = self.embedder.embed_sql(sql);
        let predicted = self.user_model.predict(&v).to_string();
        AuditVerdict {
            flagged: predicted != actual_user,
            actual_user: actual_user.to_string(),
            predicted_user: predicted,
        }
    }

    /// Audit a batch; returns only flagged verdicts with their indices.
    /// Embeds through the batched path.
    pub fn audit_batch(&self, records: &[QueryRecord]) -> Vec<(usize, AuditVerdict)> {
        let docs: Vec<Vec<String>> = records.iter().map(|r| r.tokens()).collect();
        self.predict_users_batch(&docs)
            .into_iter()
            .zip(records)
            .enumerate()
            .filter_map(|(i, (predicted, r))| {
                (predicted != r.user).then_some((
                    i,
                    AuditVerdict {
                        flagged: true,
                        actual_user: r.user.clone(),
                        predicted_user: predicted,
                    },
                ))
            })
            .collect()
    }

    /// Predict the submitting user for a chunk of pre-tokenized queries
    /// through the embedder's batched path — the serving hot loop.
    pub fn predict_users_batch(&self, docs: &[Vec<String>]) -> Vec<String> {
        self.embedder
            .embed_batch(docs)
            .iter()
            .map(|v| self.user_model.predict(v).to_string())
            .collect()
    }

    /// Distinct users seen at training time.
    pub fn known_users(&self) -> usize {
        self.user_model.labels().len()
    }
}

/// [`SecurityAuditor`] behind the uniform [`WorkloadApp`] interface.
///
/// Labels attached per query: `predicted_user`, plus `audit_flag=true`
/// when the query carries a `user` label that disagrees with the
/// prediction (§5.2's compromised-account signal).
pub struct AuditApp {
    embedder: Arc<dyn Embedder>,
    /// Trees in the user-prediction forest.
    pub n_trees: usize,
}

impl AuditApp {
    /// An auditing app over `embedder` with the default forest size.
    pub fn new(embedder: Arc<dyn Embedder>) -> AuditApp {
        AuditApp {
            embedder,
            n_trees: 40,
        }
    }

    /// Override the number of trees in the user-prediction forest.
    pub fn with_trees(mut self, n_trees: usize) -> AuditApp {
        self.n_trees = n_trees;
        self
    }
}

impl WorkloadApp for AuditApp {
    type Model = SecurityAuditor;

    fn name(&self) -> &'static str {
        "audit"
    }

    fn task(&self) -> &'static str {
        "predict the submitting user from syntax; flag out-of-character queries"
    }

    fn fit(&self, corpus: &TrainCorpus) -> Result<SecurityAuditor> {
        corpus.require_records("audit.fit")?;
        Ok(SecurityAuditor::train(
            &corpus.records,
            Arc::clone(&self.embedder),
            self.n_trees,
            corpus.seed ^ 0xa0d1,
        ))
    }

    fn label_batch(
        &self,
        model: &SecurityAuditor,
        batch: &[EnrichedQuery],
    ) -> Result<Vec<AppOutput>> {
        // Ingress-enriched vectors are reused; anything else embeds in
        // one batched call from the memoized token streams.
        let vectors = EnrichedQuery::vectors(batch, model.embedder.as_ref());
        Ok(batch
            .iter()
            .zip(vectors)
            .map(|(q, v)| {
                let user = model.user_model.predict(&v).to_string();
                let mut out = AppOutput::new();
                if let Some(actual) = q.get("user") {
                    out.set("audit_flag", (actual != user).to_string());
                }
                out.set("predicted_user", user);
                out
            })
            .collect())
    }

    fn embedder(&self) -> Option<Arc<dyn Embedder>> {
        Some(Arc::clone(&self.embedder))
    }

    fn report(&self, model: &SecurityAuditor) -> AppReport {
        AppReport {
            app: self.name().to_string(),
            task: self.task().to_string(),
            trained_queries: model.trained_queries,
            detail: vec![
                ("embedder".to_string(), model.embedder.name().to_string()),
                ("users".to_string(), model.known_users().to_string()),
                ("trees".to_string(), self.n_trees.to_string()),
            ],
        }
    }

    fn save_model(&self, model: &SecurityAuditor) -> Option<String> {
        crate::persist::to_json(&AuditState {
            labeler: model.user_model.export_state()?,
            trained_queries: model.trained_queries,
        })
    }

    fn load_model(&self, json: &str) -> Result<SecurityAuditor> {
        let state: AuditState = crate::persist::from_json(json, "audit model")?;
        let user_model = TrainedLabeler::from_state(state.labeler)?;
        if user_model.dim() != self.embedder.dim() {
            return Err(crate::persist::corrupt(format!(
                "audit model trained at dim {} but embedder has dim {}",
                user_model.dim(),
                self.embedder.dim()
            )));
        }
        Ok(SecurityAuditor {
            embedder: Arc::clone(&self.embedder),
            user_model,
            trained_queries: state.trained_queries,
        })
    }
}

/// Serialized form of a [`SecurityAuditor`] — just the labeler; the
/// embedder is app state and travels in the snapshot's app header.
#[derive(serde::Serialize, serde::Deserialize)]
struct AuditState {
    labeler: crate::classifier::LabelerState,
    trained_queries: usize,
}

/// Per-account user-prediction accuracy over held-out records, sorted by
/// query volume descending — exactly the layout of the paper's Table 2.
pub fn per_account_accuracy(
    auditor: &SecurityAuditor,
    records: &[QueryRecord],
) -> Vec<AccountAccuracy> {
    #[derive(Default)]
    struct Acc {
        hits: usize,
        total: usize,
        users: std::collections::HashSet<String>,
    }
    let mut by_account: BTreeMap<&str, Acc> = BTreeMap::new();
    for r in records {
        let verdict = auditor.audit(&r.sql, &r.user);
        let acc = by_account.entry(r.account.as_str()).or_default();
        acc.total += 1;
        acc.users.insert(r.user.clone());
        if !verdict.flagged {
            acc.hits += 1;
        }
    }
    let mut rows: Vec<AccountAccuracy> = by_account
        .into_iter()
        .map(|(account, acc)| AccountAccuracy {
            account: account.to_string(),
            queries: acc.total,
            users: acc.users.len(),
            accuracy: acc.hits as f64 / acc.total.max(1) as f64,
        })
        .collect();
    rows.sort_by_key(|row| std::cmp::Reverse(row.queries));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_embed::BagOfTokens;

    fn records() -> Vec<QueryRecord> {
        // Two users with sharply distinct habits.
        (0..40)
            .map(|i| {
                let (user, sql) = if i % 2 == 0 {
                    (
                        "acct/alice",
                        format!("select revenue from finance_reports where q = {i}"),
                    )
                } else {
                    (
                        "acct/bob",
                        format!("insert into sensor_stream values ({i}, {i})"),
                    )
                };
                QueryRecord {
                    sql,
                    user: user.into(),
                    account: "acct".into(),
                    cluster: "c0".into(),
                    dialect: "generic".into(),
                    runtime_ms: 1.0,
                    mem_mb: 1.0,
                    error_code: None,
                    timestamp: i,
                }
            })
            .collect()
    }

    fn auditor() -> SecurityAuditor {
        SecurityAuditor::train(&records(), Arc::new(BagOfTokens::new(64, true)), 15, 7)
    }

    #[test]
    fn normal_queries_pass_audit() {
        let a = auditor();
        let v = a.audit(
            "select revenue from finance_reports where q = 99",
            "acct/alice",
        );
        assert!(!v.flagged, "{v:?}");
    }

    #[test]
    fn out_of_character_query_is_flagged() {
        let a = auditor();
        // Alice's account suddenly issues Bob-style ingest traffic.
        let v = a.audit("insert into sensor_stream values (1, 2)", "acct/alice");
        assert!(v.flagged);
        assert_eq!(v.predicted_user, "acct/bob");
    }

    #[test]
    fn audit_batch_returns_only_flags() {
        let a = auditor();
        let mut recs = records();
        // Corrupt one record: bob's query under alice's name.
        recs[1].user = "acct/alice".into();
        let flags = a.audit_batch(&recs);
        assert!(flags.iter().any(|(i, _)| *i == 1));
        // Mostly unflagged.
        assert!(flags.len() < recs.len() / 4);
    }

    #[test]
    fn per_account_accuracy_shape() {
        let a = auditor();
        let rows = per_account_accuracy(&a, &records());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].users, 2);
        assert_eq!(rows[0].queries, 40);
        assert!(
            rows[0].accuracy > 0.9,
            "separable users: {}",
            rows[0].accuracy
        );
    }

    #[test]
    fn audit_app_implements_workload_app() {
        let corpus = TrainCorpus::from_records(records(), 7);
        let app = AuditApp::new(Arc::new(BagOfTokens::new(64, true))).with_trees(15);
        let model = app.fit(&corpus).unwrap();
        let mut suspicious = EnrichedQuery::from_sql("insert into sensor_stream values (1, 2)");
        suspicious.set("user", "acct/alice");
        let unlabeled = EnrichedQuery::from_sql("select revenue from finance_reports where q = 3");
        let out = app.label_batch(&model, &[suspicious, unlabeled]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("predicted_user"), Some("acct/bob"));
        assert_eq!(out[0].get("audit_flag"), Some("true"));
        assert_eq!(out[1].get("predicted_user"), Some("acct/alice"));
        assert_eq!(out[1].get("audit_flag"), None, "no actual user to compare");
        let report = app.report(&model);
        assert_eq!(report.app, "audit");
        assert_eq!(report.trained_queries, 40);
        assert!(app.fit(&TrainCorpus::default()).is_err(), "empty corpus");
    }

    #[test]
    fn model_round_trips_through_save_load() {
        let corpus = TrainCorpus::from_records(records(), 7);
        let app = AuditApp::new(Arc::new(BagOfTokens::new(64, true))).with_trees(15);
        let model = app.fit(&corpus).unwrap();
        let json = app
            .save_model(&model)
            .expect("forest labeler is persistable");
        let restored = app.load_model(&json).unwrap();
        let mut suspicious = EnrichedQuery::from_sql("insert into sensor_stream values (1, 2)");
        suspicious.set("user", "acct/alice");
        let clean = EnrichedQuery::from_sql("select revenue from finance_reports where q = 3");
        let batch = [suspicious, clean];
        assert_eq!(
            app.label_batch(&model, &batch).unwrap(),
            app.label_batch(&restored, &batch).unwrap()
        );
        assert_eq!(restored.known_users(), model.known_users());
        // A dim-mismatched embedder is rejected, not index-panicked on.
        let narrow = AuditApp::new(Arc::new(BagOfTokens::new(8, true)));
        assert!(matches!(
            narrow.load_model(&json),
            Err(crate::error::QuercError::Corrupt { .. })
        ));
    }

    #[test]
    fn indistinguishable_users_cap_accuracy() {
        // All users run the SAME verbatim query — the paper's Table 2
        // failure mode. Accuracy cannot exceed the majority share.
        let shared: Vec<QueryRecord> = (0..30)
            .map(|i| QueryRecord {
                sql: "select * from shared_dashboard".into(),
                user: format!("acct/u{}", i % 3),
                account: "acct".into(),
                cluster: "c0".into(),
                dialect: "generic".into(),
                runtime_ms: 1.0,
                mem_mb: 1.0,
                error_code: None,
                timestamp: i,
            })
            .collect();
        let a = SecurityAuditor::train(&shared, Arc::new(BagOfTokens::new(64, true)), 15, 3);
        let rows = per_account_accuracy(&a, &shared);
        assert!(
            rows[0].accuracy < 0.5,
            "verbatim-identical queries must be nearly unpredictable, got {}",
            rows[0].accuracy
        );
    }
}
