//! Applications — each a thin adapter from the generic labeling machinery
//! to one of the paper's §4 use cases.
//!
//! * [`summarize`] — workload summarization for index recommendation
//!   (§5.1's headline experiment);
//! * [`audit`] — user/account prediction for security auditing (§5.2);
//! * [`routing`] — query-routing policy misconfiguration detection;
//! * [`errors`] — error prediction from query syntax;
//! * [`resources`] — coarse resource-class prediction for speculative
//!   allocation;
//! * [`recommend`] — next-query recommendation over embedding clusters.

pub mod audit;
pub mod errors;
pub mod recommend;
pub mod resources;
pub mod routing;
pub mod summarize;
