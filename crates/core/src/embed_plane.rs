//! The ingress embed plane — embed a template once, serve it forever.
//!
//! Cloud workloads are overwhelmingly templated: the same statement
//! shape arrives again and again with only literals varying. The embed
//! plane exploits that at manager ingress: every query is fingerprinted
//! (`querc_sql::fingerprint`, literals stripped) and looked up in a
//! **sharded, bounded LRU cache** `fingerprint → Arc<Vec<f32>>`. A hit
//! attaches the cached vector to the [`EnrichedQuery`] for free; misses
//! are embedded in one [`Embedder::embed_batch`] call (deduplicated by
//! fingerprint within the batch) and inserted. Downstream, every app
//! shard reads the `Arc` instead of re-embedding — the hot path goes
//! from `O(apps × embed)` to `O(~0)` per repeated template.
//!
//! Cache keys are namespaced by [`Embedder::cache_namespace`] (embedder
//! family + dims + model state), so `bow`, `doc2vec`, and `lstm`
//! vectors — or two separately-trained models of one family — never
//! collide. Hit/miss/eviction counters are lock-free and readable while
//! serving.
//!
//! ```
//! use querc::embed_plane::{EmbedPlane, EmbedPlaneConfig};
//! use querc::EnrichedQuery;
//! use querc_embed::{BagOfTokens, Embedder};
//!
//! let plane = EmbedPlane::new(&EmbedPlaneConfig::default());
//! let bow = BagOfTokens::new(32, true);
//! let mut batch = vec![
//!     EnrichedQuery::from_sql("select v from kv where k = 1"),
//!     EnrichedQuery::from_sql("select v from kv where k = 2"), // same template
//! ];
//! plane.enrich_batch(&bow, &mut batch);
//! let stats = plane.stats();
//! assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
//! assert_eq!(
//!     **batch[0].vector_for(bow.cache_namespace()).unwrap(),
//!     bow.embed(batch[0].tokens())
//! );
//! ```

use crate::enriched::EnrichedQuery;
use parking_lot::Mutex;
use querc_embed::Embedder;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sizing knobs for the shared vector cache.
///
/// Capacity is counted in **entries** (distinct `(embedder, template)`
/// pairs); one entry costs roughly `dim × 4` bytes plus key overhead, so
/// the default (64 Ki entries of a 128-dim embedder) is ~32 MiB. Size it
/// to the *template* cardinality of the workload — templates, not raw
/// queries, are what the fingerprint collapses — with headroom per
/// embedder namespace in play; `WorkloadManagerConfig` documents the
/// serving-side guidance.
#[derive(Debug, Clone)]
pub struct EmbedPlaneConfig {
    /// Maximum cached vectors across all shards (≥ 1 enforced; shard
    /// capacities sum to exactly this, so the global bound is hard). A
    /// hash-skewed hot shard can evict before the plane is globally
    /// full — size with headroom if the workload's templates are few
    /// and the shard count high.
    pub capacity: usize,
    /// Lock shards (≥ 1 enforced). More shards means less contention
    /// between ingress threads; 16 is plenty below ~32 producers.
    pub shards: usize,
}

impl Default for EmbedPlaneConfig {
    fn default() -> Self {
        EmbedPlaneConfig {
            capacity: 65_536,
            shards: 16,
        }
    }
}

/// Point-in-time cache counters (live — readable while serving).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmbedCacheStats {
    /// Lookups served from the cache (including batch-local reuse of a
    /// fingerprint embedded earlier in the same batch).
    pub hits: u64,
    /// Lookups that had to embed.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Vectors currently cached.
    pub entries: u64,
}

impl EmbedCacheStats {
    /// Hits over total lookups, `0.0` when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

struct Slot {
    key: (u64, u64),
    value: Arc<Vec<f32>>,
    prev: usize,
    next: usize,
}

/// One lock shard: a hash map into an intrusive doubly-linked list of
/// slots ordered by recency. All operations are O(1).
struct LruShard {
    map: HashMap<(u64, u64), usize>,
    slots: Vec<Slot>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl LruShard {
    fn new(capacity: usize) -> LruShard {
        LruShard {
            map: HashMap::with_capacity(capacity.min(1024)),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: (u64, u64)) -> Option<Arc<Vec<f32>>> {
        let i = *self.map.get(&key)?;
        self.unlink(i);
        self.push_front(i);
        Some(Arc::clone(&self.slots[i].value))
    }

    /// Insert (or refresh) an entry; returns `true` when an older entry
    /// was evicted to make room.
    fn insert(&mut self, key: (u64, u64), value: Arc<Vec<f32>>) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return false;
        }
        if self.map.len() >= self.capacity {
            // Evict the least-recently-used slot and reuse it in place.
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.slots[victim].key = key;
            self.slots[victim].value = value;
            self.push_front(victim);
            self.map.insert(key, victim);
            return true;
        }
        let i = self.slots.len();
        self.slots.push(Slot {
            key,
            value,
            prev: NIL,
            next: NIL,
        });
        self.push_front(i);
        self.map.insert(key, i);
        false
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// The shared, sharded template→vector cache. One instance serves every
/// app registered with a [`crate::service::WorkloadManager`]; it is also
/// usable standalone (see the module example).
pub struct EmbedPlane {
    shards: Vec<Mutex<LruShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl EmbedPlane {
    /// An empty plane sized per `cfg`. Capacity is distributed across
    /// the lock shards so the **global bound holds exactly**: shard
    /// capacities sum to `cfg.capacity`, and the shard count is clamped
    /// to the capacity so every shard can hold at least one entry.
    pub fn new(cfg: &EmbedPlaneConfig) -> EmbedPlane {
        let capacity = cfg.capacity.max(1);
        let shards = cfg.shards.max(1).min(capacity);
        let base = capacity / shards;
        let extra = capacity % shards;
        EmbedPlane {
            shards: (0..shards)
                .map(|i| Mutex::new(LruShard::new(base + usize::from(i < extra))))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, namespace: u64, fingerprint: u64) -> &Mutex<LruShard> {
        // Both halves are FNV outputs (well mixed); fold them so one
        // namespace doesn't pin itself to one shard.
        let h = fingerprint ^ namespace.rotate_left(17);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Look up the vector of `fingerprint` under `namespace`, counting a
    /// hit or miss and refreshing recency on hit.
    pub fn get(&self, namespace: u64, fingerprint: u64) -> Option<Arc<Vec<f32>>> {
        let found = self
            .shard_of(namespace, fingerprint)
            .lock()
            .get((namespace, fingerprint));
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert (or refresh) a vector, counting any eviction it causes.
    pub fn insert(&self, namespace: u64, fingerprint: u64, vector: Arc<Vec<f32>>) {
        let evicted = self
            .shard_of(namespace, fingerprint)
            .lock()
            .insert((namespace, fingerprint), vector);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The ingress entry point: attach a vector under `embedder`'s
    /// namespace to every query in `batch` that doesn't have one yet.
    /// Cache hits are free; misses are **deduplicated by fingerprint**
    /// and embedded in a single [`Embedder::embed_batch`] call, then
    /// inserted for the next arrival of the template. Returns
    /// `(hits, misses)` for this batch (global counters are updated
    /// too), so callers can attribute traffic per app.
    pub fn enrich_batch(&self, embedder: &dyn Embedder, batch: &mut [EnrichedQuery]) -> (u64, u64) {
        let ns = embedder.cache_namespace();
        let mut hits = 0u64;
        // fingerprint → (position in `docs`, indices awaiting the vector)
        let mut pending: HashMap<u64, usize> = HashMap::new();
        let mut to_embed: Vec<(u64, Vec<usize>)> = Vec::new();
        for (i, q) in batch.iter_mut().enumerate() {
            if q.vector_for(ns).is_some() {
                continue; // already enriched upstream; not a lookup
            }
            let fp = q.fingerprint();
            if let Some(&p) = pending.get(&fp) {
                // Same template earlier in this batch: it will share the
                // one embedding — a hit as far as work avoided goes.
                hits += 1;
                to_embed[p].1.push(i);
                continue;
            }
            match self.shard_of(ns, fp).lock().get((ns, fp)) {
                Some(v) => {
                    hits += 1;
                    q.set_vector(ns, v);
                }
                None => {
                    pending.insert(fp, to_embed.len());
                    to_embed.push((fp, vec![i]));
                }
            }
        }
        let misses = to_embed.len() as u64;
        if !to_embed.is_empty() {
            let docs: Vec<Vec<String>> = to_embed
                .iter()
                .map(|(_, idxs)| batch[idxs[0]].tokens().to_vec())
                .collect();
            for ((fp, idxs), v) in to_embed.iter().zip(embedder.embed_batch(&docs)) {
                let vector = Arc::new(v);
                self.insert(ns, *fp, Arc::clone(&vector));
                for &i in idxs {
                    batch[i].set_vector(ns, Arc::clone(&vector));
                }
            }
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        (hits, misses)
    }

    /// Vectors currently cached, across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Export every cached entry as `(namespace, fingerprint, vector)`
    /// triples — the persistence plane's checkpoint source. Within each
    /// shard entries come out **coldest first**, so feeding the list back
    /// through [`EmbedPlane::preload`] (which inserts in order) rebuilds
    /// the same per-shard recency: the hottest entries end up most
    /// recently inserted and survive any subsequent eviction pressure.
    pub fn export(&self) -> Vec<(u64, u64, Vec<f32>)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let s = shard.lock();
            let mut i = s.tail;
            while i != NIL {
                let slot = &s.slots[i];
                out.push((slot.key.0, slot.key.1, slot.value.as_ref().clone()));
                i = slot.prev;
            }
        }
        out
    }

    /// Insert exported entries in order (restore path). Takes the
    /// entries by value so each restored vector moves into its cache
    /// `Arc` instead of being re-cloned (the warm set is tens of MB).
    /// Counts neither hits nor misses, so post-restore hit-rate
    /// measurements start clean; evictions (a smaller cache than the
    /// one exported) still count.
    pub fn preload(&self, entries: Vec<(u64, u64, Vec<f32>)>) {
        for (ns, fp, v) in entries {
            self.insert(ns, fp, Arc::new(v));
        }
    }

    /// Live counters plus the current entry count.
    pub fn stats(&self) -> EmbedCacheStats {
        EmbedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_embed::BagOfTokens;

    fn plane(capacity: usize, shards: usize) -> EmbedPlane {
        EmbedPlane::new(&EmbedPlaneConfig { capacity, shards })
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let p = plane(8, 2);
        assert!(p.get(1, 42).is_none());
        p.insert(1, 42, Arc::new(vec![1.0]));
        let v = p.get(1, 42).expect("cached");
        assert_eq!(*v, vec![1.0]);
        // Same fingerprint, different namespace: miss.
        assert!(p.get(2, 42).is_none());
        let stats = p.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_is_bounded_and_lru_evicts_the_coldest() {
        // One shard so the recency order is globally observable.
        let p = plane(3, 1);
        for fp in 0..3u64 {
            p.insert(7, fp, Arc::new(vec![fp as f32]));
        }
        // Touch 0 so 1 becomes the coldest, then overflow.
        assert!(p.get(7, 0).is_some());
        p.insert(7, 3, Arc::new(vec![3.0]));
        assert_eq!(p.len(), 3, "capacity bound holds");
        assert_eq!(p.stats().evictions, 1);
        assert!(p.get(7, 1).is_none(), "coldest entry evicted");
        assert!(p.get(7, 0).is_some());
        assert!(p.get(7, 2).is_some());
        assert!(p.get(7, 3).is_some());
    }

    #[test]
    fn global_capacity_bound_holds_exactly() {
        // 20 entries over 16 shards used to round up to 32; the bound
        // must be global, not per-shard.
        let p = plane(20, 16);
        for fp in 0..500u64 {
            p.insert(1, fp, Arc::new(vec![fp as f32]));
        }
        assert!(p.len() <= 20, "configured bound exceeded: {}", p.len());
        // More shards than capacity: shard count clamps, nothing panics.
        let tiny = plane(3, 16);
        for fp in 0..50u64 {
            tiny.insert(1, fp, Arc::new(vec![0.0]));
        }
        assert!(tiny.len() <= 3);
        assert!(tiny.stats().evictions > 0);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let p = plane(2, 1);
        p.insert(1, 1, Arc::new(vec![1.0]));
        p.insert(1, 2, Arc::new(vec![2.0]));
        p.insert(1, 1, Arc::new(vec![1.5])); // refresh, no eviction
        assert_eq!(p.stats().evictions, 0);
        assert_eq!(*p.get(1, 1).unwrap(), vec![1.5]);
        // Now 2 is coldest; overflow evicts it.
        p.insert(1, 3, Arc::new(vec![3.0]));
        assert!(p.get(1, 2).is_none());
    }

    #[test]
    fn enrich_batch_dedups_templates_within_a_batch() {
        /// Counts embed_batch *documents* to prove dedup.
        struct Counting {
            inner: BagOfTokens,
            embedded: std::sync::atomic::AtomicU64,
        }
        impl Embedder for Counting {
            fn dim(&self) -> usize {
                self.inner.dim()
            }
            fn embed(&self, tokens: &[String]) -> Vec<f32> {
                self.embedded.fetch_add(1, Ordering::Relaxed);
                self.inner.embed(tokens)
            }
            fn name(&self) -> &'static str {
                "counting-bow"
            }
            fn embed_batch(&self, docs: &[Vec<String>]) -> Vec<Vec<f32>> {
                self.embedded
                    .fetch_add(docs.len() as u64, Ordering::Relaxed);
                self.inner.embed_batch(docs)
            }
        }
        let e = Counting {
            inner: BagOfTokens::new(16, true),
            embedded: std::sync::atomic::AtomicU64::new(0),
        };
        let p = plane(64, 4);
        // Four queries, two templates.
        let mut batch: Vec<EnrichedQuery> = [
            "select v from kv where k = 1",
            "select v from kv where k = 2",
            "insert into logs values (3)",
            "SELECT V FROM KV WHERE K = 4",
        ]
        .iter()
        .map(|s| EnrichedQuery::from_sql(*s))
        .collect();
        let (hits, misses) = p.enrich_batch(&e, &mut batch);
        assert_eq!((hits, misses), (2, 2));
        assert_eq!(
            e.embedded.load(Ordering::Relaxed),
            2,
            "one embed per template"
        );
        let ns = e.cache_namespace();
        for q in &batch {
            assert_eq!(**q.vector_for(ns).unwrap(), e.inner.embed(q.tokens()));
        }
        // The same templates again: all hits, no new embeds.
        let mut again: Vec<EnrichedQuery> = [
            "select v from kv where k = 99",
            "insert into logs values (0)",
        ]
        .iter()
        .map(|s| EnrichedQuery::from_sql(*s))
        .collect();
        let (hits, misses) = p.enrich_batch(&e, &mut again);
        assert_eq!((hits, misses), (2, 0));
        assert_eq!(e.embedded.load(Ordering::Relaxed), 2);
        assert_eq!(p.stats().entries, 2);
    }

    #[test]
    fn enrich_batch_skips_already_enriched_queries() {
        let bow = BagOfTokens::new(8, false);
        let p = plane(8, 1);
        let mut batch = vec![EnrichedQuery::from_sql("select 1")];
        let sentinel = Arc::new(vec![5.0f32; 8]);
        batch[0].set_vector(bow.cache_namespace(), Arc::clone(&sentinel));
        let (hits, misses) = p.enrich_batch(&bow, &mut batch);
        assert_eq!((hits, misses), (0, 0));
        assert!(Arc::ptr_eq(
            batch[0].vector_for(bow.cache_namespace()).unwrap(),
            &sentinel
        ));
    }

    #[test]
    fn export_preload_round_trips_entries_and_recency() {
        // One shard so the recency order is globally observable.
        let p = plane(3, 1);
        for fp in 0..3u64 {
            p.insert(9, fp, Arc::new(vec![fp as f32, 0.5]));
        }
        p.get(9, 0); // 0 hottest; coldest is now 1.
        let dump = p.export();
        assert_eq!(dump.len(), 3);
        assert_eq!(dump[0].1, 1, "coldest first");
        assert_eq!(dump[2].1, 0, "hottest last");

        let fresh = plane(3, 1);
        fresh.preload(dump.clone());
        assert_eq!(fresh.len(), 3);
        for fp in 0..3u64 {
            assert_eq!(*fresh.get(9, fp).unwrap(), vec![fp as f32, 0.5]);
        }
        // Preload itself counted no lookups (the three gets above did).
        assert_eq!(fresh.stats().misses, 0);

        // Restoring into a smaller cache keeps the *hottest* entries.
        let small = plane(2, 1);
        small.preload(dump);
        assert_eq!(small.len(), 2);
        assert!(small.get(9, 1).is_none(), "coldest dropped");
        assert!(small.get(9, 0).is_some());
        assert!(small.get(9, 2).is_some());
    }

    #[test]
    fn concurrent_enrichment_is_consistent() {
        let bow = Arc::new(BagOfTokens::new(32, true));
        let p = Arc::new(plane(256, 8));
        let mut handles = Vec::new();
        for t in 0..4 {
            let p = Arc::clone(&p);
            let bow = Arc::clone(&bow);
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let mut batch = vec![EnrichedQuery::from_sql(format!(
                        "select c{} from t where x = {i}",
                        i % 10
                    ))];
                    p.enrich_batch(bow.as_ref(), &mut batch);
                    let v = batch[0].vector_for(bow.cache_namespace()).unwrap();
                    assert_eq!(**v, bow.embed(batch[0].tokens()), "thread {t}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = p.stats();
        assert_eq!(stats.hits + stats.misses, 800);
        assert_eq!(stats.entries, 10, "ten distinct templates");
    }
}
