//! # querc — database-agnostic workload management
//!
//! A from-scratch reproduction of the system described in *Database-
//! Agnostic Workload Management* (Jain, Yan, Cruanes, Howe — CIDR 2019).
//!
//! Querc models every workload-management task as **query labeling**:
//!
//! * a [`classifier::QueryClassifier`] is a pre-trained *(embedder,
//!   labeler)* pair — the embedder maps SQL text to a vector
//!   (`querc-embed`), the labeler maps vectors to string labels
//!   (`querc-learn`);
//! * [`qworker::Qworker`]s consume per-application query streams, attach
//!   labels, and forward the labeled queries to the database and/or the
//!   training module (paper Fig 1);
//! * the [`training::TrainingModule`] accumulates labeled queries,
//!   periodically (re)trains embedders and labelers as batch jobs, and
//!   deploys them through the versioned [`registry::ModelRegistry`];
//! * offline tasks and applications live under [`apps`]: workload
//!   summarization for index recommendation (§5.1), security auditing
//!   (§5.2), query-routing policy checks, error prediction, resource
//!   allocation hints, and next-query recommendation (§4).
//!
//! The only message type between components is a query plus labels —
//! [`labeled::LabeledQuery`], the `(Q, c1, c2, …)` tuple of the paper's
//! data model.

pub mod apps;
pub mod classifier;
pub mod labeled;
pub mod qworker;
pub mod registry;
pub mod training;

pub use classifier::{LabelMap, QueryClassifier, TrainedLabeler};
pub use labeled::LabeledQuery;
pub use qworker::{Qworker, QworkerMode};
pub use registry::ModelRegistry;
pub use training::{EmbedderKind, TrainingConfig, TrainingModule};
