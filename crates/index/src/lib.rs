//! # querc-index
//!
//! The vector search plane: every nearest-neighbor lookup in the
//! workspace — kNN labeling, centroid assignment in the recommend and
//! summarize apps, workload-summary witnesses — goes through one
//! [`VectorIndex`] abstraction instead of ad-hoc linear scans over
//! pointer-chasing `Vec<Vec<f32>>` data.
//!
//! Three layers:
//!
//! * [`VectorStore`] — contiguous row-major `f32` storage with aligned
//!   rows and bulk insert, the cache-friendly replacement for every
//!   training-set clone;
//! * [`Metric`] — squared-Euclidean or cosine distance with a **total
//!   order** ([`f32::total_cmp`] + id tie-break), so a NaN produced by a
//!   degenerate vector can never poison a top-k selection;
//! * [`VectorIndex`] — `search` / `search_batch` over a store, with two
//!   implementations: [`FlatIndex`] (exact blocked scan, the
//!   correctness baseline) and [`IvfIndex`] (inverted-file ANN using
//!   `querc_cluster::kmeans` as the coarse quantizer, with an `nprobe`
//!   recall knob and per-index hit/probe counters).
//!
//! Exact search stays bit-identical to the historical brute-force path:
//! distances are computed row-by-row with the same `querc_linalg::ops`
//! kernels, only the storage layout and the selection rule (total order
//! instead of `partial_cmp`) changed. The IVF index trades a bounded
//! recall loss (tunable via `nprobe`) for scanning `O(n·nprobe/nlist)`
//! candidates instead of `O(n)`.

#![deny(missing_docs)]

pub mod flat;
pub mod ivf;
pub mod metric;
pub mod simd;
pub mod sq8;
pub mod store;

pub use flat::FlatIndex;
pub use ivf::{IvfConfig, IvfIndex};
pub use metric::Metric;
pub use simd::Kernel;
pub use sq8::{Sq8Config, Sq8Index};
pub use store::VectorStore;

use std::collections::BinaryHeap;

/// One search hit: `(row id, distance under the index's metric)`.
pub type Hit = (u32, f32);

/// Cumulative per-index search counters, snapshotted by
/// [`VectorIndex::stats`]. Counters are monotone over the index's
/// lifetime and safe to read while other threads search.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Queries answered (`search` calls; `search_batch` counts each
    /// query in the batch).
    pub searches: u64,
    /// Partitions (inverted lists) scanned. For an exact index every
    /// search probes its single partition, so `probes == searches`.
    pub probes: u64,
    /// Candidate vectors whose distance was computed. The work an exact
    /// scan does is `searches × len`; the gap between that product and
    /// this counter is what the ANN index saved.
    pub candidates: u64,
    /// Partitions the index maintains (1 for flat, `nlist` for IVF).
    pub partitions: usize,
    /// Whether results are exact (`FlatIndex`) or approximate
    /// (`IvfIndex` with `nprobe < nlist`).
    pub exact: bool,
    /// Index implementation: `"flat"`, `"ivf"`, `"sq8"` or
    /// `"ivf+sq8"` (`""` on a default-constructed stats value).
    pub backend: &'static str,
    /// Distance-kernel arm the process is dispatching to — `"avx2"` or
    /// `"scalar"` (`""` on a default-constructed stats value). See
    /// [`simd::kernel_name`].
    pub kernel: &'static str,
    /// Bytes resident for search: vectors/codes plus index structure.
    /// The SQ8 backends report roughly a quarter of flat's footprint
    /// (an eighth of the vector payload, plus quantizer and list
    /// overhead); re-ranking adds the exact store back on top.
    pub resident_bytes: usize,
}

impl IndexStats {
    /// Mean candidates scanned per search; `0.0` before any search.
    pub fn candidates_per_search(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            self.candidates as f64 / self.searches as f64
        }
    }
}

/// A k-nearest-neighbor index over fixed-dimension `f32` vectors.
///
/// Implementations are `Send + Sync` and searchable through `&self`, so
/// one built index can serve many worker threads behind an `Arc`.
///
/// **Determinism contract:** hits are ordered by `(distance, id)` under
/// [`f32::total_cmp`] — equal-distance neighbors always resolve to the
/// lower id, identically across runs and across implementations, and a
/// NaN distance sorts after every real number so it can never displace
/// a genuine neighbor.
pub trait VectorIndex: Send + Sync {
    /// The `k` nearest rows to `query`, closest first. Returns fewer
    /// than `k` hits when fewer candidates were considered: an index
    /// with fewer than `k` rows (empty index ⇒ empty result), or an
    /// approximate index whose probed partitions held fewer than `k`
    /// vectors (e.g. `IvfIndex` at low `nprobe` over a skewed
    /// partition). `query` must have [`VectorIndex::dim`] components.
    fn search(&self, query: &[f32], k: usize) -> Vec<Hit>;

    /// [`VectorIndex::search`] for a chunk of queries; `out[i]` answers
    /// `queries[i]`. Implementations amortize per-call setup and scan
    /// storage block-wise across the whole batch.
    fn search_batch(&self, queries: &[&[f32]], k: usize) -> Vec<Vec<Hit>> {
        queries.iter().map(|q| self.search(q, k)).collect()
    }

    /// Id of the single nearest row — the centroid-assignment idiom —
    /// or `None` on an empty index.
    fn nearest(&self, query: &[f32]) -> Option<u32> {
        self.search(query, 1).first().map(|&(id, _)| id)
    }

    /// [`VectorIndex::nearest`] for a chunk of queries through the
    /// batched scan; `out[i]` answers `queries[i]`.
    fn nearest_batch(&self, queries: &[&[f32]]) -> Vec<Option<u32>> {
        self.search_batch(queries, 1)
            .iter()
            .map(|hits| hits.first().map(|&(id, _)| id))
            .collect()
    }

    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// True when no vectors are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of indexed vectors.
    fn dim(&self) -> usize;

    /// Snapshot of the cumulative search counters.
    fn stats(&self) -> IndexStats;
}

/// Max-heap entry ordered by `(distance, id)` under the total order —
/// the largest (worst) retained hit sits on top.
#[derive(Debug, Clone, Copy)]
struct HeapHit {
    dist: f32,
    id: u32,
}

impl PartialEq for HeapHit {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapHit {}
impl PartialOrd for HeapHit {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapHit {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.id.cmp(&other.id))
    }
}

/// Bounded top-k accumulator enforcing the crate's determinism
/// contract: keeps the `k` smallest `(distance, id)` pairs under
/// [`f32::total_cmp`] + id tie-break.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<HeapHit>,
}

impl TopK {
    /// An empty accumulator for the `k` best hits (`k == 0` keeps none).
    pub fn new(k: usize) -> TopK {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k.min(1024) + 1),
        }
    }

    /// Offer one candidate; it is retained iff it beats the current
    /// worst retained hit under the total order.
    #[inline]
    pub fn push(&mut self, id: u32, dist: f32) {
        if self.k == 0 {
            return;
        }
        let hit = HeapHit { dist, id };
        if self.heap.len() < self.k {
            self.heap.push(hit);
        } else if let Some(worst) = self.heap.peek() {
            if hit < *worst {
                self.heap.pop();
                self.heap.push(hit);
            }
        }
    }

    /// Offer a block of consecutive-id candidates: `dists[j]` is the
    /// distance of id `start_id + j`. Semantically identical to calling
    /// [`TopK::push`] per element, but once `k` hits are held the scan
    /// skips candidates strictly above the current bound with one
    /// predictable compare — the hot path of a full-corpus scan, where
    /// almost nothing beats the running top-k. Candidates at or below
    /// the bound (and everything, while the bound is `NaN` or the heap
    /// underfilled) still go through `push`, which enforces the exact
    /// `(distance, id)` total order.
    #[inline]
    // `!(d <= b)` is deliberate, not a misspelled `d > b`: the negation
    // must also be true for NaN `d` so NaN candidates are skipped here
    // instead of round-tripping through `push` (which would reject them
    // against a non-NaN bound anyway — NaN sorts after every real
    // distance in the total order).
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn push_block(&mut self, start_id: u32, dists: &[f32]) {
        let mut bound = self.bound();
        for (j, &d) in dists.iter().enumerate() {
            if let Some(b) = bound {
                if !b.is_nan() && !(d <= b) {
                    continue;
                }
            }
            self.push(start_id + j as u32, d);
            bound = self.bound();
        }
    }

    /// Current worst retained distance, once `k` hits are held — the
    /// pruning bound for scans that can skip whole partitions.
    pub fn bound(&self) -> Option<f32> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|h| h.dist)
        } else {
            None
        }
    }

    /// Retained hits, closest first.
    pub fn into_sorted(self) -> Vec<Hit> {
        let mut hits = self.heap.into_vec();
        hits.sort_unstable();
        hits.into_iter().map(|h| (h.id, h.dist)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_keeps_smallest_and_breaks_ties_by_id() {
        let mut t = TopK::new(3);
        for (id, d) in [(5u32, 2.0f32), (1, 1.0), (9, 1.0), (2, 3.0), (0, 1.0)] {
            t.push(id, d);
        }
        // Three hits at distance 1.0 fill k=3; ties resolve to lower ids.
        assert_eq!(t.into_sorted(), vec![(0, 1.0), (1, 1.0), (9, 1.0)]);
    }

    #[test]
    fn topk_nan_never_displaces_real_hits() {
        let mut t = TopK::new(2);
        t.push(0, f32::NAN);
        t.push(1, 10.0);
        t.push(2, 5.0);
        let hits = t.into_sorted();
        assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), vec![2, 1]);
    }

    #[test]
    fn topk_underfilled_returns_what_it_saw() {
        let mut t = TopK::new(8);
        t.push(3, 0.5);
        assert_eq!(t.bound(), None, "not full yet");
        assert_eq!(t.into_sorted(), vec![(3, 0.5)]);
        assert_eq!(TopK::new(0).into_sorted(), Vec::new());
    }

    #[test]
    fn stats_candidates_per_search() {
        let s = IndexStats {
            searches: 4,
            candidates: 100,
            ..Default::default()
        };
        assert_eq!(s.candidates_per_search(), 25.0);
        assert_eq!(IndexStats::default().candidates_per_search(), 0.0);
    }
}
