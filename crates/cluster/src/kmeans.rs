//! Lloyd's K-means with k-means++ seeding and empty-cluster repair.
//!
//! The assignment step — the O(n·k·dim) heart of every Lloyd iteration
//! — runs on the compute plane: centroids are packed once per iteration
//! into a padded row-major block and each point is scored with the
//! fused `kernel::sq_dist_block` scan (scalar/AVX2, bit-identical
//! arms), with points processed in fixed-size chunks distributed over a
//! [`ComputePool`]. Per-chunk partial sums, counts and SSE are reduced
//! **in chunk order**, so the fit is bit-identical for every
//! `training_threads` value; corpora up to one chunk (1024 points)
//! reduce in exactly the historical single-pass point order.

use querc_linalg::{kernel, ops, ComputePool, Pcg32};

/// Index of the centroid nearest `point` (squared Euclidean distance) —
/// the assignment step shared by every serving path that maps a fresh
/// query onto a trained clustering.
///
/// **Empty-set contract:** returns `0` when `centroids` is empty — a
/// sentinel that is *not* a valid index. Callers that can be handed an
/// empty set should use [`try_nearest_centroid`], which makes the case
/// explicit; this wrapper exists for the serving paths where a trained
/// model guarantees at least one centroid.
///
/// Ties resolve to the lowest centroid index, and a NaN distance never
/// beats a finite one (`total_cmp` order, matching `ops::argmin`).
pub fn nearest_centroid(point: &[f32], centroids: &[Vec<f32>]) -> usize {
    try_nearest_centroid(point, centroids).unwrap_or(0)
}

/// [`nearest_centroid`] with the empty case surfaced: `None` when
/// `centroids` is empty, otherwise `Some(index of the nearest
/// centroid)` under the same deterministic tie-break (lowest index
/// wins; NaN distances rank last). Allocation-free: this is the
/// per-point assignment primitive, called in a loop by every serving
/// path.
pub fn try_nearest_centroid(point: &[f32], centroids: &[Vec<f32>]) -> Option<usize> {
    let kern = kernel::active_kernel();
    let mut best: Option<(usize, f32)> = None;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = kernel::sq_dist_with(kern, point, centroid);
        match best {
            Some((_, bd)) if d.total_cmp(&bd) != std::cmp::Ordering::Less => {}
            _ => best = Some((c, d)),
        }
    }
    best.map(|(c, _)| c)
}

/// K-means parameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct KMeansConfig {
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when the relative SSE improvement drops below this.
    pub tol: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iters: 100,
            tol: 1e-4,
        }
    }
}

/// Result of a K-means run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct KMeansResult {
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// `k` centroids.
    pub centroids: Vec<Vec<f32>>,
    /// Final within-cluster sum of squared distances.
    pub sse: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Index of the input point nearest each centroid — the "witness"
    /// queries used as the workload summary.
    pub fn witnesses(&self, points: &[Vec<f32>]) -> Vec<usize> {
        let kern = kernel::active_kernel();
        self.centroids
            .iter()
            .map(|c| {
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for (i, p) in points.iter().enumerate() {
                    let d = kernel::sq_dist_with(kern, p, c);
                    if d < best_d {
                        best_d = d;
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Number of points in each cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// Fixed chunk width for the parallel assignment step. The
/// decomposition depends only on the corpus size — never on the thread
/// count — which is half of the determinism argument; the other half is
/// that the per-chunk partials are folded in chunk order.
const ASSIGN_CHUNK: usize = 1024;

/// Per-chunk partial results of one assignment pass.
struct ChunkStats {
    assignments: Vec<usize>,
    sse: f64,
    /// `k × dim` row-major per-cluster sums, accumulated in point order.
    sums: Vec<f32>,
    counts: Vec<usize>,
}

/// Padded row-major copy of the centroids (stride rounded to the SIMD
/// lane width, padding zeroed) so assignment can use the fused block
/// scan. Rebuilt once per Lloyd iteration — O(k·dim), noise next to
/// the O(n·k·dim) scan it accelerates.
fn pack_centroids(centroids: &[Vec<f32>], dim: usize) -> (Vec<f32>, usize) {
    let stride = dim.div_ceil(ops::LANES) * ops::LANES;
    let mut buf = vec![0.0f32; centroids.len() * stride];
    for (c, cent) in centroids.iter().enumerate() {
        buf[c * stride..c * stride + dim].copy_from_slice(cent);
    }
    (buf, stride)
}

/// One full assignment pass: nearest centroid, SSE, per-cluster sums
/// and counts, chunk-parallel over `pool`. Ties resolve to the lowest
/// centroid index and NaN distances rank last (`ops::argmin` total
/// order) — the same winner the historical `d < best_d` scan picked.
fn assign_pass(
    points: &[Vec<f32>],
    centroids: &[Vec<f32>],
    dim: usize,
    pool: &ComputePool,
) -> (Vec<usize>, f64, Vec<f32>, Vec<usize>) {
    let k = centroids.len();
    let (cent_buf, stride) = pack_centroids(centroids, dim);
    let kern = kernel::active_kernel();
    let n_chunks = points.len().div_ceil(ASSIGN_CHUNK);
    let parts = pool.map(n_chunks, |ci| {
        let lo = ci * ASSIGN_CHUNK;
        let hi = (lo + ASSIGN_CHUNK).min(points.len());
        let mut stats = ChunkStats {
            assignments: Vec::with_capacity(hi - lo),
            sse: 0.0,
            sums: vec![0.0f32; k * dim],
            counts: vec![0usize; k],
        };
        let mut dists = vec![0.0f32; k];
        for p in &points[lo..hi] {
            kernel::sq_dist_block_with(kern, p, &cent_buf, stride, &mut dists);
            let best = ops::argmin(&dists).expect("k >= 1");
            stats.assignments.push(best);
            stats.sse += dists[best] as f64;
            ops::axpy(1.0, p, &mut stats.sums[best * dim..(best + 1) * dim]);
            stats.counts[best] += 1;
        }
        stats
    });
    // Fixed-order reduce: chunk 0, then 1, … — identical for every
    // thread count, and identical to the historical single-pass point
    // order whenever there is one chunk.
    let mut assignments = Vec::with_capacity(points.len());
    let mut sse = 0.0f64;
    let mut sums = vec![0.0f32; k * dim];
    let mut counts = vec![0usize; k];
    for part in parts {
        assignments.extend_from_slice(&part.assignments);
        sse += part.sse;
        ops::axpy(1.0, &part.sums, &mut sums);
        for (c, n) in counts.iter_mut().zip(&part.counts) {
            *c += n;
        }
    }
    (assignments, sse, sums, counts)
}

/// Run K-means over `points`. Panics if `points` is empty or `k == 0`;
/// `k` larger than the number of points is clamped.
///
/// Runs on the compute plane: the result is bit-identical for every
/// kernel arm and every `training_threads` value.
pub fn kmeans(points: &[Vec<f32>], cfg: &KMeansConfig, rng: &mut Pcg32) -> KMeansResult {
    assert!(!points.is_empty(), "kmeans on empty input");
    assert!(cfg.k > 0, "k must be positive");
    let k = cfg.k.min(points.len());
    let dim = points[0].len();
    let pool = ComputePool::current();
    let mut centroids = plus_plus_init(points, k, rng);
    let mut prev_sse = f64::INFINITY;
    let mut iterations = 0;
    for iter in 0..cfg.max_iters {
        iterations = iter + 1;
        // Assign + accumulate (one fused chunk-parallel pass).
        let (_, sse, sums, counts) = assign_pass(points, &centroids, dim, &pool);
        // Update.
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: reseed at the point farthest from its
                // centroid (standard repair).
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        let da = ops::sq_dist(a, &centroids[assignments_of(a, &centroids)]);
                        let db = ops::sq_dist(b, &centroids[assignments_of(b, &centroids)]);
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                centroids[c] = points[far].clone();
            } else {
                let inv = 1.0 / counts[c] as f32;
                for (dst, s) in centroids[c].iter_mut().zip(&sums[c * dim..(c + 1) * dim]) {
                    *dst = s * inv;
                }
            }
        }
        // Converged?
        let converged =
            prev_sse.is_finite() && (prev_sse - sse).abs() / prev_sse.max(1e-12) < cfg.tol;
        prev_sse = sse;
        if converged {
            break;
        }
    }
    // Final assignment + SSE against the last centroids.
    let (assignments, sse, _, _) = assign_pass(points, &centroids, dim, &pool);
    KMeansResult {
        assignments,
        centroids,
        sse,
        iterations,
    }
}

fn assignments_of(p: &[f32], centroids: &[Vec<f32>]) -> usize {
    nearest(p, centroids).0
}

fn nearest(p: &[f32], centroids: &[Vec<f32>]) -> (usize, f32) {
    let kern = kernel::active_kernel();
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (c, cent) in centroids.iter().enumerate() {
        let d = kernel::sq_dist_with(kern, p, cent);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// k-means++ seeding: first centroid uniform, then proportional to the
/// squared distance to the nearest chosen centroid.
fn plus_plus_init(points: &[Vec<f32>], k: usize, rng: &mut Pcg32) -> Vec<Vec<f32>> {
    let kern = kernel::active_kernel();
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.below_usize(points.len())].clone());
    let mut d2: Vec<f64> = points
        .iter()
        .map(|p| kernel::sq_dist_with(kern, p, &centroids[0]) as f64)
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with chosen centroids; pick uniformly.
            rng.below_usize(points.len())
        } else {
            rng.weighted(&d2)
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = kernel::sq_dist_with(kern, p, centroids.last().expect("just pushed")) as f64;
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(rng: &mut Pcg32, centers: &[(f32, f32)], n_per: usize, noise: f32) -> Vec<Vec<f32>> {
        let mut pts = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..n_per {
                pts.push(vec![cx + rng.normal() * noise, cy + rng.normal() * noise]);
            }
        }
        pts
    }

    #[test]
    fn kmeans_result_round_trips_through_json() {
        let mut rng = Pcg32::new(42);
        let pts = blobs(&mut rng, &[(0.0, 0.0), (6.0, 6.0)], 25, 0.4);
        let res = kmeans(
            &pts,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
            &mut rng,
        );
        let json = serde_json::to_string(&res).unwrap();
        let back: KMeansResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.assignments, res.assignments);
        assert_eq!(back.centroids, res.centroids, "centroids are bit-exact");
        assert_eq!(back.iterations, res.iterations);
        assert_eq!(back.witnesses(&pts), res.witnesses(&pts));
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let mut rng = Pcg32::new(1);
        let pts = blobs(&mut rng, &[(0.0, 0.0), (10.0, 10.0), (0.0, 10.0)], 40, 0.5);
        let res = kmeans(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
            &mut rng,
        );
        // Each blob should be internally consistent.
        for blob in 0..3 {
            let first = res.assignments[blob * 40];
            let same = (0..40)
                .filter(|i| res.assignments[blob * 40 + i] == first)
                .count();
            assert!(same >= 39, "blob {blob} split: {same}/40");
        }
        assert_eq!(res.sizes().iter().sum::<usize>(), pts.len());
    }

    #[test]
    fn sse_decreases_with_k() {
        let mut rng = Pcg32::new(2);
        let pts = blobs(
            &mut rng,
            &[(0.0, 0.0), (5.0, 5.0), (9.0, 0.0), (0.0, 9.0)],
            30,
            0.8,
        );
        let mut last = f64::INFINITY;
        for k in [1usize, 2, 4, 8] {
            let res = kmeans(
                &pts,
                &KMeansConfig {
                    k,
                    ..Default::default()
                },
                &mut Pcg32::new(3),
            );
            assert!(
                res.sse <= last * 1.02,
                "sse should be (weakly) decreasing in k: k={k} sse={} last={last}",
                res.sse
            );
            last = res.sse;
        }
    }

    #[test]
    fn k1_centroid_is_the_mean() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![2.0, 0.0],
            vec![0.0, 2.0],
            vec![2.0, 2.0],
        ];
        let res = kmeans(
            &pts,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
            &mut Pcg32::new(4),
        );
        assert!((res.centroids[0][0] - 1.0).abs() < 1e-5);
        assert!((res.centroids[0][1] - 1.0).abs() < 1e-5);
        assert!((res.sse - 8.0).abs() < 1e-4);
    }

    #[test]
    fn k_clamped_to_n_points() {
        let pts = vec![vec![0.0], vec![1.0]];
        let res = kmeans(
            &pts,
            &KMeansConfig {
                k: 10,
                ..Default::default()
            },
            &mut Pcg32::new(5),
        );
        assert_eq!(res.centroids.len(), 2);
        assert!(res.sse < 1e-9);
    }

    #[test]
    fn witnesses_are_valid_and_near_centroids() {
        let mut rng = Pcg32::new(6);
        let pts = blobs(&mut rng, &[(0.0, 0.0), (8.0, 8.0)], 25, 0.5);
        let res = kmeans(
            &pts,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
            &mut rng,
        );
        let w = res.witnesses(&pts);
        assert_eq!(w.len(), 2);
        for (c, &wi) in w.iter().enumerate() {
            assert!(wi < pts.len());
            // The witness's own assignment is its centroid's cluster.
            assert_eq!(res.assignments[wi], c);
        }
    }

    #[test]
    fn identical_points_do_not_diverge() {
        let pts = vec![vec![3.0, 3.0]; 20];
        let res = kmeans(
            &pts,
            &KMeansConfig {
                k: 4,
                ..Default::default()
            },
            &mut Pcg32::new(7),
        );
        assert!(res.sse < 1e-9);
        assert!(res.centroids.iter().all(|c| c[0] == 3.0 && c[1] == 3.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let mut rng = Pcg32::new(8);
        let pts = blobs(&mut rng, &[(0.0, 0.0), (6.0, 6.0)], 30, 1.0);
        let r1 = kmeans(
            &pts,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
            &mut Pcg32::new(9),
        );
        let r2 = kmeans(
            &pts,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
            &mut Pcg32::new(9),
        );
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.sse, r2.sse);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn empty_input_panics() {
        kmeans(&[], &KMeansConfig::default(), &mut Pcg32::new(10));
    }

    #[test]
    fn nearest_centroid_contract() {
        let cents = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![5.0, 5.0]];
        // Nearest by distance.
        assert_eq!(nearest_centroid(&[4.9, 5.2], &cents), 1);
        assert_eq!(try_nearest_centroid(&[0.1, -0.1], &cents), Some(0));
        // Duplicate centroids tie → lowest index, deterministically.
        assert_eq!(try_nearest_centroid(&[6.0, 6.0], &cents), Some(1));
        // Empty set: explicit None vs the documented 0 sentinel.
        assert_eq!(try_nearest_centroid(&[1.0], &[]), None);
        assert_eq!(nearest_centroid(&[1.0], &[]), 0);
        // NaN point: no panic, a deterministic (first) index comes back.
        assert_eq!(try_nearest_centroid(&[f32::NAN, 0.0], &cents), Some(0));
    }
}
