//! # querc-learn
//!
//! Off-the-shelf classifiers over dense feature vectors — the "labeler"
//! half of Querc's (embedder, labeler) classifier pairs.
//!
//! The paper's point is that once queries are numeric vectors, *simple*
//! machine learning suffices: its §5.2 uses randomized decision trees.
//! This crate provides that ([`forest::RandomForest`] with extra-trees
//! splits) plus a linear softmax baseline, k-nearest-neighbours, the usual
//! classification metrics, and stratified k-fold cross-validation used by
//! the Table 1/2 experiments.
//!
//! Everything is deterministic under a caller-supplied [`querc_linalg::Pcg32`].

pub mod cv;
pub mod forest;
pub mod knn;
pub mod linear;
pub mod metrics;
pub mod state;
pub mod tree;

pub use cv::{cross_val_accuracy, stratified_folds};
pub use forest::{ForestConfig, RandomForest};
pub use knn::{Knn, KnnBackend, KnnMetric};
pub use linear::SoftmaxRegression;
pub use metrics::{accuracy, confusion_matrix, macro_f1, ClassMetrics};
pub use state::{ClassifierState, ForestState, KnnState, NodeState, SoftmaxState, TreeState};
pub use tree::{DecisionTree, SplitStrategy, TreeConfig};

use querc_linalg::Pcg32;

/// Failures the fallible classifier constructors report (the legacy
/// constructors keep their panicking signatures but panic with these
/// messages). `querc` converts this into its workspace-wide
/// `QuercError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LearnError {
    /// A neighborhood size of zero was requested (`k` must be ≥ 1).
    InvalidK {
        /// The rejected `k`.
        k: usize,
    },
    /// A persisted classifier state failed validation on restore
    /// (out-of-range tree indices, mismatched shapes, bad labels) —
    /// see [`state`].
    BadState {
        /// What failed to validate.
        detail: String,
    },
}

impl std::fmt::Display for LearnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LearnError::InvalidK { k } => {
                write!(f, "knn requires k >= 1, got k = {k}")
            }
            LearnError::BadState { detail } => {
                write!(f, "invalid classifier state: {detail}")
            }
        }
    }
}

impl std::error::Error for LearnError {}

/// A trainable multi-class classifier over dense `f32` features.
///
/// `fit` receives the full training matrix; `predict` classifies one row.
/// Implementations must be deterministic given the RNG passed to `fit`.
pub trait Classifier: Send + Sync {
    /// Train on `x[i]` → `y[i]`, with labels in `0..n_classes`.
    fn fit(&mut self, x: &[Vec<f32>], y: &[u32], n_classes: usize, rng: &mut Pcg32);

    /// Predict the label of one feature vector.
    fn predict(&self, x: &[f32]) -> u32;

    /// Predict class probabilities (default: one-hot of `predict`).
    fn predict_proba(&self, x: &[f32], n_classes: usize) -> Vec<f32> {
        let mut p = vec![0.0; n_classes];
        let c = self.predict(x) as usize;
        if c < n_classes {
            p[c] = 1.0;
        }
        p
    }

    /// Predict labels for many rows.
    fn predict_batch(&self, xs: &[Vec<f32>]) -> Vec<u32> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// [`Classifier::predict_batch`] over borrowed rows — the serving
    /// hot path, where vectors arrive as shared `Arc` slices. Models
    /// with a batched substrate (kNN's `VectorIndex::search_batch`)
    /// override this to amortize one index pass per chunk.
    fn predict_batch_refs(&self, xs: &[&[f32]]) -> Vec<u32> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Snapshot the trained model as a serializable
    /// [`state::ClassifierState`], if this classifier supports
    /// persistence (all the built-in ones do; the default is `None` so
    /// exotic external impls simply opt out of checkpointing).
    fn export_state(&self) -> Option<state::ClassifierState> {
        None
    }
}
