//! A best-effort, total, lightweight SQL parser.
//!
//! The parser extracts a [`QueryShape`] — tables, join edges, predicates,
//! grouping — from arbitrary SQL text. It is *not* a validating parser: the
//! goal is to recover as much structure as possible from any input and skip
//! what it cannot interpret, because (a) Querc must ingest every dialect,
//! and (b) the simulator's optimizer only consumes the recovered facts.
//!
//! The grammar subset understood precisely covers the TPC-H templates and
//! the synthetic SnowCloud workloads: SELECT with joined/comma FROM lists,
//! WHERE conjunctions (ORs detected and flagged), BETWEEN/IN/LIKE/IS NULL,
//! date and interval arithmetic on literals, GROUP BY / HAVING with
//! aggregate comparisons, ORDER BY, LIMIT/TOP/FETCH, set operations, CTEs,
//! and the DML/DDL statement kinds.

use crate::ast::{
    AggCall, CmpOp, ColumnRef, JoinEdge, Lhs, Predicate, QueryShape, Rhs, StatementKind, TableRef,
};
use crate::dialect::Dialect;
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parse one SQL statement into its structural shape. Never fails.
pub fn parse_query(sql: &str, dialect: Dialect) -> QueryShape {
    let tokens = tokenize(sql, dialect);
    let mut shape = QueryShape {
        token_count: tokens.len(),
        ..Default::default()
    };
    let mut p = Parser {
        toks: &tokens,
        pos: 0,
    };
    p.parse_statement(&mut shape, 0);
    shape
}

const AGG_FUNCS: &[&str] = &["avg", "count", "max", "min", "stddev", "sum", "variance"];

fn is_agg(name: &str) -> bool {
    AGG_FUNCS.contains(&name.to_ascii_lowercase().as_str())
}

/// Keywords that terminate a clause at paren depth 0.
const CLAUSE_STARTERS: &[&str] = &[
    "group",
    "having",
    "order",
    "limit",
    "offset",
    "fetch",
    "union",
    "intersect",
    "except",
    "window",
    "qualify",
    "where",
    "from",
];

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.toks.get(self.pos + n)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek().is_some_and(|t| t.is_punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_clause_boundary(&self) -> bool {
        match self.peek() {
            None => true,
            Some(t) => {
                t.is_punct(';')
                    || t.is_punct(')')
                    || (t.kind == TokenKind::Keyword
                        && CLAUSE_STARTERS
                            .iter()
                            .any(|k| t.text.eq_ignore_ascii_case(k)))
            }
        }
    }

    /// Skip a balanced parenthesized group; assumes current token is `(`.
    fn skip_balanced(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    fn parse_statement(&mut self, shape: &mut QueryShape, depth: usize) {
        // Leading parens around the whole statement.
        while self.eat_punct('(') {}
        let Some(first) = self.peek() else {
            return;
        };
        if first.kind != TokenKind::Keyword {
            shape.kind = Some(StatementKind::Other);
            return;
        }
        let word = first.text.to_ascii_lowercase();
        match word.as_str() {
            "with" => {
                self.pos += 1;
                self.parse_ctes(shape, depth);
                self.parse_statement(shape, depth);
            }
            "select" => {
                shape.kind = Some(StatementKind::Select);
                self.parse_select_body(shape, depth);
            }
            "insert" => {
                shape.kind = Some(StatementKind::Insert);
                self.pos += 1;
                self.eat_kw("into");
                if let Some(tref) = self.parse_table_ref() {
                    shape.tables.push(tref);
                }
                // INSERT ... SELECT captures the select's structure too.
                self.skip_until_kw_depth0(&["select", "values"]);
                if self.peek().is_some_and(|t| t.is_kw("select")) {
                    self.parse_select_body(shape, depth);
                    shape.kind = Some(StatementKind::Insert);
                }
            }
            "update" => {
                shape.kind = Some(StatementKind::Update);
                self.pos += 1;
                if let Some(tref) = self.parse_table_ref() {
                    shape.tables.push(tref);
                }
                self.skip_until_kw_depth0(&["where"]);
                if self.eat_kw("where") {
                    let mut ctx = CondCtx::default();
                    self.parse_or(shape, &mut ctx, depth);
                    shape.predicates.extend(ctx.predicates);
                }
            }
            "delete" => {
                shape.kind = Some(StatementKind::Delete);
                self.pos += 1;
                self.eat_kw("from");
                if let Some(tref) = self.parse_table_ref() {
                    shape.tables.push(tref);
                }
                self.skip_until_kw_depth0(&["where"]);
                if self.eat_kw("where") {
                    let mut ctx = CondCtx::default();
                    self.parse_or(shape, &mut ctx, depth);
                    shape.predicates.extend(ctx.predicates);
                }
            }
            "create" => {
                self.pos += 1;
                // Skip OR REPLACE / TEMPORARY etc.
                while self
                    .peek()
                    .is_some_and(|t| t.kind == TokenKind::Keyword || t.kind == TokenKind::Ident)
                {
                    if self.peek().is_some_and(|t| t.is_kw("table")) {
                        shape.kind = Some(StatementKind::CreateTable);
                        self.pos += 1;
                        break;
                    }
                    if self.peek().is_some_and(|t| t.is_kw("view")) {
                        shape.kind = Some(StatementKind::CreateView);
                        self.pos += 1;
                        break;
                    }
                    if self.peek().is_some_and(|t| t.is_kw("index")) {
                        shape.kind = Some(StatementKind::Other);
                        self.pos += 1;
                        break;
                    }
                    self.pos += 1;
                }
                if shape.kind.is_none() {
                    shape.kind = Some(StatementKind::Other);
                }
                if let Some(tref) = self.parse_table_ref() {
                    shape.tables.push(tref);
                }
                // CREATE TABLE ... AS SELECT keeps the inner structure.
                self.skip_until_kw_depth0(&["select"]);
                if self.peek().is_some_and(|t| t.is_kw("select")) {
                    let kind = shape.kind;
                    self.parse_select_body(shape, depth);
                    shape.kind = kind;
                }
            }
            "drop" => {
                shape.kind = Some(StatementKind::Drop);
                self.pos += 1;
                self.bump(); // object class
                if let Some(tref) = self.parse_table_ref() {
                    shape.tables.push(tref);
                }
            }
            "copy" => {
                shape.kind = Some(StatementKind::Copy);
                self.pos += 1;
                if let Some(tref) = self.parse_table_ref() {
                    shape.tables.push(tref);
                }
            }
            "show" => {
                shape.kind = Some(StatementKind::Show);
            }
            "set" | "use" => {
                shape.kind = Some(StatementKind::Set);
            }
            _ => {
                shape.kind = Some(StatementKind::Other);
            }
        }
    }

    fn parse_ctes(&mut self, shape: &mut QueryShape, depth: usize) {
        self.eat_kw("recursive");
        loop {
            // name [ (cols) ] AS ( select )
            if self
                .peek()
                .is_none_or(|t| !matches!(t.kind, TokenKind::Ident | TokenKind::QuotedIdent))
            {
                break;
            }
            self.pos += 1;
            if self.peek().is_some_and(|t| t.is_punct('(')) {
                self.skip_balanced();
            }
            if !self.eat_kw("as") {
                break;
            }
            if self.peek().is_some_and(|t| t.is_punct('(')) {
                // Parse the CTE body as a subquery for structure.
                self.pos += 1;
                let mut inner = QueryShape::default();
                self.parse_statement(&mut inner, depth + 1);
                merge_subquery(shape, inner, depth + 1);
                // Consume up to the matching close paren.
                let mut d = 1usize;
                while let Some(t) = self.bump() {
                    if t.is_punct('(') {
                        d += 1;
                    } else if t.is_punct(')') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                }
            }
            if !self.eat_punct(',') {
                break;
            }
        }
    }

    fn skip_until_kw_depth0(&mut self, kws: &[&str]) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if depth == 0
                && t.kind == TokenKind::Keyword
                && kws.iter().any(|k| t.text.eq_ignore_ascii_case(k))
            {
                return;
            }
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                if depth == 0 {
                    return;
                }
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                return;
            }
            self.pos += 1;
        }
    }

    fn parse_select_body(&mut self, shape: &mut QueryShape, depth: usize) {
        if !self.eat_kw("select") {
            return;
        }
        if self.eat_kw("distinct") {
            shape.distinct = true;
        } else {
            self.eat_kw("all");
        }
        if self.eat_kw("top") {
            if let Some(t) = self.peek() {
                if t.kind == TokenKind::Number {
                    shape.limit = t.text.parse().ok();
                    self.pos += 1;
                }
            }
        }
        self.parse_select_list(shape, depth);
        if self.eat_kw("from") {
            self.parse_from(shape, depth);
        }
        if self.eat_kw("where") {
            let mut ctx = CondCtx::default();
            self.parse_or(shape, &mut ctx, depth);
            shape.predicates.extend(ctx.predicates);
        }
        if self.eat_kw("group") {
            self.eat_kw("by");
            self.parse_column_list(&mut shape.group_by);
        }
        if self.eat_kw("having") {
            let mut ctx = CondCtx::default();
            self.parse_or(shape, &mut ctx, depth);
            shape.having.extend(ctx.predicates);
        }
        if self.eat_kw("order") {
            self.eat_kw("by");
            self.parse_column_list(&mut shape.order_by);
            // ASC/DESC/NULLS handled inside parse_column_list skips.
        }
        loop {
            if self.eat_kw("limit") {
                if let Some(t) = self.peek() {
                    if t.kind == TokenKind::Number {
                        shape.limit = t.text.parse().ok();
                        self.pos += 1;
                    }
                }
            } else if self.eat_kw("offset") {
                if self.peek().is_some_and(|t| t.kind == TokenKind::Number) {
                    self.pos += 1;
                }
                self.eat_kw("rows");
                self.eat_kw("row");
            } else if self.eat_kw("fetch") {
                // FETCH FIRST n ROWS ONLY
                self.eat_kw("first");
                self.eat_kw("next");
                if let Some(t) = self.peek() {
                    if t.kind == TokenKind::Number {
                        shape.limit = t.text.parse().ok();
                        self.pos += 1;
                    }
                }
                self.eat_kw("rows");
                self.eat_kw("row");
                // ONLY is lexed as Ident (not in keyword list); skip it.
                if self
                    .peek()
                    .is_some_and(|t| t.text.eq_ignore_ascii_case("only"))
                {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
        // Set operations chain further SELECTs.
        while self
            .peek()
            .is_some_and(|t| t.is_kw("union") || t.is_kw("intersect") || t.is_kw("except"))
        {
            self.pos += 1;
            self.eat_kw("all");
            self.eat_kw("distinct");
            shape.set_ops += 1;
            while self.eat_punct('(') {}
            if self.peek().is_some_and(|t| t.is_kw("select")) {
                let mut rhs = QueryShape {
                    kind: Some(StatementKind::Select),
                    ..Default::default()
                };
                self.parse_select_body(&mut rhs, depth);
                let rhs_set_ops = rhs.set_ops;
                merge_subquery(shape, rhs, depth); // same depth: siblings
                shape.set_ops += rhs_set_ops;
            } else {
                break;
            }
        }
    }

    /// Count select-list items and record aggregate calls.
    fn parse_select_list(&mut self, shape: &mut QueryShape, depth: usize) {
        let mut items = 0usize;
        let mut depth_parens = 0usize;
        let mut saw_any = false;
        while let Some(t) = self.peek() {
            if depth_parens == 0 {
                if t.is_kw("from") || t.is_punct(';') {
                    break;
                }
                if t.is_punct(',') {
                    items += 1;
                    self.pos += 1;
                    continue;
                }
            }
            saw_any = true;
            if t.is_punct('(') {
                // Could be a scalar subquery in the select list.
                if self.peek_at(1).is_some_and(|n| n.is_kw("select")) {
                    self.pos += 1;
                    let mut inner = QueryShape::default();
                    self.parse_statement(&mut inner, depth + 1);
                    merge_subquery(shape, inner, depth + 1);
                    let mut d = 1usize;
                    while let Some(t) = self.bump() {
                        if t.is_punct('(') {
                            d += 1;
                        } else if t.is_punct(')') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                    }
                    continue;
                }
                depth_parens += 1;
                self.pos += 1;
                continue;
            }
            if t.is_punct(')') {
                depth_parens = depth_parens.saturating_sub(1);
                self.pos += 1;
                continue;
            }
            // Aggregate call?
            if (t.kind == TokenKind::Ident || t.kind == TokenKind::Keyword)
                && is_agg(&t.text)
                && self.peek_at(1).is_some_and(|n| n.is_punct('('))
            {
                let func = t.text.to_ascii_lowercase();
                self.pos += 2; // func (
                let distinct = self.eat_kw("distinct");
                let column = self.try_column_ref();
                shape.aggregates.push(AggCall {
                    func,
                    column,
                    distinct,
                });
                // Consume the rest of the call.
                let mut d = 1usize;
                while let Some(t) = self.peek() {
                    if t.is_punct('(') {
                        d += 1;
                    } else if t.is_punct(')') {
                        d -= 1;
                        if d == 0 {
                            self.pos += 1;
                            break;
                        }
                    }
                    self.pos += 1;
                }
                continue;
            }
            self.pos += 1;
        }
        if saw_any {
            items += 1;
        }
        shape.projections = items;
    }

    /// Parse a dotted table name with optional alias.
    fn parse_table_ref(&mut self) -> Option<TableRef> {
        let t = self.peek()?;
        if !matches!(t.kind, TokenKind::Ident | TokenKind::QuotedIdent) {
            return None;
        }
        let mut parts = vec![t.ident_name().to_ascii_lowercase()];
        self.pos += 1;
        while self.peek().is_some_and(|t| t.is_punct('.')) {
            if let Some(next) = self.peek_at(1) {
                if matches!(next.kind, TokenKind::Ident | TokenKind::QuotedIdent) {
                    parts.push(next.ident_name().to_ascii_lowercase());
                    self.pos += 2;
                    continue;
                }
            }
            break;
        }
        let name = parts.last().cloned().unwrap_or_default();
        let path = parts.join(".");
        // Optional alias: AS ident, or a bare identifier that is not a
        // clause keyword.
        let mut alias = None;
        if self.eat_kw("as") {
            if let Some(a) = self.peek() {
                if matches!(a.kind, TokenKind::Ident | TokenKind::QuotedIdent) {
                    alias = Some(a.ident_name().to_ascii_lowercase());
                    self.pos += 1;
                }
            }
        } else if let Some(a) = self.peek() {
            if a.kind == TokenKind::Ident {
                alias = Some(a.ident_name().to_ascii_lowercase());
                self.pos += 1;
            }
        }
        Some(TableRef { name, path, alias })
    }

    fn parse_from(&mut self, shape: &mut QueryShape, depth: usize) {
        loop {
            // One table factor.
            if self.peek().is_some_and(|t| t.is_punct('(')) {
                if self
                    .peek_at(1)
                    .is_some_and(|n| n.is_kw("select") || n.is_kw("with"))
                {
                    // Derived table.
                    self.pos += 1;
                    let mut inner = QueryShape::default();
                    self.parse_statement(&mut inner, depth + 1);
                    merge_subquery(shape, inner, depth + 1);
                    let mut d = 1usize;
                    while let Some(t) = self.bump() {
                        if t.is_punct('(') {
                            d += 1;
                        } else if t.is_punct(')') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                    }
                    // Optional alias.
                    self.eat_kw("as");
                    if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) {
                        self.pos += 1;
                    }
                } else {
                    self.skip_balanced();
                }
            } else if let Some(tref) = self.parse_table_ref() {
                shape.tables.push(tref);
            } else {
                break;
            }

            // Continuations: comma, or JOIN chains.
            if self.eat_punct(',') {
                continue;
            }
            let mut joined = false;
            loop {
                let save = self.pos;
                self.eat_kw("natural");
                self.eat_kw("inner");
                let outerish = self.eat_kw("left") | self.eat_kw("right") | self.eat_kw("full");
                if outerish {
                    self.eat_kw("outer");
                }
                let cross = self.eat_kw("cross");
                if !self.eat_kw("join") {
                    self.pos = save;
                    break;
                }
                joined = true;
                let _ = cross;
                // Join target.
                if self.peek().is_some_and(|t| t.is_punct('(')) {
                    if self.peek_at(1).is_some_and(|n| n.is_kw("select")) {
                        self.pos += 1;
                        let mut inner = QueryShape::default();
                        self.parse_statement(&mut inner, depth + 1);
                        merge_subquery(shape, inner, depth + 1);
                        let mut d = 1usize;
                        while let Some(t) = self.bump() {
                            if t.is_punct('(') {
                                d += 1;
                            } else if t.is_punct(')') {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                        }
                        self.eat_kw("as");
                        if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) {
                            self.pos += 1;
                        }
                    } else {
                        self.skip_balanced();
                    }
                } else if let Some(tref) = self.parse_table_ref() {
                    shape.tables.push(tref);
                }
                if self.eat_kw("on") {
                    let mut ctx = CondCtx::default();
                    self.parse_or(shape, &mut ctx, depth);
                    // ON-clause column=column conditions became join edges
                    // already; residual filters belong to predicates.
                    shape.predicates.extend(ctx.predicates);
                } else if self.eat_kw("using") && self.peek().is_some_and(|t| t.is_punct('(')) {
                    self.pos += 1;
                    while let Some(t) = self.peek() {
                        if t.is_punct(')') {
                            self.pos += 1;
                            break;
                        }
                        if t.kind == TokenKind::Ident {
                            let col = t.text.to_ascii_lowercase();
                            shape.joins.push(JoinEdge {
                                left: ColumnRef::new(None, &col),
                                right: ColumnRef::new(None, &col),
                            });
                        }
                        self.pos += 1;
                    }
                }
            }
            if joined && self.eat_punct(',') {
                continue;
            }
            if !joined {
                break;
            }
            if self.at_clause_boundary() {
                break;
            }
        }
    }

    fn parse_column_list(&mut self, out: &mut Vec<ColumnRef>) {
        // Count of ROLLUP(/CUBE( wrappers we descended into, so we only eat
        // the close parens we opened (never a subquery's).
        let mut wrapped = 0usize;
        loop {
            // Skip ROLLUP( / CUBE( / GROUPING SETS( wrappers.
            if self
                .peek()
                .is_some_and(|t| t.is_kw("rollup") || t.is_kw("cube"))
            {
                self.pos += 1;
                if self.peek().is_some_and(|t| t.is_punct('(')) {
                    self.pos += 1; // descend into the list
                    wrapped += 1;
                }
            }
            if let Some(col) = self.try_column_ref() {
                out.push(col);
            } else if self.peek().is_some_and(|t| t.kind == TokenKind::Number) {
                // ORDER BY ordinal — skip.
                self.pos += 1;
            } else {
                // Unparseable list item (expression): skip to , or boundary.
                let mut depth = 0usize;
                while let Some(t) = self.peek() {
                    if depth == 0 && (t.is_punct(',') || self.at_clause_boundary()) {
                        break;
                    }
                    if t.is_punct('(') {
                        depth += 1;
                    } else if t.is_punct(')') {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    self.pos += 1;
                }
            }
            // Skip ASC / DESC / NULLS FIRST|LAST.
            loop {
                if self.eat_kw("asc")
                    || self.eat_kw("desc")
                    || self.eat_kw("nulls")
                    || self.eat_kw("first")
                    || self.eat_kw("last")
                {
                    continue;
                }
                break;
            }
            if wrapped > 0 && self.peek().is_some_and(|t| t.is_punct(')')) {
                // Close of a rollup/cube wrapper we opened.
                self.pos += 1;
                wrapped -= 1;
                if !self.eat_punct(',') {
                    break;
                }
                continue;
            }
            if !self.eat_punct(',') {
                break;
            }
        }
    }

    /// Try to read `ident` or `ident.ident` (column ref). Does not consume
    /// on failure. Refuses function calls (ident followed by `(`).
    fn try_column_ref(&mut self) -> Option<ColumnRef> {
        let t = self.peek()?;
        if !matches!(t.kind, TokenKind::Ident | TokenKind::QuotedIdent) {
            return None;
        }
        let first = t.ident_name().to_ascii_lowercase();
        // Function call → not a column ref.
        if self.peek_at(1).is_some_and(|n| n.is_punct('(')) {
            return None;
        }
        if self.peek_at(1).is_some_and(|n| n.is_punct('.')) {
            if let Some(second) = self.peek_at(2) {
                if matches!(second.kind, TokenKind::Ident | TokenKind::QuotedIdent)
                    && !self.peek_at(3).is_some_and(|n| n.is_punct('('))
                {
                    let col = second.ident_name().to_ascii_lowercase();
                    // Possibly a longer path a.b.c — take last two parts.
                    if self.peek_at(3).is_some_and(|n| n.is_punct('.')) {
                        if let Some(third) = self.peek_at(4) {
                            if matches!(third.kind, TokenKind::Ident | TokenKind::QuotedIdent) {
                                let col2 = third.ident_name().to_ascii_lowercase();
                                self.pos += 5;
                                return Some(ColumnRef::new(Some(&col), &col2));
                            }
                        }
                    }
                    self.pos += 3;
                    return Some(ColumnRef::new(Some(&first), &col));
                }
            }
        }
        self.pos += 1;
        Some(ColumnRef::new(None, &first))
    }

    // ----- condition parsing -------------------------------------------

    fn parse_or(&mut self, shape: &mut QueryShape, ctx: &mut CondCtx, depth: usize) {
        let start_preds = ctx.predicates.len();
        self.parse_and(shape, ctx, depth);
        let mut branches = 1;
        while self.eat_kw("or") {
            branches += 1;
            self.parse_and(shape, ctx, depth);
        }
        if branches > 1 {
            for p in &mut ctx.predicates[start_preds..] {
                p.in_or = true;
            }
        }
    }

    fn parse_and(&mut self, shape: &mut QueryShape, ctx: &mut CondCtx, depth: usize) {
        self.parse_condition_atom(shape, ctx, depth);
        while self.eat_kw("and") {
            self.parse_condition_atom(shape, ctx, depth);
        }
    }

    fn parse_condition_atom(&mut self, shape: &mut QueryShape, ctx: &mut CondCtx, depth: usize) {
        let negated = self.eat_kw("not");
        // EXISTS (subquery)
        if self.eat_kw("exists") {
            if self.peek().is_some_and(|t| t.is_punct('(')) {
                self.parse_subquery_parens(shape, depth);
            }
            ctx.predicates.push(Predicate {
                lhs: Lhs::Column(ColumnRef::new(None, "<exists>")),
                op: CmpOp::Exists,
                rhs: Rhs::Subquery,
                rhs2: None,
                negated,
                in_or: false,
            });
            return;
        }
        // Parenthesized group.
        if self.peek().is_some_and(|t| t.is_punct('(')) {
            if self.peek_at(1).is_some_and(|n| n.is_kw("select")) {
                // Scalar subquery as a bare condition LHS — rare; record it.
                self.parse_subquery_parens(shape, depth);
            } else {
                self.pos += 1;
                self.parse_or(shape, ctx, depth);
                self.eat_punct(')');
                if negated {
                    // NOT over a group: conservatively mark members non-sargable.
                    for p in &mut ctx.predicates {
                        p.in_or = true;
                    }
                }
                return;
            }
        }

        // LHS term.
        let lhs = match self.parse_term(shape, depth) {
            Some(t) => t,
            None => {
                self.recover_condition();
                return;
            }
        };

        // IS [NOT] NULL
        if self.eat_kw("is") {
            let is_not = self.eat_kw("not");
            self.eat_kw("null");
            if let Term::Col(c) = lhs {
                ctx.predicates.push(Predicate {
                    lhs: Lhs::Column(c),
                    op: if is_not {
                        CmpOp::IsNotNull
                    } else {
                        CmpOp::IsNull
                    },
                    rhs: Rhs::None,
                    rhs2: None,
                    negated,
                    in_or: false,
                });
            }
            return;
        }

        let not2 = self.eat_kw("not");
        let negated = negated || not2;

        // BETWEEN a AND b
        if self.eat_kw("between") {
            let lo = self.parse_value_expr(shape, depth);
            self.eat_kw("and");
            let hi = self.parse_value_expr(shape, depth);
            if let Some(l) = term_to_lhs(&lhs) {
                ctx.predicates.push(Predicate {
                    lhs: l,
                    op: CmpOp::Between,
                    rhs: lo.unwrap_or(Rhs::None),
                    rhs2: hi,
                    negated,
                    in_or: false,
                });
            }
            return;
        }

        // IN (list | subquery)
        if self.eat_kw("in") {
            let rhs = if self.peek().is_some_and(|t| t.is_punct('(')) {
                if self.peek_at(1).is_some_and(|n| n.is_kw("select")) {
                    self.parse_subquery_parens(shape, depth);
                    Rhs::Subquery
                } else {
                    // Count commas at depth 1.
                    let mut count = 1usize;
                    let mut d = 0usize;
                    let mut empty = true;
                    while let Some(t) = self.bump() {
                        if t.is_punct('(') {
                            d += 1;
                        } else if t.is_punct(')') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        } else {
                            empty = false;
                            if d == 1 && t.is_punct(',') {
                                count += 1;
                            }
                        }
                    }
                    Rhs::List(if empty { 0 } else { count })
                }
            } else {
                Rhs::None
            };
            if let Some(l) = term_to_lhs(&lhs) {
                ctx.predicates.push(Predicate {
                    lhs: l,
                    op: CmpOp::In,
                    rhs,
                    rhs2: None,
                    negated,
                    in_or: false,
                });
            }
            return;
        }

        // LIKE / ILIKE
        if self.eat_kw("like") || self.eat_kw("ilike") {
            let rhs = self.parse_value_expr(shape, depth).unwrap_or(Rhs::None);
            // Optional ESCAPE 'c'.
            if self.eat_kw("escape") {
                self.bump();
            }
            if let Some(l) = term_to_lhs(&lhs) {
                ctx.predicates.push(Predicate {
                    lhs: l,
                    op: CmpOp::Like,
                    rhs,
                    rhs2: None,
                    negated,
                    in_or: false,
                });
            }
            return;
        }

        // Comparison operator.
        let op = match self.peek() {
            Some(t) if t.kind == TokenKind::Operator => match t.text.as_str() {
                "=" => Some(CmpOp::Eq),
                "<" => Some(CmpOp::Lt),
                "<=" => Some(CmpOp::Le),
                ">" => Some(CmpOp::Gt),
                ">=" => Some(CmpOp::Ge),
                "<>" | "!=" => Some(CmpOp::Ne),
                _ => None,
            },
            _ => None,
        };
        let Some(op) = op else {
            self.recover_condition();
            return;
        };
        self.pos += 1;

        // RHS: column (join edge) or value.
        let rhs_term = self.parse_term(shape, depth);
        match (lhs, rhs_term) {
            (Term::Col(l), Some(Term::Col(r))) if op == CmpOp::Eq && !negated => {
                // Join edges only make sense when two relations are involved;
                // a col=col within one table is recorded as a join edge too —
                // the optimizer resolves qualifiers later and discards
                // self-edges.
                shape.joins.push(JoinEdge { left: l, right: r });
            }
            (lhs_t, Some(Term::Col(r))) => {
                // value-op-column (e.g. 5 < x): flip where possible.
                if let Term::Lit(v) = lhs_t {
                    ctx.predicates.push(Predicate {
                        lhs: Lhs::Column(r),
                        op: flip(op),
                        rhs: v,
                        rhs2: None,
                        negated,
                        in_or: false,
                    });
                } else if let Some(l) = term_to_lhs(&lhs_t) {
                    // agg = column — record against the agg LHS.
                    ctx.predicates.push(Predicate {
                        lhs: l,
                        op,
                        rhs: Rhs::None,
                        rhs2: None,
                        negated,
                        in_or: false,
                    });
                }
            }
            (lhs_t, Some(Term::Lit(v))) => {
                if let Some(l) = term_to_lhs(&lhs_t) {
                    ctx.predicates.push(Predicate {
                        lhs: l,
                        op,
                        rhs: v,
                        rhs2: None,
                        negated,
                        in_or: false,
                    });
                }
            }
            (lhs_t, Some(Term::Subquery)) => {
                if let Some(l) = term_to_lhs(&lhs_t) {
                    ctx.predicates.push(Predicate {
                        lhs: l,
                        op,
                        rhs: Rhs::Subquery,
                        rhs2: None,
                        negated,
                        in_or: false,
                    });
                }
            }
            (lhs_t, _) => {
                if let Some(l) = term_to_lhs(&lhs_t) {
                    ctx.predicates.push(Predicate {
                        lhs: l,
                        op,
                        rhs: Rhs::None,
                        rhs2: None,
                        negated,
                        in_or: false,
                    });
                }
            }
        }
    }

    /// Parse a value-position expression (BETWEEN bounds, LIKE patterns)
    /// into an [`Rhs`], when the term is a literal.
    fn parse_value_expr(&mut self, shape: &mut QueryShape, depth: usize) -> Option<Rhs> {
        match self.parse_term(shape, depth)? {
            Term::Lit(v) => Some(v),
            Term::Subquery => Some(Rhs::Subquery),
            Term::Col(_) | Term::Agg { .. } | Term::Expr => Some(Rhs::None),
        }
    }

    /// Skip an unparseable condition up to AND/OR or a clause boundary.
    fn recover_condition(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if depth == 0 && (t.is_kw("and") || t.is_kw("or") || self.at_clause_boundary()) {
                return;
            }
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                if depth == 0 {
                    return;
                }
                depth -= 1;
            }
            self.pos += 1;
        }
    }

    fn parse_subquery_parens(&mut self, shape: &mut QueryShape, depth: usize) {
        // Assumes next token is '('.
        self.pos += 1;
        let mut inner = QueryShape::default();
        self.parse_statement(&mut inner, depth + 1);
        merge_subquery(shape, inner, depth + 1);
        let mut d = 1usize;
        while let Some(t) = self.bump() {
            if t.is_punct('(') {
                d += 1;
            } else if t.is_punct(')') {
                d -= 1;
                if d == 0 {
                    break;
                }
            }
        }
    }

    /// A term on either side of a comparison.
    fn parse_term(&mut self, shape: &mut QueryShape, depth: usize) -> Option<Term> {
        let t = self.peek()?;
        // Subquery.
        if t.is_punct('(') {
            if self.peek_at(1).is_some_and(|n| n.is_kw("select")) {
                self.parse_subquery_parens(shape, depth);
                return Some(Term::Subquery);
            }
            // Parenthesized expression — treat as opaque.
            self.skip_balanced();
            return Some(Term::Expr);
        }
        // Aggregate call (HAVING).
        if (t.kind == TokenKind::Ident || t.kind == TokenKind::Keyword)
            && is_agg(&t.text)
            && self.peek_at(1).is_some_and(|n| n.is_punct('('))
        {
            let func = t.text.to_ascii_lowercase();
            self.pos += 2;
            self.eat_kw("distinct");
            let column = self.try_column_ref();
            let mut d = 1usize;
            while let Some(t) = self.peek() {
                if t.is_punct('(') {
                    d += 1;
                } else if t.is_punct(')') {
                    d -= 1;
                    if d == 0 {
                        self.pos += 1;
                        break;
                    }
                }
                self.pos += 1;
            }
            return Some(Term::Agg { func, column });
        }
        // `date '1995-01-01'` / `timestamp '...'` style typed literal, plus
        // optional +/- `interval 'n' unit` arithmetic.
        if t.kind == TokenKind::Ident
            && matches!(t.text.to_ascii_lowercase().as_str(), "date" | "timestamp")
            && self
                .peek_at(1)
                .is_some_and(|n| n.kind == TokenKind::StringLit)
        {
            self.pos += 1;
            let lit = self.bump().expect("peeked");
            let inner = strip_str(&lit.text);
            let mut value = Rhs::Str(inner);
            // date arithmetic: +/- interval 'n' unit.
            value = self.maybe_interval_arith(value);
            return Some(Term::Lit(value));
        }
        // interval literal itself.
        if t.kind == TokenKind::Keyword && t.is_kw("interval") {
            self.pos += 1;
            if let Some(n) = self.peek() {
                if n.kind == TokenKind::StringLit || n.kind == TokenKind::Number {
                    let days = interval_days(&n.text, self.peek_at(1).map(|u| u.text.as_str()));
                    self.pos += 1;
                    // unit word
                    if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) {
                        self.pos += 1;
                    }
                    return Some(Term::Lit(Rhs::Number(days)));
                }
            }
            return Some(Term::Expr);
        }
        match t.kind {
            TokenKind::Number => {
                let v: f64 = t.text.parse().unwrap_or(0.0);
                self.pos += 1;
                // Tolerate simple literal arithmetic (e.g. 0.06 - 0.01).
                let v = self.fold_numeric_arith(v);
                Some(Term::Lit(Rhs::Number(v)))
            }
            TokenKind::Operator if t.text == "-" => {
                // negative literal
                if let Some(n) = self.peek_at(1) {
                    if n.kind == TokenKind::Number {
                        let v: f64 = n.text.parse().unwrap_or(0.0);
                        self.pos += 2;
                        return Some(Term::Lit(Rhs::Number(-v)));
                    }
                }
                self.pos += 1;
                Some(Term::Expr)
            }
            TokenKind::StringLit => {
                let s = strip_str(&t.text);
                self.pos += 1;
                Some(Term::Lit(Rhs::Str(s)))
            }
            TokenKind::Param => {
                self.pos += 1;
                Some(Term::Lit(Rhs::Param))
            }
            TokenKind::Ident | TokenKind::QuotedIdent => {
                // Function call that is not an aggregate → opaque expr.
                if self.peek_at(1).is_some_and(|n| n.is_punct('(')) {
                    self.pos += 1;
                    self.skip_balanced();
                    return Some(Term::Expr);
                }
                let col = self.try_column_ref()?;
                Some(Term::Col(col))
            }
            TokenKind::Keyword if t.is_kw("null") => {
                self.pos += 1;
                Some(Term::Lit(Rhs::None))
            }
            TokenKind::Keyword if t.is_kw("true") || t.is_kw("false") => {
                let v = if t.is_kw("true") { 1.0 } else { 0.0 };
                self.pos += 1;
                Some(Term::Lit(Rhs::Number(v)))
            }
            TokenKind::Keyword if t.is_kw("case") => {
                // Skip to END.
                while let Some(t) = self.bump() {
                    if t.is_kw("end") {
                        break;
                    }
                }
                Some(Term::Expr)
            }
            TokenKind::Keyword if t.is_kw("cast") || t.is_kw("extract") => {
                self.pos += 1;
                if self.peek().is_some_and(|t| t.is_punct('(')) {
                    self.skip_balanced();
                }
                Some(Term::Expr)
            }
            _ => None,
        }
    }

    /// After a date literal: handle `+ interval 'n' unit` / `- interval ...`.
    fn maybe_interval_arith(&mut self, base: Rhs) -> Rhs {
        let sign = match self.peek() {
            Some(t) if t.is_op("+") => 1.0,
            Some(t) if t.is_op("-") => -1.0,
            _ => return base,
        };
        if !self.peek_at(1).is_some_and(|t| t.is_kw("interval")) {
            return base;
        }
        self.pos += 2; // sign, interval
        let mut days = 0.0;
        if let Some(n) = self.peek() {
            if n.kind == TokenKind::StringLit || n.kind == TokenKind::Number {
                days = interval_days(&n.text, self.peek_at(1).map(|u| u.text.as_str()));
                self.pos += 1;
                if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) {
                    self.pos += 1;
                }
            }
        }
        match &base {
            Rhs::Str(s) => match crate::ast::date_to_days(s) {
                Some(d) => Rhs::Number(d + sign * days),
                None => base,
            },
            Rhs::Number(v) => Rhs::Number(v + sign * days),
            _ => base,
        }
    }

    /// Fold `lit (+|-|*|/) lit` chains into one number.
    fn fold_numeric_arith(&mut self, mut acc: f64) -> f64 {
        loop {
            let op = match self.peek() {
                Some(t) if t.kind == TokenKind::Operator => match t.text.as_str() {
                    "+" | "-" | "*" | "/" => t.text.clone(),
                    _ => break,
                },
                _ => break,
            };
            let Some(n) = self.peek_at(1) else { break };
            if n.kind != TokenKind::Number {
                break;
            }
            let v: f64 = n.text.parse().unwrap_or(0.0);
            self.pos += 2;
            acc = match op.as_str() {
                "+" => acc + v,
                "-" => acc - v,
                "*" => acc * v,
                _ => {
                    if v != 0.0 {
                        acc / v
                    } else {
                        acc
                    }
                }
            };
        }
        acc
    }
}

#[derive(Debug)]
enum Term {
    Col(ColumnRef),
    Agg {
        func: String,
        column: Option<ColumnRef>,
    },
    Lit(Rhs),
    Subquery,
    Expr,
}

fn term_to_lhs(t: &Term) -> Option<Lhs> {
    match t {
        Term::Col(c) => Some(Lhs::Column(c.clone())),
        Term::Agg { func, column } => Some(Lhs::Agg {
            func: func.clone(),
            column: column.clone(),
        }),
        _ => None,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

fn strip_str(raw: &str) -> String {
    let inner = raw
        .strip_prefix('\'')
        .map(|s| s.strip_suffix('\'').unwrap_or(s))
        .unwrap_or(raw);
    inner.replace("''", "'")
}

/// Interpret an interval magnitude + unit as days.
fn interval_days(magnitude: &str, unit: Option<&str>) -> f64 {
    let m: f64 = strip_str(magnitude).parse().unwrap_or(0.0);
    let factor = match unit.map(|u| u.to_ascii_lowercase()) {
        Some(u) if u.starts_with("year") => 365.0,
        Some(u) if u.starts_with("month") => 30.0,
        Some(u) if u.starts_with("week") => 7.0,
        Some(u) if u.starts_with("day") => 1.0,
        Some(u) if u.starts_with("hour") => 1.0 / 24.0,
        _ => 1.0,
    };
    m * factor
}

#[derive(Default)]
struct CondCtx {
    predicates: Vec<Predicate>,
}

/// Fold a subquery's discovered structure into the parent shape.
fn merge_subquery(parent: &mut QueryShape, child: QueryShape, _child_depth: usize) {
    // A direct subquery adds one level plus whatever the child nested.
    parent.subquery_depth = parent.subquery_depth.max(1 + child.subquery_depth);
    parent.tables.extend(child.tables);
    parent.joins.extend(child.joins);
    parent.predicates.extend(child.predicates);
    parent.having.extend(child.having);
    parent.aggregates.extend(child.aggregates);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(sql: &str) -> QueryShape {
        parse_query(sql, Dialect::Generic)
    }

    #[test]
    fn simple_select_shape() {
        let s = parse("SELECT a, b FROM t WHERE a = 1 AND b > 2.5");
        assert_eq!(s.kind, Some(StatementKind::Select));
        assert_eq!(s.tables.len(), 1);
        assert_eq!(s.tables[0].name, "t");
        assert_eq!(s.projections, 2);
        assert_eq!(s.predicates.len(), 2);
        assert_eq!(s.predicates[0].op, CmpOp::Eq);
        assert_eq!(s.predicates[0].rhs, Rhs::Number(1.0));
        assert_eq!(s.predicates[1].op, CmpOp::Gt);
    }

    #[test]
    fn aliases_resolve() {
        let s = parse("SELECT l.l_quantity FROM lineitem l WHERE l.l_tax < 0.05");
        assert_eq!(s.tables[0].alias.as_deref(), Some("l"));
        assert_eq!(s.resolve_table("l"), Some("lineitem"));
        let p = &s.predicates[0];
        assert_eq!(p.column().unwrap().qualifier.as_deref(), Some("l"));
    }

    #[test]
    fn implicit_join_in_where() {
        let s = parse(
            "SELECT * FROM customer c, orders o WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 100",
        );
        assert_eq!(s.tables.len(), 2);
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].left.column, "c_custkey");
        assert_eq!(s.joins[0].right.column, "o_custkey");
        assert_eq!(s.predicates.len(), 1);
    }

    #[test]
    fn explicit_join_on() {
        let s = parse(
            "SELECT * FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey LEFT OUTER JOIN nation n ON c.c_nationkey = n.n_nationkey WHERE n.n_name = 'FRANCE'",
        );
        assert_eq!(s.tables.len(), 3);
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.predicates.len(), 1);
        assert_eq!(s.predicates[0].rhs, Rhs::Str("FRANCE".into()));
    }

    #[test]
    fn join_using() {
        let s = parse("SELECT * FROM a JOIN b USING (k)");
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].left.column, "k");
    }

    #[test]
    fn between_and_in_and_like() {
        let s = parse(
            "SELECT * FROM t WHERE a BETWEEN 5 AND 10 AND b IN (1, 2, 3) AND c LIKE '%x%' AND d NOT IN (4,5)",
        );
        assert_eq!(s.predicates.len(), 4);
        assert_eq!(s.predicates[0].op, CmpOp::Between);
        assert_eq!(s.predicates[0].rhs, Rhs::Number(5.0));
        assert_eq!(s.predicates[0].rhs2, Some(Rhs::Number(10.0)));
        assert_eq!(s.predicates[1].op, CmpOp::In);
        assert_eq!(s.predicates[1].rhs, Rhs::List(3));
        assert_eq!(s.predicates[2].op, CmpOp::Like);
        assert!(s.predicates[3].negated);
    }

    #[test]
    fn or_marks_non_sargable() {
        let s = parse("SELECT * FROM t WHERE a = 1 OR b = 2");
        assert_eq!(s.predicates.len(), 2);
        assert!(s.predicates.iter().all(|p| p.in_or));
        assert!(s.predicates.iter().all(|p| !p.sargable()));
        let s2 = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3");
        let c_pred = s2
            .predicates
            .iter()
            .find(|p| p.column().unwrap().column == "c")
            .unwrap();
        assert!(!c_pred.in_or);
        assert!(c_pred.sargable());
    }

    #[test]
    fn group_by_having_order_by() {
        let s = parse(
            "SELECT l_returnflag, sum(l_quantity) FROM lineitem GROUP BY l_returnflag HAVING sum(l_quantity) > 300 ORDER BY l_returnflag DESC",
        );
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.group_by[0].column, "l_returnflag");
        assert_eq!(s.having.len(), 1);
        match &s.having[0].lhs {
            Lhs::Agg { func, column } => {
                assert_eq!(func, "sum");
                assert_eq!(column.as_ref().unwrap().column, "l_quantity");
            }
            other => panic!("expected agg lhs, got {other:?}"),
        }
        assert_eq!(s.having[0].rhs, Rhs::Number(300.0));
        assert_eq!(s.order_by.len(), 1);
        assert_eq!(s.aggregates.len(), 1);
    }

    #[test]
    fn date_arithmetic_folds_to_days() {
        let s = parse(
            "SELECT * FROM lineitem WHERE l_shipdate <= date '1998-12-01' - interval '90' day",
        );
        assert_eq!(s.predicates.len(), 1);
        let expected = crate::ast::date_to_days("1998-12-01").unwrap() - 90.0;
        assert_eq!(s.predicates[0].rhs, Rhs::Number(expected));
    }

    #[test]
    fn plain_date_literal_stays_string_but_numeric_works() {
        let s = parse("SELECT * FROM orders WHERE o_orderdate >= date '1995-01-01'");
        let rhs = &s.predicates[0].rhs;
        assert_eq!(rhs.numeric(), crate::ast::date_to_days("1995-01-01"));
    }

    #[test]
    fn subquery_depth_and_tables() {
        let s = parse(
            "SELECT * FROM orders WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem GROUP BY l_orderkey HAVING sum(l_quantity) > 300)",
        );
        assert_eq!(s.subquery_depth, 1);
        assert!(s.table_names().contains(&"lineitem"));
        assert!(s.table_names().contains(&"orders"));
        let inp = s
            .predicates
            .iter()
            .find(|p| p.op == CmpOp::In)
            .expect("IN predicate");
        assert_eq!(inp.rhs, Rhs::Subquery);
        // The subquery's HAVING is merged.
        assert_eq!(s.having.len(), 1);
    }

    #[test]
    fn nested_subqueries_deepen() {
        let s = parse("SELECT * FROM a WHERE x IN (SELECT y FROM b WHERE z IN (SELECT w FROM c))");
        assert_eq!(s.subquery_depth, 2);
        assert_eq!(s.table_names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn exists_predicate() {
        let s = parse("SELECT * FROM a WHERE EXISTS (SELECT 1 FROM b WHERE b.k = a.k)");
        assert!(s.predicates.iter().any(|p| p.op == CmpOp::Exists));
        assert!(s.joins.iter().any(|j| j.left.column == "k"));
    }

    #[test]
    fn set_operations_counted() {
        let s = parse("SELECT a FROM t UNION ALL SELECT a FROM u UNION SELECT a FROM v");
        assert_eq!(s.set_ops, 2);
        assert_eq!(s.table_names(), vec!["t", "u", "v"]);
    }

    #[test]
    fn cte_structure_merged() {
        let s = parse(
            "WITH r AS (SELECT o_custkey, count(*) c FROM orders GROUP BY o_custkey) SELECT * FROM r WHERE c > 5",
        );
        assert_eq!(s.kind, Some(StatementKind::Select));
        assert!(s.table_names().contains(&"orders"));
        assert!(s.aggregates.iter().any(|a| a.func == "count"));
    }

    #[test]
    fn dml_kinds() {
        assert_eq!(
            parse("INSERT INTO t VALUES (1, 2)").kind,
            Some(StatementKind::Insert)
        );
        let u = parse("UPDATE t SET a = 1 WHERE b = 2");
        assert_eq!(u.kind, Some(StatementKind::Update));
        assert_eq!(u.predicates.len(), 1);
        let d = parse("DELETE FROM t WHERE a < 10");
        assert_eq!(d.kind, Some(StatementKind::Delete));
        assert_eq!(d.predicates.len(), 1);
        assert_eq!(parse("DROP TABLE t").kind, Some(StatementKind::Drop));
        assert_eq!(
            parse("CREATE TABLE t (a int, b text)").kind,
            Some(StatementKind::CreateTable)
        );
        assert_eq!(parse("SHOW TABLES").kind, Some(StatementKind::Show));
    }

    #[test]
    fn limit_variants() {
        assert_eq!(parse("SELECT a FROM t LIMIT 10").limit, Some(10));
        assert_eq!(parse("SELECT TOP 5 a FROM t").limit, Some(5));
        assert_eq!(
            parse("SELECT a FROM t ORDER BY a FETCH FIRST 7 ROWS ONLY").limit,
            Some(7)
        );
    }

    #[test]
    fn distinct_flag() {
        assert!(parse("SELECT DISTINCT a FROM t").distinct);
        assert!(!parse("SELECT a FROM t").distinct);
    }

    #[test]
    fn qualified_table_paths() {
        let s = parse("SELECT * FROM tpch.public.orders o");
        assert_eq!(s.tables[0].name, "orders");
        assert_eq!(s.tables[0].path, "tpch.public.orders");
        assert_eq!(s.tables[0].alias.as_deref(), Some("o"));
    }

    #[test]
    fn tpch_q3_full_shape() {
        let q3 = "select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue, \
                  o_orderdate, o_shippriority \
                  from customer, orders, lineitem \
                  where c_mktsegment = 'BUILDING' and c_custkey = o_custkey \
                  and l_orderkey = o_orderkey and o_orderdate < date '1995-03-15' \
                  and l_shipdate > date '1995-03-15' \
                  group by l_orderkey, o_orderdate, o_shippriority \
                  order by revenue desc, o_orderdate limit 10";
        let s = parse(q3);
        assert_eq!(s.table_names(), vec!["customer", "lineitem", "orders"]);
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.predicates.len(), 3);
        assert_eq!(s.group_by.len(), 3);
        assert_eq!(s.limit, Some(10));
        assert!(s.aggregates.iter().any(|a| a.func == "sum"));
    }

    #[test]
    fn tpch_q18_having_shape() {
        let q18 = "select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum(l_quantity) \
                   from customer, orders, lineitem \
                   where o_orderkey in (select l_orderkey from lineitem group by l_orderkey having sum(l_quantity) > 300) \
                   and c_custkey = o_custkey and o_orderkey = l_orderkey \
                   group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
                   order by o_totalprice desc, o_orderdate limit 100";
        let s = parse(q18);
        assert_eq!(s.subquery_depth, 1);
        assert_eq!(s.joins.len(), 2);
        assert!(s
            .having
            .iter()
            .any(|h| matches!(&h.lhs, Lhs::Agg { func, .. } if func == "sum")));
        assert_eq!(s.limit, Some(100));
    }

    #[test]
    fn never_panics_on_garbage() {
        for garbage in [
            "",
            ";;;",
            "SELECT",
            "SELECT FROM WHERE",
            "FROM t SELECT a",
            ")(",
            "select * from",
            "where x = 1",
            "🙂 select 🙂 from 🙂",
            "select a from t where (((",
            "select case when then end from t",
        ] {
            let _ = parse(garbage);
        }
    }

    #[test]
    fn is_null_predicates() {
        let s = parse("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL");
        assert_eq!(s.predicates.len(), 2);
        assert_eq!(s.predicates[0].op, CmpOp::IsNull);
        assert_eq!(s.predicates[1].op, CmpOp::IsNotNull);
    }

    #[test]
    fn flipped_comparison() {
        let s = parse("SELECT * FROM t WHERE 5 < x");
        assert_eq!(s.predicates.len(), 1);
        assert_eq!(s.predicates[0].op, CmpOp::Gt);
        assert_eq!(s.predicates[0].column().unwrap().column, "x");
    }

    #[test]
    fn params_as_rhs() {
        let s = parse("SELECT * FROM t WHERE a = ? AND b > :lim");
        assert_eq!(s.predicates.len(), 2);
        assert_eq!(s.predicates[0].rhs, Rhs::Param);
        assert!(s.predicates[0].sargable());
    }
}
