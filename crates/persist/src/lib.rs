//! The snapshot container — a versioned, checksummed, appendable file
//! format for persisting the whole querc serving stack.
//!
//! A snapshot is a sequence of named **sections**. Each section's
//! payload is opaque to this crate (the serving layers put JSON from the
//! serde shims there), but its integrity is not: every section carries a
//! CRC-32 over its name and payload, and the file ends with a footer
//! whose CRC covers every section header — so truncation, bit flips,
//! splices, and reorderings are all detected up front, before a single
//! payload byte is interpreted.
//!
//! ```text
//! QUERCSNAP v1\n                          magic + format version
//! SECTION <name> <len> <crc32hex>\n       per-section header
//! <len payload bytes>\n                   payload (opaque)
//! ...more sections...
//! END <count> <crc32hex>\n                footer: section count +
//!                                         CRC over all header lines
//! ```
//!
//! **Append semantics.** [`append_to`] validates the whole existing
//! file, truncates the footer, writes new sections, and writes a fresh
//! footer. Repeated section names are legal and ordered:
//! [`SnapshotReader::section`] returns the **last** occurrence (the
//! newest full state wins) while [`SnapshotReader::sections`] returns
//! every occurrence in file order (how incremental deltas replay).
//!
//! A reader never panics on hostile input: every malformed byte surfaces
//! as [`PersistError::Corrupt`], which `querc` maps onto
//! `QuercError::Corrupt`.

#![deny(missing_docs)]

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// File magic + format version, first line of every snapshot.
pub const MAGIC: &str = "QUERCSNAP v1";

/// Errors surfaced by snapshot reading/writing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The snapshot bytes fail validation: bad magic, a CRC mismatch,
    /// truncation, or a malformed header.
    Corrupt {
        /// What failed and where.
        detail: String,
    },
    /// The underlying file could not be read or written.
    Io {
        /// The OS error message.
        detail: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Corrupt { detail } => write!(f, "corrupt snapshot: {detail}"),
            PersistError::Io { detail } => write!(f, "snapshot io: {detail}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io {
            detail: e.to_string(),
        }
    }
}

fn corrupt(detail: impl Into<String>) -> PersistError {
    PersistError::Corrupt {
        detail: detail.into(),
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, PersistError>;

// Byte-driven CRC-32 table (256 entries), built in const context so the
// shim-free crate stays dependency-light. One lookup per byte — restore
// validates every payload byte, so this sits on the snapshot-open path.
const CRC_TABLE: [u32; 256] = {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[i] = c;
        i += 1;
    }
    t
};

/// Fold `bytes` into a running (pre-inverted) CRC state.
fn crc32_update(mut c: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// CRC-32 (IEEE polynomial, the zlib/`cksum -o3` variant) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(!0u32, bytes)
}

/// CRC of one section: over the name bytes, a NUL separator, and the
/// payload — so a payload swapped between two sections is detected even
/// when the payloads' own CRCs are individually intact. Streamed
/// through [`crc32_update`]: no concatenation buffer, which matters
/// when the payload is a multi-MB warm cache section.
fn section_crc(name: &str, payload: &[u8]) -> u32 {
    let mut c = crc32_update(!0u32, name.as_bytes());
    c = crc32_update(c, &[0]);
    !crc32_update(c, payload)
}

fn header_line(name: &str, payload: &[u8]) -> String {
    format!(
        "SECTION {name} {} {:08x}\n",
        payload.len(),
        section_crc(name, payload)
    )
}

fn footer_line(headers: &str, count: usize) -> String {
    format!("END {count} {:08x}\n", crc32(headers.as_bytes()))
}

/// Strict canonical decimal: ASCII digits only, no sign, no leading zero
/// (except "0" itself). `usize::from_str` alone would accept `+5` and
/// `007`, letting byte-level mutations of the footer line go undetected.
fn parse_count(s: &str) -> Option<usize> {
    let canonical = !s.is_empty()
        && s.bytes().all(|b| b.is_ascii_digit())
        && (s.len() == 1 || !s.starts_with('0'));
    if canonical {
        s.parse::<usize>().ok()
    } else {
        None
    }
}

/// Strict canonical CRC field: exactly 8 **lowercase** hex digits, as the
/// writer emits. `u32::from_str_radix` alone is case-insensitive, so a
/// flip of the 0x20 bit in `a`–`f` would parse to the same value and slip
/// past detection in the one line no CRC covers (the footer itself).
fn parse_hex8(s: &str) -> Option<u32> {
    let canonical = s.len() == 8
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
    if canonical {
        u32::from_str_radix(s, 16).ok()
    } else {
        None
    }
}

/// A snapshot under construction: named sections in insertion order.
#[derive(Debug, Default)]
pub struct Snapshot {
    sections: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Append a section. Names may repeat (delta sections); section
    /// names must be non-empty and contain no whitespace or newlines
    /// (they live on a space-delimited header line).
    ///
    /// # Panics
    /// If `name` is empty or contains whitespace — a writer-side
    /// programming error, not a runtime condition.
    pub fn add_section(&mut self, name: &str, payload: impl Into<Vec<u8>>) -> &mut Self {
        assert!(
            !name.is_empty() && !name.contains(char::is_whitespace),
            "section name must be non-empty and whitespace-free: {name:?}"
        );
        self.sections.push((name.to_string(), payload.into()));
        self
    }

    /// Number of sections added so far.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when no sections have been added.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Serialize the whole snapshot to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut headers = String::new();
        out.extend_from_slice(MAGIC.as_bytes());
        out.push(b'\n');
        for (name, payload) in &self.sections {
            let h = header_line(name, payload);
            headers.push_str(&h);
            out.extend_from_slice(h.as_bytes());
            out.extend_from_slice(payload);
            out.push(b'\n');
        }
        out.extend_from_slice(footer_line(&headers, self.sections.len()).as_bytes());
        out
    }

    /// Write the snapshot to `path`, replacing any existing file. The
    /// write goes through a temporary sibling + rename, so a crash
    /// mid-write never leaves a half-written snapshot at `path`.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp-snap");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }
}

/// One parsed, validated section.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Section {
    name: String,
    payload: Vec<u8>,
}

/// A fully-validated snapshot: every CRC checked before any accessor
/// returns a byte.
#[derive(Debug)]
pub struct SnapshotReader {
    sections: Vec<Section>,
    /// Byte offset where the footer line starts — where [`append_to`]
    /// resumes writing.
    footer_offset: usize,
    /// Reconstructed header lines (the footer CRC input).
    headers: String,
}

impl SnapshotReader {
    /// Read and validate a snapshot file.
    pub fn open(path: impl AsRef<Path>) -> Result<SnapshotReader> {
        SnapshotReader::from_bytes(&fs::read(path.as_ref())?)
    }

    /// Validate a snapshot held in memory.
    pub fn from_bytes(bytes: &[u8]) -> Result<SnapshotReader> {
        let mut pos = 0usize;
        let magic = read_line(bytes, &mut pos).ok_or_else(|| corrupt("missing magic line"))?;
        if magic != MAGIC.as_bytes() {
            return Err(corrupt(format!(
                "bad magic: expected {MAGIC:?}, got {:?}",
                String::from_utf8_lossy(&magic[..magic.len().min(24)])
            )));
        }
        let mut sections = Vec::new();
        let mut headers = String::new();
        loop {
            let line_start = pos;
            let line =
                read_line(bytes, &mut pos).ok_or_else(|| corrupt("truncated: missing footer"))?;
            let line = std::str::from_utf8(line).map_err(|_| corrupt("non-utf8 header line"))?;
            if let Some(rest) = line.strip_prefix("SECTION ") {
                let mut parts = rest.split(' ');
                let name = parts.next().filter(|n| !n.is_empty());
                let len = parts.next().and_then(parse_count);
                let crc = parts.next().and_then(parse_hex8);
                let (Some(name), Some(len), Some(crc), None) = (name, len, crc, parts.next())
                else {
                    return Err(corrupt(format!("malformed section header: {line:?}")));
                };
                let end = pos.checked_add(len).filter(|&e| e < bytes.len());
                let Some(end) = end else {
                    return Err(corrupt(format!(
                        "truncated: section {name:?} claims {len} bytes past end of file"
                    )));
                };
                let payload = &bytes[pos..end];
                if bytes[end] != b'\n' {
                    return Err(corrupt(format!(
                        "section {name:?}: missing payload terminator"
                    )));
                }
                if section_crc(name, payload) != crc {
                    return Err(corrupt(format!("section {name:?}: CRC mismatch")));
                }
                headers.push_str(line);
                headers.push('\n');
                sections.push(Section {
                    name: name.to_string(),
                    payload: payload.to_vec(),
                });
                pos = end + 1;
            } else if let Some(rest) = line.strip_prefix("END ") {
                let mut parts = rest.split(' ');
                let count = parts.next().and_then(parse_count);
                let crc = parts.next().and_then(parse_hex8);
                let (Some(count), Some(crc), None) = (count, crc, parts.next()) else {
                    return Err(corrupt(format!("malformed footer: {line:?}")));
                };
                if count != sections.len() {
                    return Err(corrupt(format!(
                        "footer claims {count} sections, found {}",
                        sections.len()
                    )));
                }
                if crc32(headers.as_bytes()) != crc {
                    return Err(corrupt("footer CRC mismatch (headers tampered)"));
                }
                if pos != bytes.len() {
                    return Err(corrupt("trailing bytes after footer"));
                }
                return Ok(SnapshotReader {
                    sections,
                    footer_offset: line_start,
                    headers,
                });
            } else {
                return Err(corrupt(format!(
                    "expected SECTION or END, got {:?}",
                    &line[..line.len().min(32)]
                )));
            }
        }
    }

    /// Payload of the **last** section named `name` — the newest full
    /// state when a name was re-snapshotted by an append.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .rev()
            .find(|s| s.name == name)
            .map(|s| s.payload.as_slice())
    }

    /// Payloads of **every** section named `name`, in file order — how
    /// incremental delta sections replay.
    pub fn sections(&self, name: &str) -> Vec<&[u8]> {
        self.sections
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.payload.as_slice())
            .collect()
    }

    /// All section names, in file order (repeats preserved).
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.name.as_str()).collect()
    }

    /// Number of sections in the file.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when the snapshot holds no sections.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }
}

/// Append sections to an existing snapshot file **incrementally**: the
/// existing file is fully validated, its footer is truncated, the new
/// sections are appended, and a fresh footer covering old + new headers
/// is written. Existing payload bytes are never rewritten.
pub fn append_to(path: impl AsRef<Path>, sections: &[(String, Vec<u8>)]) -> Result<()> {
    let path = path.as_ref();
    let bytes = fs::read(path)?;
    let reader = SnapshotReader::from_bytes(&bytes)?;
    let mut headers = reader.headers.clone();
    let mut tail = Vec::new();
    for (name, payload) in sections {
        assert!(
            !name.is_empty() && !name.contains(char::is_whitespace),
            "section name must be non-empty and whitespace-free: {name:?}"
        );
        let h = header_line(name, payload);
        headers.push_str(&h);
        tail.extend_from_slice(h.as_bytes());
        tail.extend_from_slice(payload);
        tail.push(b'\n');
    }
    tail.extend_from_slice(footer_line(&headers, reader.len() + sections.len()).as_bytes());
    let f = fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(reader.footer_offset as u64)?;
    let mut f = f;
    use std::io::Seek as _;
    f.seek(std::io::SeekFrom::End(0))?;
    f.write_all(&tail)?;
    f.sync_all()?;
    Ok(())
}

/// Read one `\n`-terminated line starting at `*pos`; advances past the
/// newline. `None` when no newline remains.
fn read_line<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let rest = bytes.get(*pos..)?;
    let nl = rest.iter().position(|&b| b == b'\n')?;
    let line = &rest[..nl];
    *pos += nl + 1;
    Some(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_in_memory() {
        let mut s = Snapshot::new();
        s.add_section("manifest", br#"{"v":1}"#.to_vec());
        s.add_section("app:audit", b"payload with\nnewlines\x00and nul".to_vec());
        let bytes = s.to_bytes();
        let r = SnapshotReader::from_bytes(&bytes).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.section("manifest"), Some(&br#"{"v":1}"#[..]));
        assert_eq!(
            r.section("app:audit"),
            Some(&b"payload with\nnewlines\x00and nul"[..])
        );
        assert_eq!(r.section("ghost"), None);
        assert_eq!(r.section_names(), vec!["manifest", "app:audit"]);
    }

    #[test]
    fn file_roundtrip_and_append() {
        let dir = std::env::temp_dir().join("querc-persist-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.qsnap");
        let mut s = Snapshot::new();
        s.add_section("base", b"one".to_vec());
        s.write_to(&path).unwrap();

        append_to(&path, &[("delta".to_string(), b"two".to_vec())]).unwrap();
        append_to(&path, &[("delta".to_string(), b"three".to_vec())]).unwrap();

        let r = SnapshotReader::open(&path).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.section("base"), Some(&b"one"[..]));
        // Last-wins for `section`, in-order replay for `sections`.
        assert_eq!(r.section("delta"), Some(&b"three"[..]));
        assert_eq!(r.sections("delta"), vec![&b"two"[..], &b"three"[..]]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_is_detected() {
        let mut s = Snapshot::new();
        s.add_section("a", vec![7u8; 100]);
        let bytes = s.to_bytes();
        for cut in [0, 1, 10, bytes.len() / 2, bytes.len() - 1] {
            let err = SnapshotReader::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, PersistError::Corrupt { .. }), "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let mut s = Snapshot::new();
        s.add_section("a", b"hello world".to_vec());
        s.add_section("b", b"goodbye".to_vec());
        let bytes = s.to_bytes();
        for i in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[i] ^= 0x40;
            assert!(
                SnapshotReader::from_bytes(&evil).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn payload_swap_between_sections_is_detected() {
        // Two sections with equal-length payloads; swap the payload
        // bytes but keep each header intact.
        let mut s = Snapshot::new();
        s.add_section("a", b"AAAA".to_vec());
        s.add_section("b", b"BBBB".to_vec());
        let bytes = s.to_bytes();
        let a_at = bytes.windows(4).position(|w| w == b"AAAA").unwrap();
        let b_at = bytes.windows(4).position(|w| w == b"BBBB").unwrap();
        let mut evil = bytes.clone();
        for i in 0..4 {
            evil.swap(a_at + i, b_at + i);
        }
        assert!(matches!(
            SnapshotReader::from_bytes(&evil),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn dropped_section_fails_footer() {
        let mut s = Snapshot::new();
        s.add_section("a", b"xx".to_vec());
        s.add_section("b", b"yy".to_vec());
        let whole = s.to_bytes();
        let mut one = Snapshot::new();
        one.add_section("a", b"xx".to_vec());
        let _ = one;
        // Splice: magic + first section of `whole` + footer of `whole`.
        let footer_at = whole.windows(4).rposition(|w| w == b"END ").unwrap();
        let second_at = whole
            .windows(10)
            .rposition(|w| w.starts_with(b"SECTION b"))
            .unwrap();
        let mut evil = whole[..second_at].to_vec();
        evil.extend_from_slice(&whole[footer_at..]);
        assert!(matches!(
            SnapshotReader::from_bytes(&evil),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let s = Snapshot::new();
        let r = SnapshotReader::from_bytes(&s.to_bytes()).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        for garbage in [
            &b""[..],
            b"\n",
            b"QUERCSNAP v2\nEND 0 00000000\n",
            b"QUERCSNAP v1\nSECTION",
            b"QUERCSNAP v1\nSECTION a 99999999999999999999 0\nEND 0 0\n",
            b"QUERCSNAP v1\nSECTION a 4 zzzzzzzz\nxxxx\nEND 1 0\n",
            b"\xff\xfe\x00\x01",
        ] {
            assert!(SnapshotReader::from_bytes(garbage).is_err());
        }
    }

    #[test]
    fn trailing_bytes_after_footer_rejected() {
        let mut s = Snapshot::new();
        s.add_section("a", b"x".to_vec());
        let mut bytes = s.to_bytes();
        bytes.extend_from_slice(b"SECTION sneaky 1 00000000\nz\n");
        assert!(matches!(
            SnapshotReader::from_bytes(&bytes),
            Err(PersistError::Corrupt { .. })
        ));
    }
}
