//! Property tests: the SQL front end is total and deterministic.

use proptest::prelude::*;
use querc_sql::{
    fingerprint_tokens, normalize::normalize_sql, normalize::normalized_text, parse_query,
    template_fingerprint, tokenize, Dialect,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer accepts ANY string without panicking, in every dialect.
    #[test]
    fn tokenize_never_panics(s in ".{0,200}") {
        for d in Dialect::all() {
            let _ = tokenize(&s, d);
        }
    }

    /// The parser accepts any string without panicking.
    #[test]
    fn parse_never_panics(s in ".{0,200}") {
        let _ = parse_query(&s, Dialect::Generic);
    }

    /// Lexing is deterministic.
    #[test]
    fn tokenize_deterministic(s in ".{0,200}") {
        prop_assert_eq!(tokenize(&s, Dialect::Generic), tokenize(&s, Dialect::Generic));
    }

    /// Normalization is case-insensitive on keywords/identifiers.
    #[test]
    fn normalization_case_insensitive(s in "[a-zA-Z_ ]{0,80}") {
        prop_assert_eq!(
            normalized_text(&s.to_ascii_uppercase(), Dialect::Generic),
            normalized_text(&s.to_ascii_lowercase(), Dialect::Generic)
        );
    }

    /// Numeric literals always normalize to the same placeholder, so two
    /// queries differing only in numbers normalize identically.
    #[test]
    fn literal_blindness(a in 0u32..1_000_000, b in 0u32..1_000_000) {
        let qa = format!("select x from t where v = {a}");
        let qb = format!("select x from t where v = {b}");
        prop_assert_eq!(
            normalized_text(&qa, Dialect::Generic),
            normalized_text(&qb, Dialect::Generic)
        );
    }

    /// Every token's text is a substring of the input (no invention).
    #[test]
    fn tokens_come_from_input(s in "[ -~]{0,120}") {
        for t in tokenize(&s, Dialect::Generic) {
            prop_assert!(s.contains(&t.text), "token {:?} not in {:?}", t.text, s);
        }
    }

    /// Fingerprinting is total and deterministic on arbitrary input.
    #[test]
    fn fingerprint_total_and_deterministic(s in ".{0,200}") {
        for d in Dialect::all() {
            prop_assert_eq!(template_fingerprint(&s, d), template_fingerprint(&s, d));
        }
    }

    /// The fingerprint is invariant under numeric- and string-literal
    /// substitution: every instantiation of a template shares one key.
    #[test]
    fn fingerprint_literal_invariance(
        a in 0u64..1_000_000_000,
        b in 0u64..1_000_000_000,
        sa in "[a-z0-9 ]{0,12}",
        sb in "[a-z0-9 ]{0,12}",
    ) {
        let qa = format!("select col from t where n = {a} and s = '{sa}'");
        let qb = format!("select col from t where n = {b} and s = '{sb}'");
        prop_assert_eq!(
            template_fingerprint(&qa, Dialect::Generic),
            template_fingerprint(&qb, Dialect::Generic)
        );
    }

    /// …and invariant under whitespace and keyword/identifier case.
    #[test]
    fn fingerprint_layout_invariance(
        ws in prop::collection::vec("[ \t\n]{1,3}", 4..=4),
        v in 0u32..100_000,
    ) {
        let plain = format!("select a_col from big_t where x = {v}");
        let mangled = format!(
            "SELECT{}A_Col{}FROM{}Big_T where x = {v}{}",
            ws[0], ws[1], ws[2], ws[3]
        );
        prop_assert_eq!(
            template_fingerprint(&plain, Dialect::Generic),
            template_fingerprint(&mangled, Dialect::Generic)
        );
    }

    /// Structurally different queries fingerprint differently: if the
    /// normalized token streams differ, so must the hashes (this is the
    /// no-accidental-collision property over realistic identifier space).
    #[test]
    fn fingerprint_separates_structures(
        ca in "[a-z]{1,10}",
        cb in "[a-z]{1,10}",
    ) {
        let qa = format!("select {ca} from t where {cb} = 1");
        let qb = format!("select {cb} from t where {ca} = 1");
        let na = normalize_sql(&qa, Dialect::Generic);
        let nb = normalize_sql(&qb, Dialect::Generic);
        if na == nb {
            prop_assert_eq!(
                template_fingerprint(&qa, Dialect::Generic),
                template_fingerprint(&qb, Dialect::Generic)
            );
        } else {
            prop_assert_ne!(
                template_fingerprint(&qa, Dialect::Generic),
                template_fingerprint(&qb, Dialect::Generic)
            );
        }
    }

    /// The SQL-level and token-level entry points agree, so callers
    /// holding memoized normalized tokens can skip the re-lex safely.
    #[test]
    fn fingerprint_token_entry_point_agrees(s in ".{0,160}") {
        prop_assert_eq!(
            template_fingerprint(&s, Dialect::Generic),
            fingerprint_tokens(&normalize_sql(&s, Dialect::Generic))
        );
    }
}
