//! Embed-once ingress plane benchmark: all six apps sharing one
//! embedder, serving a templated trace with the template→vector cache
//! on vs. off.
//!
//! The uncached path embeds every query once *per app* (6 Doc2Vec
//! inferences per arrival); the cached path embeds each *template* once
//! at manager ingress and fans the `Arc<Vec<f32>>` out to every shard.
//! On a templated trace (the cloud-workload shape) the expected
//! end-to-end labeled-throughput win is ≥3×, and grows with both the
//! number of apps and the trace's template repetition. Before timing,
//! the harness asserts the two configurations produce **bit-identical**
//! per-app label outputs — caching is an amortization, never a semantic
//! change.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use querc::apps::summarize::SummaryConfig;
use querc::apps::{
    AuditApp, ErrorsApp, RecommendApp, ResourcesApp, RoutingApp, SummarizeApp, TrainCorpus,
};
use querc::{FittedApp, LabeledQuery, WorkloadManager, WorkloadManagerConfig};
use querc_embed::{Doc2Vec, Doc2VecConfig, Embedder, VocabConfig};
use querc_workloads::QueryRecord;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;

/// ~16 statement templates; literals vary per instantiation.
fn templated_sql(template: usize, literal: usize) -> String {
    match template % 16 {
        0 => format!("select v from kv_store where k = {literal}"),
        1 => format!("select revenue, region from finance_cube where q = {literal} group by region"),
        2 => format!("insert into lake_events select * from staging where batch = {literal}"),
        3 => format!("select count(*) from web_clicks where day = {literal}"),
        4 => format!("update user_prefs set theme = 'dark' where uid = {literal}"),
        5 => format!("select a.g, sum(b.v) from facts a join facts b on a.k = b.k where a.x > {literal} group by a.g"),
        6 => format!("delete from session_cache where expires < {literal}"),
        7 => format!("select name from customers where id = {literal}"),
        8 => format!("select avg(latency_ms) from probes where region = 'r{literal}'"),
        9 => format!("insert into audit_log values ({literal}, 'event')"),
        10 => format!("select top_k from leaderboard where season = {literal}"),
        11 => format!("select * from orders o join lineitem l on o.id = l.oid where o.total > {literal}"),
        12 => format!("select max(ts) from heartbeats where node = {literal}"),
        13 => format!("select p50, p99 from latency_rollup where service = 'svc{literal}'"),
        14 => format!("update inventory set qty = qty - 1 where sku = {literal}"),
        _ => format!("select sum(amount) from payments where merchant = {literal} group by status"),
    }
}

fn training_corpus() -> TrainCorpus {
    let records: Vec<QueryRecord> = (0..96u64)
        .map(|i| QueryRecord {
            sql: templated_sql(i as usize, i as usize),
            user: format!("acct/u{}", i % 4),
            account: "acct".into(),
            cluster: if i % 2 == 0 { "bi" } else { "etl" }.into(),
            dialect: "generic".into(),
            runtime_ms: [5.0, 300.0, 2000.0][(i % 3) as usize],
            mem_mb: 10.0,
            error_code: (i % 16 == 5).then_some(604),
            timestamp: i,
        })
        .collect();
    TrainCorpus::from_records(records, 0xe3bd)
}

/// One shared Doc2Vec across ALL apps — embedding is the dominant
/// serving cost, which is exactly the regime the ingress cache targets.
fn shared_embedder(corpus: &TrainCorpus) -> Arc<dyn Embedder> {
    Arc::new(Doc2Vec::train(
        &corpus.token_corpus(),
        Doc2VecConfig {
            dim: 32,
            epochs: 2,
            infer_epochs: 10,
            vocab: VocabConfig {
                min_count: 1,
                max_size: 20_000,
                hash_buckets: 1024,
            },
            ..Default::default()
        },
    ))
}

fn fit_apps(corpus: &TrainCorpus, embedder: &Arc<dyn Embedder>) -> Vec<Arc<FittedApp>> {
    let summary_cfg = SummaryConfig {
        k: Some(4),
        ..Default::default()
    };
    vec![
        Arc::new(FittedApp::fit(AuditApp::new(embedder.clone()).with_trees(10), corpus).unwrap()),
        Arc::new(FittedApp::fit(ErrorsApp::new(embedder.clone()), corpus).unwrap()),
        Arc::new(
            FittedApp::fit(RecommendApp::new(embedder.clone()).with_clusters(4), corpus).unwrap(),
        ),
        Arc::new(FittedApp::fit(ResourcesApp::new(embedder.clone()), corpus).unwrap()),
        Arc::new(FittedApp::fit(RoutingApp::new(embedder.clone()), corpus).unwrap()),
        Arc::new(
            FittedApp::fit(
                SummarizeApp::new(embedder.clone()).with_config(summary_cfg),
                corpus,
            )
            .unwrap(),
        ),
    ]
}

/// A templated serving trace: every template repeats with fresh literals.
fn serving_trace(n: usize) -> Vec<LabeledQuery> {
    (0..n)
        .map(|i| LabeledQuery::new(templated_sql(i, 10_000 + i)))
        .collect()
}

/// Serve the whole trace to all six apps; returns per-app outputs
/// (label vectors sorted for order-independent comparison).
fn serve(
    fitted: &[Arc<FittedApp>],
    trace: &[LabeledQuery],
    cache_capacity: usize,
) -> BTreeMap<String, Vec<Vec<(String, String)>>> {
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
        shards_per_app: 1,
        batch: 32,
        embed_cache_capacity: cache_capacity,
        ..Default::default()
    });
    for f in fitted {
        mgr.register_fitted(Arc::clone(f)).unwrap();
    }
    let apps = mgr.app_names();
    for app in &apps {
        mgr.submit_batch(app, trace.iter().cloned()).unwrap();
    }
    let drained = mgr.drain();
    drained
        .outputs
        .into_iter()
        .map(|(app, queries)| {
            let mut labels: Vec<Vec<(String, String)>> =
                queries.into_iter().map(|lq| lq.labels).collect();
            labels.sort();
            (app, labels)
        })
        .collect()
}

fn bench_embed_plane(c: &mut Criterion) {
    let corpus = training_corpus();
    let embedder = shared_embedder(&corpus);
    let fitted = fit_apps(&corpus, &embedder);
    let trace = serving_trace(192);

    // Correctness gate: cached and uncached serving must label
    // bit-identically before we time anything.
    let uncached = serve(&fitted, &trace, 0);
    let cached = serve(&fitted, &trace, 65_536);
    assert_eq!(
        uncached, cached,
        "cache on/off must produce bit-identical per-app labels"
    );

    let mut g = c.benchmark_group("embed_plane_6apps");
    g.sample_size(10);
    // 6 apps × trace = total labeling requests served per iteration.
    g.throughput(Throughput::Elements((trace.len() * fitted.len()) as u64));
    g.bench_function("uncached", |b| {
        b.iter(|| black_box(serve(&fitted, &trace, 0).len()))
    });
    g.bench_function("cached", |b| {
        b.iter(|| black_box(serve(&fitted, &trace, 65_536).len()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_embed_plane
}
criterion_main!(benches);
