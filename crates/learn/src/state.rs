//! Serializable snapshots of trained classifiers — the `Persist`
//! capability of the learn crate.
//!
//! Each labeler exposes `to_state`/`from_state` converting between its
//! private in-memory representation and a flat, derive-friendly state
//! struct; [`ClassifierState`] is the type-erased union the snapshot
//! layer stores. Restoration **validates** everything the inference
//! path would otherwise trust blindly — child indices inside the tree
//! arena, label ranges, matrix shapes — so a corrupt-but-parseable
//! state surfaces [`crate::LearnError::BadState`] instead of an index
//! panic (or an infinite traversal loop) at label time.
//!
//! Restored models are inference-ready clones of the originals: they
//! produce bit-identical predictions, but carry default *build*
//! hyperparameters (split strategy, tree depth, SGD schedule), since
//! those only matter to `fit` and snapshots exist to avoid refitting.

use crate::forest::RandomForest;
use crate::knn::Knn;
use crate::linear::SoftmaxRegression;
use crate::tree::DecisionTree;
use crate::LearnError;
use serde::{json, Deserialize, Serialize};

/// One arena node of a [`DecisionTree`], flattened for the derive shim
/// (which has no data-carrying enum support): `leaf` selects which of
/// the field groups is meaningful.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeState {
    /// Leaf node? (`counts` valid) — otherwise a split (`feature`,
    /// `threshold`, `left`, `right` valid).
    pub leaf: bool,
    /// Leaf: per-class sample counts.
    pub counts: Vec<u32>,
    /// Split: feature column compared at this node.
    pub feature: usize,
    /// Split: go left iff `x[feature] <= threshold`.
    pub threshold: f32,
    /// Split: arena index of the left child.
    pub left: usize,
    /// Split: arena index of the right child.
    pub right: usize,
}

/// Snapshot of a [`DecisionTree`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeState {
    /// Number of classes the tree was fitted with.
    pub n_classes: usize,
    /// The node arena, root first.
    pub nodes: Vec<NodeState>,
}

/// Snapshot of a [`RandomForest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestState {
    /// Number of classes the forest was fitted with.
    pub n_classes: usize,
    /// Per-tree snapshots.
    pub trees: Vec<TreeState>,
}

/// Snapshot of a [`Knn`] classifier (training set + index layout).
///
/// Serde is hand-written (not derived) so the SQ8 fields added after
/// the first release are **additive**: a pre-SQ8 snapshot simply lacks
/// them and deserializes with their defaults (`sq8 == false`, empty
/// codes), whereas the derive shim rejects any missing field.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnState {
    /// Neighborhood size.
    pub k: usize,
    /// `true` = cosine metric, `false` = squared Euclidean.
    pub cosine: bool,
    /// Number of classes.
    pub n_classes: usize,
    /// Training labels, one per stored row.
    pub y: Vec<u32>,
    /// Row dimensionality (`0` only when the training set is empty).
    pub dim: usize,
    /// Training vectors, row-major (`y.len() * dim` floats). Empty for
    /// an SQ8 backend persisted without a re-rank store (`sq8` true,
    /// `rerank == 0`): the codes then carry the whole training set.
    pub rows: Vec<f32>,
    /// `true` = a coarse IVF layer exists (`nprobe`/`centroids`/`lists`
    /// valid) — over f32 rows ([`crate::KnnBackend::Ivf`]) or over SQ8
    /// codes when `sq8` is also set. `false` = single-partition scan.
    pub ivf: bool,
    /// Coarse layer: lists probed per query.
    pub nprobe: usize,
    /// Coarse layer: centroids, row-major (`dim` floats each).
    pub centroids: Vec<f32>,
    /// Coarse layer: `lists[c]` = row ids assigned to centroid `c`.
    pub lists: Vec<Vec<u32>>,
    /// `true` = SQ8 quantized backend ([`crate::KnnBackend::Sq8`]):
    /// `qmin`/`qstep`/`codes` valid. Added after the first snapshot
    /// release; missing in old JSON ⇒ defaults to `false`.
    pub sq8: bool,
    /// SQ8: exact re-rank breadth (`0` = ADC-only, no f32 rows kept).
    pub rerank: usize,
    /// SQ8: per-dimension quantizer offsets (`dim` floats).
    pub qmin: Vec<f32>,
    /// SQ8: per-dimension quantizer steps (`dim` floats).
    pub qstep: Vec<f32>,
    /// SQ8: codes in original row order (`y.len() * dim` bytes).
    pub codes: Vec<u8>,
}

/// Deserialize `name` from `v` if present, else its default — the
/// additive-field rule [`KnnState`]'s hand-written serde relies on.
fn field_or_default<T: Deserialize + Default>(
    v: &json::Value,
    name: &str,
) -> Result<T, json::Error> {
    match v.as_object()?.iter().find(|(key, _)| key == name) {
        Some((_, f)) => T::deserialize_json(f),
        None => Ok(T::default()),
    }
}

impl Serialize for KnnState {
    fn serialize_json(&self, out: &mut String) {
        macro_rules! fields {
            ($first:ident $(, $f:ident)*) => {{
                out.push_str(concat!("\"", stringify!($first), "\":"));
                self.$first.serialize_json(out);
                $(
                    out.push_str(concat!(",\"", stringify!($f), "\":"));
                    self.$f.serialize_json(out);
                )*
            }};
        }
        out.push('{');
        fields!(
            k, cosine, n_classes, y, dim, rows, ivf, nprobe, centroids, lists, sq8, rerank, qmin,
            qstep, codes
        );
        out.push('}');
    }
}

impl Deserialize for KnnState {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        Ok(KnnState {
            // Present in every snapshot generation: required.
            k: Deserialize::deserialize_json(v.field("k")?)?,
            cosine: Deserialize::deserialize_json(v.field("cosine")?)?,
            n_classes: Deserialize::deserialize_json(v.field("n_classes")?)?,
            y: Deserialize::deserialize_json(v.field("y")?)?,
            dim: Deserialize::deserialize_json(v.field("dim")?)?,
            rows: Deserialize::deserialize_json(v.field("rows")?)?,
            ivf: Deserialize::deserialize_json(v.field("ivf")?)?,
            nprobe: Deserialize::deserialize_json(v.field("nprobe")?)?,
            centroids: Deserialize::deserialize_json(v.field("centroids")?)?,
            lists: Deserialize::deserialize_json(v.field("lists")?)?,
            // Additive (SQ8 generation): default when absent.
            sq8: field_or_default(v, "sq8")?,
            rerank: field_or_default(v, "rerank")?,
            qmin: field_or_default(v, "qmin")?,
            qstep: field_or_default(v, "qstep")?,
            codes: field_or_default(v, "codes")?,
        })
    }
}

/// Snapshot of a [`SoftmaxRegression`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxState {
    /// Weight-matrix rows (classes).
    pub rows: usize,
    /// Weight-matrix columns (`d + 1`; last column is the bias).
    pub cols: usize,
    /// Weights, row-major (`rows * cols` floats).
    pub w: Vec<f32>,
    /// SGD epochs (refit hyperparameter, round-tripped for fidelity).
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularization strength.
    pub l2: f32,
}

/// Type-erased classifier snapshot — what the persistence plane stores
/// for each fitted labeler.
///
/// Serialized as `{"kind": "...", "state": {...}}` (manual impl; the
/// derive shim has no data-carrying enums).
#[derive(Debug, Clone, PartialEq)]
pub enum ClassifierState {
    /// A [`RandomForest`].
    Forest(ForestState),
    /// A single [`DecisionTree`].
    Tree(TreeState),
    /// A [`Knn`].
    Knn(KnnState),
    /// A [`SoftmaxRegression`].
    Softmax(SoftmaxState),
}

impl ClassifierState {
    /// The `kind` tag used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            ClassifierState::Forest(_) => "forest",
            ClassifierState::Tree(_) => "tree",
            ClassifierState::Knn(_) => "knn",
            ClassifierState::Softmax(_) => "softmax",
        }
    }

    /// Rebuild a boxed [`crate::Classifier`] from this snapshot,
    /// validating every index and shape (see module docs).
    pub fn into_classifier(self) -> Result<Box<dyn crate::Classifier>, LearnError> {
        Ok(match self {
            ClassifierState::Forest(s) => Box::new(RandomForest::from_state(s)?),
            ClassifierState::Tree(s) => Box::new(DecisionTree::from_state(s)?),
            ClassifierState::Knn(s) => Box::new(Knn::from_state(s)?),
            ClassifierState::Softmax(s) => Box::new(SoftmaxRegression::from_state(s)?),
        })
    }
}

impl Serialize for ClassifierState {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"kind\":\"");
        out.push_str(self.kind());
        out.push_str("\",\"state\":");
        match self {
            ClassifierState::Forest(s) => s.serialize_json(out),
            ClassifierState::Tree(s) => s.serialize_json(out),
            ClassifierState::Knn(s) => s.serialize_json(out),
            ClassifierState::Softmax(s) => s.serialize_json(out),
        }
        out.push('}');
    }
}

impl Deserialize for ClassifierState {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        let kind = v.field("kind")?.as_str()?;
        let state = v.field("state")?;
        match kind {
            "forest" => Ok(ClassifierState::Forest(ForestState::deserialize_json(
                state,
            )?)),
            "tree" => Ok(ClassifierState::Tree(TreeState::deserialize_json(state)?)),
            "knn" => Ok(ClassifierState::Knn(KnnState::deserialize_json(state)?)),
            "softmax" => Ok(ClassifierState::Softmax(SoftmaxState::deserialize_json(
                state,
            )?)),
            other => Err(json::Error::msg(format!(
                "unknown classifier kind: {other:?}"
            ))),
        }
    }
}

/// Shared helper: reject a bad state with a formatted detail message.
pub(crate) fn bad_state(detail: impl Into<String>) -> LearnError {
    LearnError::BadState {
        detail: detail.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Classifier, ForestConfig, KnnBackend, KnnMetric, TreeConfig};
    use querc_linalg::Pcg32;

    fn blobs(seed: u64, n_per: usize) -> (Vec<Vec<f32>>, Vec<u32>) {
        let mut rng = Pcg32::new(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in [(0.0f32, 0.0f32), (4.0, 4.0), (0.0, 4.0)]
            .iter()
            .enumerate()
        {
            for _ in 0..n_per {
                x.push(vec![cx + rng.normal() * 0.6, cy + rng.normal() * 0.6]);
                y.push(c as u32);
            }
        }
        (x, y)
    }

    fn probes() -> Vec<Vec<f32>> {
        let mut rng = Pcg32::new(99);
        (0..40)
            .map(|_| vec![rng.range_f32(-1.0, 5.0), rng.range_f32(-1.0, 5.0)])
            .collect()
    }

    /// Round-trip through JSON text, the way the snapshot layer does it.
    fn json_round_trip(state: &ClassifierState) -> ClassifierState {
        let mut s = String::new();
        state.serialize_json(&mut s);
        let v = json::parse(&s).expect("state serializes to valid JSON");
        ClassifierState::deserialize_json(&v).expect("state deserializes")
    }

    #[test]
    fn forest_round_trips_bit_identically() {
        let (x, y) = blobs(1, 40);
        let mut f = RandomForest::new(ForestConfig::extra_trees(12));
        f.fit(&x, &y, 3, &mut Pcg32::new(2));
        let state = ClassifierState::Forest(f.to_state());
        let restored = json_round_trip(&state).into_classifier().unwrap();
        for p in probes() {
            assert_eq!(f.predict(&p), restored.predict(&p));
            assert_eq!(f.predict_proba(&p, 3), restored.predict_proba(&p, 3));
        }
    }

    #[test]
    fn tree_round_trips_bit_identically() {
        let (x, y) = blobs(3, 40);
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y, 3, &mut Pcg32::new(4));
        let restored = json_round_trip(&ClassifierState::Tree(t.to_state()))
            .into_classifier()
            .unwrap();
        for p in probes() {
            assert_eq!(t.predict(&p), restored.predict(&p));
        }
    }

    #[test]
    fn knn_round_trips_both_backends() {
        let (x, y) = blobs(5, 30);
        for backend in [
            KnnBackend::Exact,
            KnnBackend::Ivf {
                nlist: 3,
                nprobe: 2,
            },
            KnnBackend::Sq8 {
                nlist: 0,
                nprobe: 1,
                rerank_factor: 4,
            },
            KnnBackend::Sq8 {
                nlist: 3,
                nprobe: 2,
                rerank_factor: 0,
            },
        ] {
            let mut knn = Knn::new(3, KnnMetric::Euclidean).with_backend(backend);
            knn.fit(&x, &y, 3, &mut Pcg32::new(6));
            let restored = json_round_trip(&ClassifierState::Knn(knn.to_state()))
                .into_classifier()
                .unwrap();
            for p in probes() {
                assert_eq!(knn.predict(&p), restored.predict(&p), "{backend:?}");
            }
        }
    }

    #[test]
    fn pre_sq8_knn_json_still_deserializes() {
        // A snapshot written before the SQ8 fields existed: no `sq8`,
        // `rerank`, `qmin`, `qstep`, or `codes` keys anywhere. The
        // additive-field rule must fill their defaults instead of
        // failing on a missing field.
        let old = r#"{"kind":"knn","state":{"k":1,"cosine":false,"n_classes":2,
            "y":[0,1],"dim":2,"rows":[0.0,0.0,3.0,4.0],"ivf":false,"nprobe":0,
            "centroids":[],"lists":[]}}"#;
        let v = json::parse(old).expect("old snapshot parses");
        let state = ClassifierState::deserialize_json(&v).expect("old snapshot deserializes");
        let ClassifierState::Knn(ref k) = state else {
            panic!("expected knn state");
        };
        assert!(!k.sq8);
        assert_eq!(k.rerank, 0);
        assert!(k.qmin.is_empty() && k.qstep.is_empty() && k.codes.is_empty());
        let clf = state.into_classifier().expect("old snapshot restores");
        assert_eq!(clf.predict(&[3.1, 3.9]), 1);
        assert_eq!(clf.predict(&[0.2, -0.1]), 0);
    }

    #[test]
    fn sq8_knn_state_round_trips_codes_and_quantizer_exactly() {
        let (x, y) = blobs(11, 30);
        let mut knn = Knn::new(3, KnnMetric::Euclidean).with_backend(KnnBackend::Sq8 {
            nlist: 3,
            nprobe: 3,
            rerank_factor: 2,
        });
        knn.fit(&x, &y, 3, &mut Pcg32::new(12));
        let state = knn.to_state();
        let round = json_round_trip(&ClassifierState::Knn(state.clone()));
        let ClassifierState::Knn(restored) = round else {
            panic!("expected knn state");
        };
        // f32 JSON text is shortest-round-trip, so the quantizer params
        // and codes come back bit-for-bit.
        assert_eq!(state, restored);
        assert!(restored.sq8 && restored.ivf);
        assert_eq!(restored.codes.len(), restored.y.len() * restored.dim);
    }

    #[test]
    fn softmax_round_trips_bit_identically() {
        let (x, y) = blobs(7, 40);
        let mut m = SoftmaxRegression::default();
        m.fit(&x, &y, 3, &mut Pcg32::new(8));
        let restored = json_round_trip(&ClassifierState::Softmax(m.to_state()))
            .into_classifier()
            .unwrap();
        for p in probes() {
            assert_eq!(m.predict_proba(&p, 3), restored.predict_proba(&p, 3));
        }
    }

    #[test]
    fn export_state_via_trait_object() {
        let (x, y) = blobs(9, 20);
        let mut f = RandomForest::new(ForestConfig::extra_trees(4));
        f.fit(&x, &y, 3, &mut Pcg32::new(10));
        let boxed: Box<dyn Classifier> = Box::new(f);
        let state = boxed.export_state().expect("forests are persistable");
        assert_eq!(state.kind(), "forest");
    }

    #[test]
    fn corrupt_tree_indices_are_rejected_not_looping() {
        // A self-referential split would make `proba` loop forever.
        let evil = TreeState {
            n_classes: 2,
            nodes: vec![NodeState {
                leaf: false,
                counts: Vec::new(),
                feature: 0,
                threshold: 0.5,
                left: 0, // cycle!
                right: 0,
            }],
        };
        assert!(matches!(
            DecisionTree::from_state(evil),
            Err(LearnError::BadState { .. })
        ));
        let oob = TreeState {
            n_classes: 2,
            nodes: vec![NodeState {
                leaf: false,
                counts: Vec::new(),
                feature: 0,
                threshold: 0.5,
                left: 7, // out of the arena
                right: 8,
            }],
        };
        assert!(matches!(
            DecisionTree::from_state(oob),
            Err(LearnError::BadState { .. })
        ));
    }

    #[test]
    fn corrupt_knn_labels_and_shapes_are_rejected() {
        let base = KnnState {
            k: 1,
            cosine: false,
            n_classes: 2,
            y: vec![0, 1],
            dim: 2,
            rows: vec![0.0; 4],
            ivf: false,
            nprobe: 0,
            centroids: Vec::new(),
            lists: Vec::new(),
            sq8: false,
            rerank: 0,
            qmin: Vec::new(),
            qstep: Vec::new(),
            codes: Vec::new(),
        };
        let mut label_oob = base.clone();
        label_oob.y[1] = 9; // would index past the vote histogram
        assert!(matches!(
            Knn::from_state(label_oob),
            Err(LearnError::BadState { .. })
        ));
        let mut ragged = base.clone();
        ragged.rows.pop();
        assert!(matches!(
            Knn::from_state(ragged),
            Err(LearnError::BadState { .. })
        ));
        let mut zero_k = base;
        zero_k.k = 0;
        assert!(matches!(
            Knn::from_state(zero_k),
            Err(LearnError::InvalidK { .. })
        ));
    }

    #[test]
    fn corrupt_softmax_shape_is_rejected() {
        let evil = SoftmaxState {
            rows: 3,
            cols: 4,
            w: vec![0.0; 5], // != 12
            epochs: 1,
            lr: 0.1,
            l2: 0.0,
        };
        assert!(matches!(
            SoftmaxRegression::from_state(evil),
            Err(LearnError::BadState { .. })
        ));
    }

    #[test]
    fn unknown_kind_is_a_parse_error() {
        let v = json::parse(r#"{"kind":"magic","state":{}}"#).unwrap();
        assert!(ClassifierState::deserialize_json(&v).is_err());
    }

    #[test]
    fn empty_models_round_trip() {
        let mut f = RandomForest::new(ForestConfig::extra_trees(3));
        f.fit(&[], &[], 2, &mut Pcg32::new(1));
        let r = json_round_trip(&ClassifierState::Forest(f.to_state()))
            .into_classifier()
            .unwrap();
        assert_eq!(r.predict(&[1.0, 2.0]), 0);

        let mut knn = Knn::new(3, KnnMetric::Cosine);
        knn.fit(&[], &[], 2, &mut Pcg32::new(2));
        let r = json_round_trip(&ClassifierState::Knn(knn.to_state()))
            .into_classifier()
            .unwrap();
        assert_eq!(r.predict(&[1.0]), 0);
    }
}
