//! Offline stand-in for `proptest`, covering the subset this workspace's
//! property tests use: the `proptest!` macro, range / regex-literal /
//! collection / tuple strategies, `prop_map` / `prop_flat_map` /
//! `prop_filter`, and the `prop_assert*` family.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case reports its inputs via the assertion
//!   message only;
//! * deterministic seeding per test name (runs are reproducible, there
//!   is no failure-persistence file);
//! * string strategies accept the single pattern shape `class{m,n}`
//!   where `class` is `.` or a `[...]` character class — exactly the
//!   patterns the workspace uses.

use std::ops::{Range, RangeInclusive};

/// splitmix64-based test RNG: tiny, fast, and good enough for test-case
/// generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed from a test name so every test gets an independent,
    /// reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generates values of an associated type from a [`TestRng`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, label: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            label,
            f,
        }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    label: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Rejection sampling with a deterministic, generous budget.
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 10000 candidates", self.label);
    }
}

/// Constant strategy.
#[derive(Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy over `T`'s full domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )+};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )+};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// String strategies from `&'static str` patterns of the shape
/// `class{m,n}`, where `class` is `.` or a `[...]` character class with
/// `a-z` ranges and literal characters.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (choices, min, max) = parse_pattern(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| choices[rng.below(choices.len() as u64) as usize])
            .collect()
    }
}

fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let chars: Vec<char> = pat.chars().collect();
    let i: usize;
    let choices: Vec<char> = match chars.first() {
        Some('.') => {
            i = 1;
            // "Any char": printable ASCII plus a few multibyte probes.
            let mut c: Vec<char> = (0x20u8..=0x7e).map(|b| b as char).collect();
            c.extend(['\n', '\t', 'é', '漢', '🙂']);
            c
        }
        Some('[') => {
            let close = chars
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unterminated char class in pattern {pat:?}"));
            let class = &chars[1..close];
            i = close + 1;
            let mut c = Vec::new();
            let mut j = 0;
            while j < class.len() {
                if j + 2 < class.len() && class[j + 1] == '-' {
                    let (lo, hi) = (class[j] as u32, class[j + 2] as u32);
                    assert!(lo <= hi, "bad class range in {pat:?}");
                    c.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    c.push(class[j]);
                    j += 1;
                }
            }
            c
        }
        _ => panic!("unsupported proptest pattern {pat:?} (shim handles `class{{m,n}}`)"),
    };
    let rest: String = chars[i..].iter().collect();
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("pattern {pat:?} must end with a {{m,n}} repetition"));
    let (min, max) = match inner.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n = inner.trim().parse().unwrap();
            (n, n)
        }
    };
    assert!(min <= max, "bad repetition in {pat:?}");
    assert!(!choices.is_empty(), "empty char class in {pat:?}");
    (choices, min, max)
}

pub mod collection {
    //! `prop::collection` — sized `Vec` strategies.

    use super::{Strategy, TestRng};

    /// Element-count bounds, inclusive.
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Strategy for `Vec`s with element counts drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (`cases` = iterations per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod prelude {
    //! Everything a `use proptest::prelude::*;` test file needs.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };

    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            // `#[test]` arrives through the attribute repetition.
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                        { $body }
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("property `{}` failed on case {}: {}", stringify!($name), __case, e);
                    }
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )+
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            // Shim semantics: an unmet assumption skips the case.
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 2usize..=2) {
            prop_assert!((3..17).contains(&x));
            prop_assert_eq!(y, 2);
        }

        #[test]
        fn strings_match_class(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u32..10, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn flat_map_and_filter(
            (n, v) in (1usize..5).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0u64..100, n..=n))
            }).prop_filter("sized", |(n, v)| v.len() == *n)
        ) {
            prop_assert_eq!(v.len(), n);
        }
    }
}
