//! The central training module — "Training, Evaluation & Offline
//! Labeling" in the paper's Fig 1.
//!
//! Collects labeled queries from Qworkers (and from exported database
//! logs), trains embedders on the pooled corpus, trains labelers on
//! labeled subsets, and deploys (embedder, labeler) pairs through the
//! [`crate::registry::ModelRegistry`]. Training is an explicit batch
//! call, matching the paper's design choice that Querc is *not* a
//! continuous-learning system ("model training is assumed to occur
//! infrequently as a batch job").

use crate::classifier::{QueryClassifier, TrainedLabeler};
use crate::error::{QuercError, Result};
use crate::labeled::LabeledQuery;
use crate::registry::ModelRegistry;
use crossbeam::channel::Receiver;
use querc_embed::{BagOfTokens, Doc2Vec, Doc2VecConfig, Embedder, LstmAutoencoder, LstmConfig};
use querc_learn::{ForestConfig, RandomForest};
use querc_linalg::Pcg32;
use std::sync::Arc;

/// Which representation learner to train.
#[derive(Debug, Clone)]
pub enum EmbedderKind {
    /// Paragraph-vector embedder (the paper's primary model).
    Doc2Vec(Doc2VecConfig),
    /// LSTM-autoencoder embedder (the paper's Fig 2 alternative).
    Lstm(LstmConfig),
    /// Training-free hashed bag of tokens (ablation baseline).
    BagOfTokens {
        /// Output dimensionality of the hashed vector.
        dim: usize,
    },
}

/// Training-module configuration.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// Trees in the default random-forest labeler.
    pub forest_trees: usize,
    /// Master seed for training jobs.
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            forest_trees: 40,
            seed: 0x7a11,
        }
    }
}

/// Accumulates labeled queries and runs batch training jobs.
pub struct TrainingModule {
    log: Vec<LabeledQuery>,
    cfg: TrainingConfig,
}

impl TrainingModule {
    /// An empty training module with the given configuration.
    pub fn new(cfg: TrainingConfig) -> Self {
        TrainingModule {
            log: Vec::new(),
            cfg,
        }
    }

    /// Record one labeled query.
    pub fn ingest(&mut self, lq: LabeledQuery) {
        self.log.push(lq);
    }

    /// Drain a (closed or closing) worker channel into the log.
    pub fn ingest_stream(&mut self, rx: &Receiver<LabeledQuery>) -> usize {
        let mut n = 0;
        while let Ok(lq) = rx.try_recv() {
            self.log.push(lq);
            n += 1;
        }
        n
    }

    /// Bulk-load database log exports.
    pub fn ingest_records(&mut self, records: &[querc_workloads::QueryRecord]) {
        self.log
            .extend(records.iter().map(LabeledQuery::from_record));
    }

    /// The accumulated log.
    pub fn log(&self) -> &[LabeledQuery] {
        &self.log
    }

    /// Train an embedder on an explicit corpus of token streams.
    pub fn train_embedder_on(corpus: &[Vec<String>], kind: &EmbedderKind) -> Arc<dyn Embedder> {
        match kind {
            EmbedderKind::Doc2Vec(cfg) => Arc::new(Doc2Vec::train(corpus, cfg.clone())),
            EmbedderKind::Lstm(cfg) => Arc::new(LstmAutoencoder::train(corpus, cfg.clone())),
            EmbedderKind::BagOfTokens { dim } => Arc::new(BagOfTokens::new(*dim, true)),
        }
    }

    /// Train an embedder on the module's whole log (the pooled,
    /// cross-application corpus — the paper's central data advantage).
    pub fn train_embedder(&self, kind: &EmbedderKind) -> Arc<dyn Embedder> {
        let corpus: Vec<Vec<String>> = self.log.iter().map(LabeledQuery::tokens).collect();
        Self::train_embedder_on(&corpus, kind)
    }

    /// Train a labeler for `label` over the queries that carry it.
    /// Returns `None` when no logged query has the label.
    pub fn train_labeler(
        &self,
        embedder: &Arc<dyn Embedder>,
        label: &str,
    ) -> Option<TrainedLabeler> {
        self.try_train_labeler(embedder, label).ok()
    }

    /// Fallible variant of [`TrainingModule::train_labeler`]: reports
    /// *why* training was impossible (no query carries the label, or the
    /// labeled rows were malformed) instead of collapsing to `None`.
    ///
    /// Embeds the labeled subset through the embedder's batched path.
    pub fn try_train_labeler(
        &self,
        embedder: &Arc<dyn Embedder>,
        label: &str,
    ) -> Result<TrainedLabeler> {
        let labeled: Vec<(&LabeledQuery, &str)> = self
            .log
            .iter()
            .filter_map(|lq| lq.get(label).map(|v| (lq, v)))
            .collect();
        if labeled.is_empty() {
            return Err(QuercError::MissingLabel {
                label: label.to_string(),
            });
        }
        let docs: Vec<Vec<String>> = labeled.iter().map(|(lq, _)| lq.tokens()).collect();
        let vectors = embedder.embed_batch(&docs);
        let names: Vec<&str> = labeled.iter().map(|(_, v)| *v).collect();
        let mut rng = Pcg32::with_stream(self.cfg.seed, 0x1ab3);
        TrainedLabeler::try_train(
            RandomForest::new(ForestConfig::extra_trees(self.cfg.forest_trees)),
            &vectors,
            &names,
            &mut rng,
        )
    }

    /// Train and deploy a classifier for `label` in one step. Returns the
    /// deployed version, or `None` when no training data carries `label`.
    pub fn train_and_deploy(
        &self,
        registry: &ModelRegistry,
        embedder: &Arc<dyn Embedder>,
        label: &str,
    ) -> Option<u64> {
        self.try_train_and_deploy(registry, embedder, label).ok()
    }

    /// Fallible variant of [`TrainingModule::train_and_deploy`].
    pub fn try_train_and_deploy(
        &self,
        registry: &ModelRegistry,
        embedder: &Arc<dyn Embedder>,
        label: &str,
    ) -> Result<u64> {
        let labeler = self.try_train_labeler(embedder, label)?;
        let clf = QueryClassifier::new(label, Arc::clone(embedder), labeler);
        Ok(registry.deploy(label, clf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_embed::VocabConfig;

    fn demo_log() -> Vec<LabeledQuery> {
        (0..40)
            .map(|i| {
                let mut lq = if i % 2 == 0 {
                    LabeledQuery::new(format!("select c{} from sales_orders where k = {i}", i % 4))
                } else {
                    LabeledQuery::new(format!("insert into audit_log values ({i})"))
                };
                lq.set("team", if i % 2 == 0 { "bi" } else { "pipeline" });
                lq
            })
            .collect()
    }

    #[test]
    fn ingest_and_log() {
        let mut tm = TrainingModule::new(TrainingConfig::default());
        for lq in demo_log() {
            tm.ingest(lq);
        }
        assert_eq!(tm.log().len(), 40);
    }

    #[test]
    fn train_deploy_and_serve_roundtrip() {
        let mut tm = TrainingModule::new(TrainingConfig::default());
        for lq in demo_log() {
            tm.ingest(lq);
        }
        let embedder = tm.train_embedder(&EmbedderKind::BagOfTokens { dim: 64 });
        let registry = ModelRegistry::new();
        let v = tm.train_and_deploy(&registry, &embedder, "team").unwrap();
        assert_eq!(v, 1);
        let clf = registry.get("team").unwrap();
        assert_eq!(
            clf.label_sql("select c9 from sales_orders where k = 99"),
            "bi"
        );
        assert_eq!(
            clf.label_sql("insert into audit_log values (7)"),
            "pipeline"
        );
    }

    #[test]
    fn missing_label_yields_none() {
        let mut tm = TrainingModule::new(TrainingConfig::default());
        tm.ingest(LabeledQuery::new("select 1"));
        let embedder = tm.train_embedder(&EmbedderKind::BagOfTokens { dim: 16 });
        assert!(tm.train_labeler(&embedder, "nonexistent").is_none());
        // The fallible path names the missing label.
        let err = match tm.try_train_labeler(&embedder, "nonexistent") {
            Err(e) => e,
            Ok(_) => panic!("label should be missing"),
        };
        assert!(matches!(err, QuercError::MissingLabel { ref label } if label == "nonexistent"));
    }

    #[test]
    fn doc2vec_kind_trains_via_module() {
        let mut tm = TrainingModule::new(TrainingConfig::default());
        for lq in demo_log() {
            tm.ingest(lq);
        }
        let cfg = Doc2VecConfig {
            dim: 16,
            epochs: 5,
            vocab: VocabConfig {
                min_count: 1,
                max_size: 200,
                hash_buckets: 32,
            },
            ..Default::default()
        };
        let embedder = tm.train_embedder(&EmbedderKind::Doc2Vec(cfg));
        assert_eq!(embedder.dim(), 16);
        assert_eq!(embedder.name(), "doc2vec");
    }

    #[test]
    fn ingest_records_imports_labels() {
        let mut tm = TrainingModule::new(TrainingConfig::default());
        let records = vec![querc_workloads::QueryRecord {
            sql: "select 1".into(),
            user: "u".into(),
            account: "a".into(),
            cluster: "c".into(),
            dialect: "generic".into(),
            runtime_ms: 1.0,
            mem_mb: 1.0,
            error_code: None,
            timestamp: 0,
        }];
        tm.ingest_records(&records);
        assert_eq!(tm.log()[0].get("account"), Some("a"));
    }

    #[test]
    fn ingest_stream_drains_channel() {
        let (tx, rx) = crossbeam::channel::unbounded();
        for lq in demo_log() {
            tx.send(lq).unwrap();
        }
        drop(tx);
        let mut tm = TrainingModule::new(TrainingConfig::default());
        assert_eq!(tm.ingest_stream(&rx), 40);
    }
}
