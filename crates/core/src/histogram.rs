//! Lock-free fixed-bucket latency histograms for the serving path.
//!
//! HDR-histogram-style bucketing without the dependency: values (in
//! microseconds) land in power-of-two ranges subdivided into linear
//! sub-buckets, so relative quantile error is bounded by 1/16 (~6%)
//! across nine decades while the whole
//! table stays a flat array of atomics. Recording is a single
//! `fetch_add` — shard workers on the hot path share one histogram per
//! app with no locking — and reading is a consistent-enough sweep of
//! relaxed loads (quantiles over a live histogram are approximate by
//! nature; exact numbers come from [`LatencyHistogram::snapshot`] after
//! [`crate::service::WorkloadManager::drain`] has joined the workers).

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear region size: values below this (µs) get a bucket each. Each
/// power-of-two range above it is subdivided into `SUB_BUCKETS / 2`
/// linear sub-buckets, bounding relative error at 1/16 ≈ 6%.
const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = 5; // log2(SUB_BUCKETS)
const HALF: usize = SUB_BUCKETS / 2;
/// Power-of-two ranges tracked above the linear region; values cap at
/// 2^(SUB_BITS + RANGES) − 1 µs ≈ 17 minutes.
const RANGES: u32 = 25;
const BUCKETS: usize = SUB_BUCKETS + RANGES as usize * HALF;
const MAX_TRACKED_US: u64 = (1 << (SUB_BITS + RANGES)) - 1;

/// Bucket index of `value` (µs): values below [`SUB_BUCKETS`] map
/// linearly; larger values map to (octave, sub-bucket) pairs.
fn bucket_of(value: u64) -> usize {
    let value = value.min(MAX_TRACKED_US);
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros(); // ≥ SUB_BITS here
    let octave = msb - SUB_BITS + 1; // 1..=RANGES after the cap
    let sub = ((value >> octave) & (HALF as u64 - 1)) as usize;
    SUB_BUCKETS + (octave as usize - 1) * HALF + sub
}

/// Lower bound (µs) of bucket `i` — the value reported for quantiles
/// that land in it.
fn bucket_floor(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let past = i - SUB_BUCKETS;
    let octave = (past / HALF) as u32 + 1;
    let sub = (past % HALF) as u64;
    (1u64 << (octave + SUB_BITS - 1)) + (sub << octave)
}

/// A concurrent fixed-memory latency histogram (microsecond domain).
///
/// ```
/// use querc::histogram::LatencyHistogram;
///
/// let h = LatencyHistogram::new();
/// for us in [100, 200, 300, 400, 1000] {
///     h.record_us(us);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 5);
/// assert!(snap.p50_us >= 200 && snap.p50_us <= 320);
/// assert!(snap.max_us >= 1000);
/// ```
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Record one latency observation, in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Record one latency observation from a [`std::time::Duration`].
    pub fn record(&self, elapsed: std::time::Duration) {
        self.record_us(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Fold another histogram's counts into this one (used to carry a
    /// retired app generation's latency over a re-registration).
    pub fn absorb(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_us
            .fetch_add(other.sum_us.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_us
            .fetch_max(other.max_us.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Approximate value (µs, bucket floor) at quantile `q` ∈ [0, 1].
    /// Returns 0 for an empty histogram.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// A point-in-time summary of the distribution.
    pub fn snapshot(&self) -> LatencySnapshot {
        let count = self.count();
        LatencySnapshot {
            count,
            p50_us: self.quantile_us(0.50),
            p95_us: self.quantile_us(0.95),
            p99_us: self.quantile_us(0.99),
            max_us: self.max_us.load(Ordering::Relaxed),
            mean_us: self
                .sum_us
                .load(Ordering::Relaxed)
                .checked_div(count)
                .unwrap_or(0),
        }
    }
}

/// Summary quantiles of a [`LatencyHistogram`] (all microseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Median latency.
    pub p50_us: u64,
    /// 95th-percentile latency.
    pub p95_us: u64,
    /// 99th-percentile latency.
    pub p99_us: u64,
    /// Largest observation (exact, not bucketed).
    pub max_us: u64,
    /// Arithmetic mean (exact sum / count).
    pub mean_us: u64,
}

impl LatencySnapshot {
    /// Render as `p50=…µs p95=…µs p99=…µs max=…µs` for log lines and the
    /// load-test table.
    pub fn display(&self) -> String {
        format!(
            "p50={}µs p95={}µs p99={}µs max={}µs (n={})",
            self.p50_us, self.p95_us, self.p99_us, self.max_us, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_the_domain() {
        let mut last = 0usize;
        let mut v = 1u64;
        while v < (1 << 40) {
            let b = bucket_of(v);
            assert!(b >= last, "bucket_of must be monotone at {v}");
            assert!(b < BUCKETS, "bucket_of out of range at {v}");
            // The bucket's floor never exceeds the value it indexes.
            assert!(bucket_floor(b) <= v, "floor({b})={} > {v}", bucket_floor(b));
            last = b;
            v = v * 3 / 2 + 1;
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [10u64, 100, 1_000, 10_000, 100_000, 1_000_000, 50_000_000] {
            let floor = bucket_floor(bucket_of(v));
            assert!(floor <= v);
            assert!(
                (v - floor) as f64 <= v as f64 / 8.0 + 1.0,
                "bucket floor {floor} too far below {v}"
            );
        }
    }

    #[test]
    fn quantiles_of_a_uniform_ramp() {
        let h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert!((450..=520).contains(&snap.p50_us), "p50={}", snap.p50_us);
        assert!((850..=960).contains(&snap.p95_us), "p95={}", snap.p95_us);
        assert!((900..=1000).contains(&snap.p99_us), "p99={}", snap.p99_us);
        assert_eq!(snap.max_us, 1000);
        assert_eq!(snap.mean_us, 500);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot(), LatencySnapshot::default());
    }

    #[test]
    fn absorb_merges_counts() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for us in [10u64, 20, 30] {
            a.record_us(us);
        }
        for us in [1_000u64, 2_000] {
            b.record_us(us);
        }
        a.absorb(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count, 5);
        assert!(snap.max_us >= 2_000);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_us(t * 1000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
