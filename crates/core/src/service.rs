//! The serving façade — paper Fig 1 as an API.
//!
//! A [`WorkloadManager`] owns the versioned [`ModelRegistry`], registers
//! applications by name, and spawns `replicas` [`Qworker`] threads per
//! app over crossbeam MPMC channels. Producers call
//! [`WorkloadManager::submit`] / [`WorkloadManager::submit_batch`];
//! workers drain their stream in chunks and label through
//! [`querc_embed::Embedder::embed_batch`], so the hot path is batched
//! end to end. [`WorkloadManager::drain`] closes the streams, joins the
//! workers, and hands back every labeled query (plus the training
//! mirror) with per-app throughput counters.
//!
//! ```
//! use querc::apps::{ResourcesApp, TrainCorpus};
//! use querc::service::{WorkloadManager, WorkloadManagerConfig};
//! use querc::LabeledQuery;
//! use querc_workloads::{SnowCloud, SnowCloudConfig};
//! use std::sync::Arc;
//!
//! let wl = SnowCloud::generate(&SnowCloudConfig::pretrain(2, 30, 7));
//! let corpus = TrainCorpus::from_records(wl.records.clone(), 7);
//! let embedder: Arc<dyn querc_embed::Embedder> =
//!     Arc::new(querc_embed::BagOfTokens::new(64, true));
//!
//! let mut mgr = WorkloadManager::new(WorkloadManagerConfig::default());
//! mgr.register(ResourcesApp::new(embedder), &corpus).unwrap();
//! mgr.submit("resources", LabeledQuery::new("select 1")).unwrap();
//! let drained = mgr.drain();
//! assert_eq!(drained.outputs["resources"].len(), 1);
//! ```

use crate::apps::{AppReport, DynWorkloadApp, TrainCorpus, WorkloadApp};
use crate::error::{QuercError, Result};
use crate::labeled::LabeledQuery;
use crate::qworker::{Qworker, QworkerMode};
use crate::registry::ModelRegistry;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A type-erased application plus the model it was fitted to — the unit
/// replicated Qworkers share behind an `Arc`.
pub struct FittedApp {
    app: Box<dyn DynWorkloadApp>,
    model: Box<dyn Any + Send + Sync>,
}

impl FittedApp {
    /// Fit `app` against `corpus` and package the result for serving.
    pub fn fit<A: WorkloadApp + 'static>(app: A, corpus: &TrainCorpus) -> Result<FittedApp> {
        let model = app.fit_dyn(corpus)?;
        Ok(FittedApp {
            app: Box::new(app),
            model,
        })
    }

    /// Registration name of the underlying app.
    pub fn name(&self) -> &'static str {
        self.app.name()
    }

    /// Label a batch through the app.
    pub fn label_batch(&self, batch: &[LabeledQuery]) -> Result<Vec<crate::apps::AppOutput>> {
        self.app.label_batch_dyn(self.model.as_ref(), batch)
    }

    /// The fitted model's self-description.
    pub fn report(&self) -> Result<AppReport> {
        self.app.report_dyn(self.model.as_ref())
    }
}

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct WorkloadManagerConfig {
    /// Qworker threads per registered app.
    pub replicas: usize,
    /// Maximum queries a worker drains per chunk (embed_batch size).
    pub batch: usize,
    /// Inline (forward to database sink) or Forked (training mirror
    /// only); the manager's output collection uses the database sink, so
    /// Inline is the default.
    pub mode: QworkerMode,
    /// Registry classifier names every Qworker additionally attaches
    /// (as `predicted_<label>`), resolved at registration time.
    pub attach_labels: Vec<String>,
}

impl Default for WorkloadManagerConfig {
    fn default() -> Self {
        WorkloadManagerConfig {
            replicas: 2,
            batch: 32,
            mode: QworkerMode::Inline,
            attach_labels: Vec::new(),
        }
    }
}

/// Per-app throughput counters (live — readable while serving).
#[derive(Debug, Default)]
pub struct AppCounters {
    pub submitted: AtomicU64,
    pub processed: AtomicU64,
}

/// Snapshot of one app's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppThroughput {
    pub app: String,
    pub submitted: u64,
    pub processed: u64,
}

struct AppEntry {
    fitted: Arc<FittedApp>,
    input: Sender<LabeledQuery>,
    output_rx: Receiver<LabeledQuery>,
    trainer_rx: Receiver<LabeledQuery>,
    workers: Vec<JoinHandle<usize>>,
    counters: Arc<AppCounters>,
}

/// Everything [`WorkloadManager::drain`] returns.
#[derive(Debug)]
pub struct ServiceDrain {
    /// Fully-labeled queries per app, in completion order.
    pub outputs: BTreeMap<String, Vec<LabeledQuery>>,
    /// The training mirror: every labeled query, ready for
    /// [`crate::training::TrainingModule::ingest`].
    pub training_log: Vec<LabeledQuery>,
    /// Final per-app counters.
    pub throughput: Vec<AppThroughput>,
}

/// Labeled queries and counters recovered from a replaced app's
/// generation, merged back in at [`WorkloadManager::drain`].
#[derive(Default)]
struct Carryover {
    outputs: Vec<LabeledQuery>,
    training: Vec<LabeledQuery>,
    submitted: u64,
    processed: u64,
}

/// The batched, replicated serving façade over all registered apps.
pub struct WorkloadManager {
    registry: Arc<ModelRegistry>,
    apps: BTreeMap<String, AppEntry>,
    carryover: BTreeMap<String, Carryover>,
    cfg: WorkloadManagerConfig,
}

impl WorkloadManager {
    pub fn new(cfg: WorkloadManagerConfig) -> WorkloadManager {
        WorkloadManager {
            registry: Arc::new(ModelRegistry::new()),
            apps: BTreeMap::new(),
            carryover: BTreeMap::new(),
            cfg,
        }
    }

    /// The registry this manager deploys generic classifiers through.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Fit `app` on `corpus`, then spawn its replicated Qworkers. Returns
    /// the fitted model's report.
    ///
    /// Registering a name twice replaces the previous app: its stream is
    /// closed, its workers drain and join, and everything they already
    /// labeled (outputs, training mirror, counters) is carried over into
    /// the eventual [`WorkloadManager::drain`] — queries accepted by
    /// `submit` are never silently dropped by a redeploy.
    pub fn register<A: WorkloadApp + 'static>(
        &mut self,
        app: A,
        corpus: &TrainCorpus,
    ) -> Result<AppReport> {
        let fitted = Arc::new(FittedApp::fit(app, corpus)?);
        let name = fitted.name().to_string();
        let report = fitted.report()?;

        let classifiers = self
            .cfg
            .attach_labels
            .iter()
            .map(|label| self.registry.resolve(label))
            .collect::<Result<Vec<_>>>()?;

        // Retire the previous generation (if any) BEFORE spawning the new
        // one, preserving its in-flight work.
        if let Some(old) = self.apps.remove(&name) {
            let retired = Self::shut_down(old);
            let slot = self.carryover.entry(name.clone()).or_default();
            slot.outputs.extend(retired.outputs);
            slot.training.extend(retired.training);
            slot.submitted += retired.submitted;
            slot.processed += retired.processed;
        }

        let (in_tx, in_rx) = unbounded();
        let (out_tx, out_rx) = unbounded();
        let (tr_tx, tr_rx) = unbounded();
        let counters = Arc::new(AppCounters::default());
        let workers = (0..self.cfg.replicas.max(1))
            .map(|_| {
                let worker = Qworker::new(name.clone(), classifiers.clone(), self.cfg.mode)
                    .with_app(Arc::clone(&fitted))
                    .with_batch(self.cfg.batch)
                    .with_counter(Arc::clone(&counters));
                let rx = in_rx.clone();
                let db = out_tx.clone();
                let tr = tr_tx.clone();
                std::thread::spawn(move || worker.run(rx, db, tr))
            })
            .collect();

        self.apps.insert(
            name,
            AppEntry {
                fitted,
                input: in_tx,
                output_rx: out_rx,
                trainer_rx: tr_rx,
                workers,
                counters,
            },
        );
        Ok(report)
    }

    /// Close an entry's stream, join its workers, and collect everything
    /// they produced.
    fn shut_down(entry: AppEntry) -> Carryover {
        drop(entry.input);
        for w in entry.workers {
            let _ = w.join();
        }
        Carryover {
            outputs: entry.output_rx.iter().collect(),
            training: entry.trainer_rx.iter().collect(),
            submitted: entry.counters.submitted.load(Ordering::Relaxed),
            processed: entry.counters.processed.load(Ordering::Relaxed),
        }
    }

    fn entry(&self, app: &str) -> Result<&AppEntry> {
        self.apps.get(app).ok_or_else(|| QuercError::UnknownApp {
            app: app.to_string(),
        })
    }

    /// Names of all registered apps, sorted.
    pub fn app_names(&self) -> Vec<String> {
        self.apps.keys().cloned().collect()
    }

    /// Enqueue one query for `app`.
    pub fn submit(&self, app: &str, query: LabeledQuery) -> Result<()> {
        let entry = self.entry(app)?;
        entry
            .input
            .send(query)
            .map_err(|_| QuercError::ChannelClosed {
                context: "manager.submit",
            })?;
        entry.counters.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Enqueue a batch for `app`; returns how many were accepted.
    pub fn submit_batch(
        &self,
        app: &str,
        queries: impl IntoIterator<Item = LabeledQuery>,
    ) -> Result<usize> {
        let entry = self.entry(app)?;
        let mut n = 0usize;
        for q in queries {
            entry.input.send(q).map_err(|_| QuercError::ChannelClosed {
                context: "manager.submit_batch",
            })?;
            n += 1;
        }
        entry
            .counters
            .submitted
            .fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    /// Live per-app counters (including retired generations after a
    /// re-registration), sorted by app name.
    pub fn throughput(&self) -> Vec<AppThroughput> {
        self.apps
            .iter()
            .map(|(name, e)| {
                let (prev_sub, prev_proc) = self
                    .carryover
                    .get(name)
                    .map(|c| (c.submitted, c.processed))
                    .unwrap_or((0, 0));
                AppThroughput {
                    app: name.clone(),
                    submitted: prev_sub + e.counters.submitted.load(Ordering::Relaxed),
                    processed: prev_proc + e.counters.processed.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// One app's fitted-model report.
    pub fn report(&self, app: &str) -> Result<AppReport> {
        self.entry(app)?.fitted.report()
    }

    /// Reports for every registered app, sorted by app name.
    pub fn reports(&self) -> Result<Vec<AppReport>> {
        self.apps.values().map(|e| e.fitted.report()).collect()
    }

    /// Close every input stream, join all workers, and collect the
    /// labeled outputs, the training mirror, and final counters —
    /// including work done by generations retired via re-registration.
    pub fn drain(self) -> ServiceDrain {
        let WorkloadManager {
            apps,
            mut carryover,
            ..
        } = self;
        let mut outputs = BTreeMap::new();
        let mut training_log = Vec::new();
        let mut throughput = Vec::new();
        for (name, entry) in apps {
            let mut collected = Self::shut_down(entry);
            if let Some(prev) = carryover.remove(&name) {
                let mut merged = prev.outputs;
                merged.extend(collected.outputs);
                collected.outputs = merged;
                training_log.extend(prev.training);
                collected.submitted += prev.submitted;
                collected.processed += prev.processed;
            }
            training_log.extend(collected.training);
            outputs.insert(name.clone(), collected.outputs);
            throughput.push(AppThroughput {
                app: name,
                submitted: collected.submitted,
                processed: collected.processed,
            });
        }
        ServiceDrain {
            outputs,
            training_log,
            throughput,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{AuditApp, ResourcesApp};
    use querc_embed::{BagOfTokens, Embedder};
    use querc_workloads::QueryRecord;

    fn embedder() -> Arc<dyn Embedder> {
        Arc::new(BagOfTokens::new(64, true))
    }

    fn corpus() -> TrainCorpus {
        let records: Vec<QueryRecord> = (0..40)
            .map(|i| {
                let (user, sql, ms) = if i % 2 == 0 {
                    (
                        "acct/alice",
                        format!("select revenue from finance_reports where q = {i}"),
                        5.0,
                    )
                } else {
                    (
                        "acct/bob",
                        format!(
                            "select a.g, sum(b.v) from big_facts a join big_facts b on a.k = b.k group by a.g -- {i}"
                        ),
                        2000.0,
                    )
                };
                QueryRecord {
                    sql,
                    user: user.into(),
                    account: "acct".into(),
                    cluster: "c0".into(),
                    dialect: "generic".into(),
                    runtime_ms: ms,
                    mem_mb: 1.0,
                    error_code: None,
                    timestamp: i,
                }
            })
            .collect();
        TrainCorpus::from_records(records, 0x5eed)
    }

    #[test]
    fn register_submit_drain_roundtrip() {
        let corpus = corpus();
        let mut mgr = WorkloadManager::new(WorkloadManagerConfig::default());
        mgr.register(AuditApp::new(embedder()).with_trees(15), &corpus)
            .unwrap();
        mgr.register(ResourcesApp::new(embedder()), &corpus)
            .unwrap();
        assert_eq!(mgr.app_names(), vec!["audit", "resources"]);

        for i in 0..10 {
            mgr.submit(
                "audit",
                LabeledQuery::new(format!("select revenue from finance_reports where q = {i}")),
            )
            .unwrap();
        }
        let accepted = mgr
            .submit_batch(
                "resources",
                (0..6).map(|i| LabeledQuery::new(format!("select v from kv_store where k = {i}"))),
            )
            .unwrap();
        assert_eq!(accepted, 6);

        let drained = mgr.drain();
        assert_eq!(drained.outputs["audit"].len(), 10);
        assert_eq!(drained.outputs["resources"].len(), 6);
        for lq in &drained.outputs["audit"] {
            assert_eq!(lq.get("application"), Some("audit"));
            assert_eq!(lq.get("predicted_user"), Some("acct/alice"));
        }
        for lq in &drained.outputs["resources"] {
            assert!(lq.get("resource_class").is_some());
        }
        // Training mirror saw everything.
        assert_eq!(drained.training_log.len(), 16);
        let audit_tp = drained
            .throughput
            .iter()
            .find(|t| t.app == "audit")
            .unwrap();
        assert_eq!(audit_tp.submitted, 10);
        assert_eq!(audit_tp.processed, 10);
    }

    #[test]
    fn reregistration_preserves_inflight_work_and_counters() {
        let corpus = corpus();
        let mut mgr = WorkloadManager::new(WorkloadManagerConfig::default());
        mgr.register(ResourcesApp::new(embedder()), &corpus)
            .unwrap();
        for i in 0..8 {
            mgr.submit(
                "resources",
                LabeledQuery::new(format!("select v from kv_store where k = {i}")),
            )
            .unwrap();
        }
        // Redeploy (the periodic-retrain flow) while work is in flight.
        mgr.register(ResourcesApp::new(embedder()), &corpus)
            .unwrap();
        for i in 0..5 {
            mgr.submit(
                "resources",
                LabeledQuery::new(format!("select v from kv_store where k = {}", 100 + i)),
            )
            .unwrap();
        }
        let tp = mgr.throughput();
        assert_eq!(tp[0].submitted, 13, "counters span generations");
        let drained = mgr.drain();
        assert_eq!(
            drained.outputs["resources"].len(),
            13,
            "pre-redeploy outputs must survive"
        );
        assert_eq!(drained.training_log.len(), 13);
        let tp = &drained.throughput[0];
        assert_eq!((tp.submitted, tp.processed), (13, 13));
    }

    #[test]
    fn unknown_app_is_an_error() {
        let mgr = WorkloadManager::new(WorkloadManagerConfig::default());
        let err = mgr
            .submit("ghost", LabeledQuery::new("select 1"))
            .unwrap_err();
        assert!(matches!(err, QuercError::UnknownApp { .. }));
        assert!(mgr.report("ghost").is_err());
    }

    #[test]
    fn attach_labels_requires_deployed_classifier() {
        let corpus = corpus();
        let cfg = WorkloadManagerConfig {
            attach_labels: vec!["team".to_string()],
            ..Default::default()
        };
        let mut mgr = WorkloadManager::new(cfg);
        let err = mgr
            .register(ResourcesApp::new(embedder()), &corpus)
            .unwrap_err();
        assert!(matches!(err, QuercError::ModelNotDeployed { .. }));
    }

    #[test]
    fn attached_registry_classifier_labels_ride_along() {
        use crate::training::{EmbedderKind, TrainingConfig, TrainingModule};

        let corpus = corpus();
        let cfg = WorkloadManagerConfig {
            attach_labels: vec!["user".to_string()],
            ..Default::default()
        };
        let mut mgr = WorkloadManager::new(cfg);
        // Deploy a generic `user` classifier through the manager's registry.
        let mut tm = TrainingModule::new(TrainingConfig::default());
        tm.ingest_records(&corpus.records);
        let emb = tm.train_embedder(&EmbedderKind::BagOfTokens { dim: 64 });
        tm.try_train_and_deploy(mgr.registry(), &emb, "user")
            .unwrap();

        mgr.register(ResourcesApp::new(embedder()), &corpus)
            .unwrap();
        mgr.submit(
            "resources",
            LabeledQuery::new("select revenue from finance_reports where q = 99"),
        )
        .unwrap();
        let drained = mgr.drain();
        let lq = &drained.outputs["resources"][0];
        assert_eq!(lq.get("predicted_user"), Some("acct/alice"));
        assert!(lq.get("resource_class").is_some());
    }
}
