//! Shared configuration and helpers for the experiment binaries.
//!
//! Every binary (`fig3`, `fig4`, `table1`, `table2`) reproduces one
//! artifact of the paper's evaluation. The knobs here are sized so each
//! binary finishes in minutes on a laptop while preserving the paper's
//! *shapes* (who wins, by roughly what factor, where crossovers fall);
//! scale can be raised via the `QUERC_SCALE` environment variable.

use querc_embed::{Doc2VecConfig, Doc2VecMode, Embedder, LstmConfig, VocabConfig};
use querc_workloads::{SnowCloud, SnowCloudConfig, TpchWorkload};
use std::sync::Arc;

/// Master seed for all experiments (printed in every header).
pub const SEED: u64 = 0x2019_c1d4;

/// Scale multiplier from the environment (default 1.0).
pub fn scale() -> f64 {
    std::env::var("QUERC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// The §5.1 TPC-H workload: ~840 queries (22 templates × 38).
pub fn tpch_workload() -> TpchWorkload {
    TpchWorkload::generate(38, SEED)
}

/// Extra TPC-H instances used only for embedder training (denser corpus
/// than the evaluation workload itself).
pub fn tpch_training_corpus() -> Vec<Vec<String>> {
    let extra = TpchWorkload::generate((80.0 * scale()) as usize, SEED ^ 0x71);
    extra
        .queries
        .iter()
        .map(|q| querc_embed::sql_tokens(&q.sql))
        .collect()
}

/// The stand-in for the paper's 500k-query Snowflake pre-training corpus.
///
/// Mirrors the paper's setting: the pre-training stream and the labeled
/// evaluation workload come from the *same service*, so the evaluated
/// tenants appear (with fresh, unlabeled traffic) alongside a broad
/// multi-tenant mix. Schema vocabulary for the evaluated tenants is
/// therefore partly in-vocabulary — the signal that makes the LSTM's
/// account labeling near-perfect — while plenty of unseen-identifier mass
/// keeps the task non-trivial for OOV-dropping Doc2Vec inference.
pub fn snowcloud_pretrain_corpus() -> Vec<Vec<String>> {
    let flat = SnowCloudConfig::pretrain(24, (60.0 * scale()) as usize, SEED ^ 0x5c);
    let mut corpus = SnowCloud::generate(&flat).token_corpus();
    let tenants = SnowCloudConfig::paper_table2(0.012 * scale(), SEED ^ 0x5d);
    corpus.extend(SnowCloud::generate(&tenants).token_corpus());
    corpus
}

/// The labeled SnowCloud workload mirroring Table 2's account mix.
pub fn snowcloud_labeled(scale_override: f64) -> SnowCloud {
    let cfg = SnowCloudConfig::paper_table2(scale_override * scale(), SEED ^ 0x2b);
    SnowCloud::generate(&cfg)
}

/// Doc2Vec configuration used by the experiments.
pub fn doc2vec_config() -> Doc2VecConfig {
    Doc2VecConfig {
        dim: 48,
        window: 5,
        negative: 5,
        epochs: 12,
        initial_lr: 0.05,
        min_lr: 1e-4,
        subsample: 1e-3,
        mode: Doc2VecMode::DistributedMemory,
        // 2018-era gensim inferred unseen documents with only a handful of
        // gradient steps (its historical default); the paper's Doc2Vec
        // numbers reflect that inference regime, as does dropping OOV
        // tokens instead of hashing them into buckets.
        infer_epochs: 5,
        drop_oov: true,
        vocab: VocabConfig {
            min_count: 2,
            max_size: 20_000,
            hash_buckets: 512,
        },
        seed: SEED ^ 0xd2,
    }
}

/// LSTM autoencoder configuration used by the experiments.
pub fn lstm_config() -> LstmConfig {
    LstmConfig {
        embed_dim: 40,
        hidden: 64,
        max_len: 72,
        negative: 5,
        epochs: 6,
        lr: 0.01,
        clip: 5.0,
        vocab: VocabConfig {
            min_count: 2,
            max_size: 20_000,
            hash_buckets: 512,
        },
        seed: SEED ^ 0x15,
    }
}

/// Train the experiment's four embedders: (doc2vecTPCH, lstmTPCH,
/// doc2vecSnowflake, lstmSnowflake), in that order.
pub fn train_fig3_embedders() -> Vec<(String, Arc<dyn Embedder>)> {
    let tpch = tpch_training_corpus();
    let snow = snowcloud_pretrain_corpus();
    eprintln!(
        "  training corpora: tpch={} queries, snowcloud={} queries",
        tpch.len(),
        snow.len()
    );
    let mut out: Vec<(String, Arc<dyn Embedder>)> = Vec::new();
    eprintln!("  training doc2vecTPCH…");
    out.push((
        "doc2vecTPCH".into(),
        Arc::new(querc_embed::Doc2Vec::train(&tpch, doc2vec_config())),
    ));
    eprintln!("  training lstmTPCH…");
    out.push((
        "lstmTPCH".into(),
        Arc::new(querc_embed::LstmAutoencoder::train(&tpch, lstm_config())),
    ));
    eprintln!("  training doc2vecSnowflake…");
    out.push((
        "doc2vecSnowflake".into(),
        Arc::new(querc_embed::Doc2Vec::train(&snow, doc2vec_config())),
    ));
    eprintln!("  training lstmSnowflake…");
    out.push((
        "lstmSnowflake".into(),
        Arc::new(querc_embed::LstmAutoencoder::train(&snow, lstm_config())),
    ));
    out
}

/// Print a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// A PASS/FAIL shape check with a message; returns whether it passed.
pub fn check(name: &str, ok: bool, detail: String) -> bool {
    println!("  [{}] {name}: {detail}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// Exit non-zero when any shape check failed, so CI catches regressions
/// in the reproduced figures.
pub fn finish(all_ok: bool) -> ! {
    if all_ok {
        println!("\nall shape checks passed");
        std::process::exit(0)
    } else {
        println!("\nSOME SHAPE CHECKS FAILED");
        std::process::exit(1)
    }
}
