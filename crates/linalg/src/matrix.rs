//! Row-major dense `f32` matrices.
//!
//! The models in this workspace are small (embedding tables up to a few MB,
//! LSTM weights of a few hundred KB), but their fit loops are hot, so the
//! GEMV/GEMM entry points route through the [`crate::kernel`] compute plane:
//! runtime-dispatched scalar/AVX2 dot and axpy arms that are bit-identical
//! to the `crate::ops` reference loops, and a k-blocked GEMM that keeps the
//! canonical (i, k, j) accumulation order (the innermost loop stays a
//! contiguous axpy). Whatever `QUERC_SIMD` / the kernel override selects,
//! every method here returns bit-identical results.

use crate::rng::Pcg32;

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from a row-major data vector. Panics if sizes disagree.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from nested rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Uniform random entries in `[lo, hi)`.
    pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut Pcg32) -> Self {
        let data = (0..rows * cols).map(|_| rng.range_f32(lo, hi)).collect();
        Matrix { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// (rows, cols).
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the backing row-major slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the backing row-major slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` out into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// `y = self * x` (GEMV), on the active compute kernel.
    /// `x.len()` must equal `cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// `y = self * x` into a caller-provided buffer — the allocation-free
    /// GEMV the batched serving path leans on. `y.len()` must equal `rows`.
    pub fn matvec_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "gemv shape mismatch");
        assert_eq!(y.len(), self.rows, "gemv output shape mismatch");
        let kern = crate::kernel::active_kernel();
        for (r, out) in y.iter_mut().enumerate() {
            *out = crate::kernel::dot_with(kern, self.row(r), x);
        }
    }

    /// `y = selfᵀ * x` (GEMV with the transpose, without materializing it),
    /// on the active compute kernel. Zero `x[r]` rows are skipped, so
    /// sparse one-hot activations stay cheap.
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "gemv-t shape mismatch");
        let mut y = vec![0.0; self.cols];
        let kern = crate::kernel::active_kernel();
        for (r, &xr) in x.iter().enumerate() {
            if xr != 0.0 {
                crate::kernel::axpy_with(kern, xr, self.row(r), &mut y);
            }
        }
        y
    }

    /// Dense `self * other` (GEMM) through the compute plane's k-blocked
    /// kernel — bit-identical to the historical (i, k, j) axpy loop on
    /// every arm and block size.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "gemm shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::kernel::gemm(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
        out
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Elementwise in-place `self += alpha * other`, on the active
    /// compute kernel.
    pub fn add_scaled(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        crate::kernel::axpy(alpha, &other.data, &mut self.data);
    }

    /// In-place scalar multiply.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Set every entry to zero (for gradient buffers).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trip() {
        let mut m = Matrix::zeros(3, 4);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.row(1)[2], 5.0);
        assert_eq!(m.col(2)[1], 5.0);
    }

    #[test]
    fn identity_matvec_is_noop() {
        let m = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn matvec_known_values() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn matvec_t_agrees_with_materialized_transpose() {
        let mut rng = Pcg32::new(1);
        let m = Matrix::uniform(5, 7, -1.0, 1.0, &mut rng);
        let x: Vec<f32> = (0..5).map(|i| i as f32 - 2.0).collect();
        let fast = m.matvec_t(&x);
        let slow = m.transpose().matvec(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = Pcg32::new(2);
        let a = Matrix::uniform(4, 4, -1.0, 1.0, &mut rng);
        let i = Matrix::identity(4);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Pcg32::new(3);
        let a = Matrix::uniform(3, 6, -1.0, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.add_scaled(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0; 4]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[4.0; 4]);
    }

    #[test]
    #[should_panic(expected = "gemv shape mismatch")]
    fn matvec_shape_checked() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    fn frobenius_norm() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((m.frobenius() - 5.0).abs() < 1e-6);
    }
}
