//! The `Embedder` abstraction — Querc's replacement for feature engineering.
//!
//! A classifier in Querc is a pre-trained *(embedder, labeler)* pair; the
//! embedder half is anything that maps a normalized token sequence to a
//! fixed-dimension vector. Embedders are immutable once trained (training
//! happens in the offline training module), so `embed` takes `&self` and
//! implementations must be deterministic for a given input — Qworkers
//! replicate them freely across threads.
//!
//! ```
//! use querc_embed::{BagOfTokens, Embedder};
//!
//! let embedder = BagOfTokens::new(64, true);
//! // Normalization collapses literals, so these embed identically.
//! let a = embedder.embed_sql("select * from t where x = 1");
//! let b = embedder.embed_sql("SELECT * FROM t WHERE x = 99");
//! assert_eq!(a, b);
//! assert_eq!(a.len(), embedder.dim());
//!
//! // The batched path is an amortization, never a semantic change.
//! let docs = vec![querc_embed::sql_tokens("select * from t where x = 1")];
//! assert_eq!(embedder.embed_batch(&docs)[0], a);
//! ```

/// Maps token sequences to fixed-size dense vectors.
pub trait Embedder: Send + Sync {
    /// Output dimensionality; every returned vector has exactly this length.
    fn dim(&self) -> usize;

    /// Embed one tokenized (normalized) query.
    ///
    /// Must be deterministic: equal token sequences produce equal vectors.
    fn embed(&self, tokens: &[String]) -> Vec<f32>;

    /// Short identifier used in logs and experiment tables
    /// (e.g. `"doc2vec"`, `"lstm"`).
    fn name(&self) -> &'static str;

    /// Convenience: normalize SQL text and embed it.
    fn embed_sql(&self, sql: &str) -> Vec<f32> {
        self.embed(&crate::sql_tokens(sql))
    }

    /// Embed a batch of tokenized queries — the serving hot path.
    ///
    /// Must return exactly `docs.len()` vectors, and each vector must be
    /// **identical** to what [`Embedder::embed`] would return for the same
    /// document: batching is an amortization, never a semantic change.
    /// The default delegates query-at-a-time; `bow`, `doc2vec`, and
    /// `lstm` override it to hoist per-call setup (noise tables, scratch
    /// buffers) out of the loop.
    fn embed_batch(&self, docs: &[Vec<String>]) -> Vec<Vec<f32>> {
        docs.iter().map(|d| self.embed(d)).collect()
    }
}

/// Embed a whole corpus row-by-row into a feature matrix
/// (`corpus.len()` × `embedder.dim()`), as consumed by `querc-learn`
/// classifiers and `querc-cluster`.
pub fn embed_corpus<E: Embedder + ?Sized>(embedder: &E, corpus: &[Vec<String>]) -> Vec<Vec<f32>> {
    embedder.embed_batch(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial embedder for exercising the trait's defaults.
    struct LengthEmbedder;

    impl Embedder for LengthEmbedder {
        fn dim(&self) -> usize {
            2
        }
        fn embed(&self, tokens: &[String]) -> Vec<f32> {
            vec![
                tokens.len() as f32,
                tokens.iter().map(|t| t.len()).sum::<usize>() as f32,
            ]
        }
        fn name(&self) -> &'static str {
            "length"
        }
    }

    #[test]
    fn embed_sql_normalizes_first() {
        let e = LengthEmbedder;
        // Literal values are placeholders after normalization, so these two
        // must embed identically.
        let a = e.embed_sql("SELECT * FROM t WHERE x = 12345");
        let b = e.embed_sql("select * from t where x = 9");
        assert_eq!(a, b);
    }

    #[test]
    fn default_embed_batch_matches_embed() {
        let e = LengthEmbedder;
        let docs = vec![
            vec!["select".to_string(), "x".to_string()],
            vec![],
            vec!["a".to_string(), "bb".to_string(), "ccc".to_string()],
        ];
        let batch = e.embed_batch(&docs);
        assert_eq!(batch.len(), docs.len());
        for (doc, v) in docs.iter().zip(&batch) {
            assert_eq!(*v, e.embed(doc));
        }
    }

    #[test]
    fn embed_corpus_shape() {
        let e = LengthEmbedder;
        let corpus = vec![
            vec!["a".to_string()],
            vec!["b".to_string(), "cc".to_string()],
        ];
        let m = embed_corpus(&e, &corpus);
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|r| r.len() == e.dim()));
        assert_eq!(m[1], vec![2.0, 3.0]);
    }
}
