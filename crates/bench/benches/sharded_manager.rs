//! Sharded-manager serving throughput: 1 shard vs 4 shards.
//!
//! Replays a deterministic SnowCloud trace (unpaced — we measure the
//! serving ceiling, not the arrival process) through a `WorkloadManager`
//! at different `shards_per_app`, pinning the speedup of sharding the
//! per-app stream across worker threads over the single-lane PR 1
//! layout. Queries are hash-routed by account, so the comparison also
//! carries the ordering guarantee (asserted by
//! `per_tenant_order_is_preserved_across_shards` in `querc::service`
//! and the pipeline_manager integration tests — benches only measure).
//!
//! Expect ≥2× aggregate queries/sec at 4 shards on ≥4 hardware threads;
//! on a single-core host (as in some CI containers) the configurations
//! tie, since labeling is CPU-bound and there is nothing to overlap.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use querc::apps::{ResourcesApp, TrainCorpus};
use querc::{FittedApp, LabeledQuery, WorkloadManager, WorkloadManagerConfig};
use querc_embed::{BagOfTokens, Embedder};
use querc_workloads::{ReplayConfig, ReplaySchedule, SnowCloud, SnowCloudConfig};
use std::hint::black_box;
use std::sync::Arc;

const SUBMIT_CHUNK: usize = 64;

fn embedder() -> Arc<dyn Embedder> {
    Arc::new(BagOfTokens::new(128, true))
}

/// Serve the whole schedule through a pre-fitted app, drain, and return
/// how many queries were processed. Fitting happens once outside the
/// timed loop (`register_fitted`), so the measured path is shard spawn +
/// submit + label + drain — the part sharding actually changes.
fn serve_stream(schedule: &ReplaySchedule, fitted: &Arc<FittedApp>, shards_per_app: usize) -> u64 {
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
        shards_per_app,
        batch: SUBMIT_CHUNK,
        queue_depth: 4096,
        ..Default::default()
    });
    mgr.register_fitted(Arc::clone(fitted)).unwrap();
    let mut buf: Vec<LabeledQuery> = Vec::with_capacity(SUBMIT_CHUNK);
    schedule.replay_unpaced(|record| {
        buf.push(LabeledQuery::from_record(record));
        if buf.len() == SUBMIT_CHUNK {
            mgr.submit_batch("resources", buf.drain(..)).unwrap();
        }
    });
    if !buf.is_empty() {
        mgr.submit_batch("resources", buf.drain(..)).unwrap();
    }
    let drained = mgr.drain();
    drained.throughput[0].processed
}

fn bench_sharded_manager(c: &mut Criterion) {
    // A multi-tenant trace: 12 accounts so 4 shards all get traffic.
    let workload = SnowCloud::generate(&SnowCloudConfig::pretrain(12, 180, 0x51a2));
    let corpus = TrainCorpus::from_records(workload.records[..200].to_vec(), 0x51a2);
    let fitted = Arc::new(FittedApp::fit(ResourcesApp::new(embedder()), &corpus).unwrap());
    let schedule = ReplaySchedule::from_records(
        &workload.records,
        &ReplayConfig {
            qps: 1.0, // offsets ignored: replay_unpaced measures the ceiling
            ..Default::default()
        },
    );

    let mut g = c.benchmark_group("sharded_manager");
    g.sample_size(10);
    g.throughput(Throughput::Elements(schedule.len() as u64));
    for shards in [1usize, 4] {
        g.bench_function(format!("shards_{shards}"), |b| {
            b.iter(|| black_box(serve_stream(&schedule, &fitted, shards)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sharded_manager
}
criterion_main!(benches);
