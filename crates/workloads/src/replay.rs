//! Trace replay — turning a query corpus into a timed load.
//!
//! A [`ReplaySchedule`] rewrites a corpus's log timestamps into wall-
//! clock offsets at a configurable aggregate QPS with tunable
//! burstiness, preserving the corpus order (and therefore every
//! tenant's relative order). [`ReplaySchedule::replay`] then drives a
//! sink **open-loop**: each query fires at its scheduled offset
//! regardless of how long the sink takes, which is how real load
//! arrives — a slow server doesn't slow the clients down, it builds a
//! queue. When the sink falls behind, events fire back-to-back and the
//! accumulated schedule slip is reported as [`ReplayStats::max_lag`].
//!
//! The schedule is deterministic in [`ReplayConfig::seed`], so a replay
//! is exactly repeatable — the property load tests need to be
//! comparable across configurations (1 shard vs 4 shards, etc.).
//!
//! ```
//! use querc_workloads::{ReplayConfig, ReplaySchedule, SnowCloud, SnowCloudConfig};
//!
//! let wl = SnowCloud::generate(&SnowCloudConfig::pretrain(3, 40, 7));
//! let cfg = ReplayConfig {
//!     qps: 500.0,
//!     ..Default::default()
//! };
//! let schedule = ReplaySchedule::from_records(&wl.records, &cfg);
//! assert_eq!(schedule.len(), 120);
//! // 120 queries at 500 q/s ≈ 0.24 s of simulated arrivals.
//! assert!(schedule.duration().as_secs_f64() < 0.5);
//! ```

use crate::record::QueryRecord;
use querc_linalg::Pcg32;
use std::time::{Duration, Instant};

/// Heavy-tailed tenant popularity for a replay: each scheduled query is
/// reassigned to one of `tenants` synthetic tenants drawn from a Zipf
/// distribution with the given exponent — rank 0 (`tenant000000`, the
/// **whale**) dominates while the long tail of **minnows** trickles.
/// This is the multi-tenant traffic shape the QoS scheduler is built
/// for; cloud query logs are famously Zipf-like in per-tenant volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantMix {
    /// Number of synthetic tenants (≥ 1); names are `tenant{rank:06}`
    /// in popularity order (rank 0 is hottest).
    pub tenants: usize,
    /// Zipf exponent `s` — tenant rank `i` gets weight `1/(i+1)^s`.
    /// `0.0` is uniform; `1.0` is the classic heavy tail; higher values
    /// concentrate even harder on the whale.
    pub exponent: f64,
}

/// Knobs for rewriting a corpus into a timed arrival process.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Target aggregate arrival rate, queries per second.
    pub qps: f64,
    /// Arrival-process shape in `[0, 1]`: `0.0` is a perfectly paced
    /// stream (constant gaps), `1.0` is a Poisson process (exponential
    /// gaps — bursts and lulls). Values between blend the two.
    pub burstiness: f64,
    /// Seed for the gap sampler; equal seeds give equal schedules.
    pub seed: u64,
    /// Replay at most this many queries (`None` = the whole corpus).
    pub limit: Option<usize>,
    /// Overwrite each record's tenant (`account`/`user`) with a draw
    /// from a Zipf popularity distribution — the whales-and-minnows
    /// traffic shape for tenant-isolation testing. `None` keeps the
    /// corpus's original tenants. The tenant sampler runs on its own
    /// deterministic RNG stream, so enabling a mix does **not** perturb
    /// the arrival-gap schedule: offsets are identical with and without
    /// it for the same seed.
    pub tenant_mix: Option<TenantMix>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            qps: 1000.0,
            burstiness: 0.5,
            seed: 0x4e9a,
            limit: None,
            tenant_mix: None,
        }
    }
}

/// One scheduled arrival: a record and its offset from replay start.
#[derive(Debug, Clone)]
pub struct ReplayEvent {
    /// When this query arrives, relative to the start of the replay.
    pub offset: Duration,
    /// The query (with its original log labels) to submit.
    pub record: QueryRecord,
}

/// Outcome of one [`ReplaySchedule::replay`] run.
#[derive(Debug, Clone, Default)]
pub struct ReplayStats {
    /// Queries handed to the sink.
    pub dispatched: usize,
    /// Wall-clock time the replay took.
    pub elapsed: Duration,
    /// Worst schedule slip observed: how far behind its planned offset
    /// the most delayed dispatch was. Near zero means the sink kept up;
    /// growing lag means the sink (or its backpressure) is the
    /// bottleneck, not the arrival process.
    pub max_lag: Duration,
}

/// Inverse-CDF Zipf sampler over tenant ranks: weight `1/(i+1)^s`,
/// normalized partial sums, binary search per draw. Deterministic in
/// the RNG handed to [`ZipfSampler::sample`].
struct ZipfSampler {
    /// Cumulative distribution over ranks, ending at 1.0.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(mix: TenantMix) -> ZipfSampler {
        let n = mix.tenants.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(mix.exponent);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draw a rank in `0..tenants` (0 = most popular).
    fn sample(&self, rng: &mut Pcg32) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|c| *c < u).min(self.cdf.len() - 1)
    }
}

/// A corpus rewritten into a deterministic timed arrival sequence.
#[derive(Debug, Clone)]
pub struct ReplaySchedule {
    events: Vec<ReplayEvent>,
}

impl ReplaySchedule {
    /// Build a schedule over `records` (in corpus order — per-tenant
    /// relative order is preserved) with gaps drawn per `cfg`.
    pub fn from_records(records: &[QueryRecord], cfg: &ReplayConfig) -> ReplaySchedule {
        let n = cfg.limit.unwrap_or(records.len()).min(records.len());
        let mean_gap = 1.0 / cfg.qps.max(1e-6);
        let burst = cfg.burstiness.clamp(0.0, 1.0);
        let mut rng = Pcg32::with_stream(cfg.seed, 0x4e9b);
        // The tenant sampler gets its own stream off the same seed:
        // adding/removing a tenant mix never shifts the gap schedule.
        let mut tenant_sampler = cfg
            .tenant_mix
            .map(|mix| (ZipfSampler::new(mix), Pcg32::with_stream(cfg.seed, 0x4e9c)));
        let mut at = 0.0f64;
        let events = records[..n]
            .iter()
            .map(|r| {
                // Blend a constant gap with an Exp(1)-distributed one;
                // both have unit mean, so the aggregate rate stays at
                // `qps` for every burstiness setting.
                let u: f64 = (1.0 - rng.f64()).max(1e-12);
                let exp_gap = -u.ln();
                let gap = mean_gap * ((1.0 - burst) + burst * exp_gap);
                let mut record = r.clone();
                if let Some((zipf, trng)) = &mut tenant_sampler {
                    let rank = zipf.sample(trng);
                    record.account = format!("tenant{rank:06}");
                    record.user = format!("tenant{rank:06}/u0");
                }
                let event = ReplayEvent {
                    offset: Duration::from_secs_f64(at),
                    record,
                };
                at += gap;
                event
            })
            .collect();
        ReplaySchedule { events }
    }

    /// Scheduled arrivals, in dispatch order.
    pub fn events(&self) -> &[ReplayEvent] {
        &self.events
    }

    /// Number of scheduled queries.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Offset of the last arrival (zero for an empty schedule).
    pub fn duration(&self) -> Duration {
        self.events.last().map(|e| e.offset).unwrap_or_default()
    }

    /// Number of distinct query *templates* in the schedule — fingerprints
    /// over literal-stripped, case-folded token streams
    /// (`querc_sql::template_fingerprint`). Cloud traces are overwhelmingly
    /// templated, and this is the load harness's cache-planning number: an
    /// ingress vector cache sized at or above this count converges to a
    /// hit rate of `1 − distinct_templates() / len()` on the replay.
    pub fn distinct_templates(&self) -> usize {
        self.events
            .iter()
            .map(|e| querc_sql::template_fingerprint(&e.record.sql, querc_sql::Dialect::Generic))
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    /// Number of distinct *tenants* (by `account`) in the schedule — the
    /// tenant-cardinality companion to
    /// [`ReplaySchedule::distinct_templates`], and the QoS-planning
    /// number: per-tenant scheduler memory and fair-share math both
    /// scale with the tenants actually present, not with
    /// [`TenantMix::tenants`] (a heavy-tailed draw routinely leaves cold
    /// ranks unsampled).
    pub fn distinct_tenants(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.record.account.as_str())
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    /// Drive `sink` open-loop: sleep until each event's offset, then
    /// dispatch. A sink that falls behind is fed back-to-back (the
    /// schedule never waits for it) and the slip shows up in
    /// [`ReplayStats::max_lag`].
    pub fn replay(&self, mut sink: impl FnMut(&QueryRecord)) -> ReplayStats {
        let start = Instant::now();
        let mut stats = ReplayStats::default();
        for event in &self.events {
            let now = start.elapsed();
            if now < event.offset {
                std::thread::sleep(event.offset - now);
            } else {
                stats.max_lag = stats.max_lag.max(now - event.offset);
            }
            sink(&event.record);
            stats.dispatched += 1;
        }
        stats.elapsed = start.elapsed();
        stats
    }

    /// Dispatch every event to `sink` as fast as it will accept them,
    /// ignoring offsets — the throughput-measurement mode benches use to
    /// find the serving ceiling rather than the arrival rate.
    pub fn replay_unpaced(&self, mut sink: impl FnMut(&QueryRecord)) -> ReplayStats {
        let start = Instant::now();
        for event in &self.events {
            sink(&event.record);
        }
        ReplayStats {
            dispatched: self.events.len(),
            elapsed: start.elapsed(),
            max_lag: Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: usize) -> Vec<QueryRecord> {
        (0..n)
            .map(|i| QueryRecord {
                sql: format!("select {i} from t"),
                user: format!("acct{}/u0", i % 3),
                account: format!("acct{}", i % 3),
                cluster: "c0".into(),
                dialect: "generic".into(),
                runtime_ms: 1.0,
                mem_mb: 1.0,
                error_code: None,
                timestamp: i as u64,
            })
            .collect()
    }

    #[test]
    fn schedule_preserves_corpus_order_and_monotone_offsets() {
        let schedule = ReplaySchedule::from_records(&records(100), &ReplayConfig::default());
        assert_eq!(schedule.len(), 100);
        for (i, e) in schedule.events().iter().enumerate() {
            assert_eq!(e.record.sql, format!("select {i} from t"));
        }
        for w in schedule.events().windows(2) {
            assert!(w[0].offset <= w[1].offset, "offsets must be monotone");
        }
    }

    #[test]
    fn zero_burstiness_is_perfectly_paced() {
        let cfg = ReplayConfig {
            qps: 100.0,
            burstiness: 0.0,
            ..Default::default()
        };
        let schedule = ReplaySchedule::from_records(&records(11), &cfg);
        let gaps: Vec<f64> = schedule
            .events()
            .windows(2)
            .map(|w| (w[1].offset - w[0].offset).as_secs_f64())
            .collect();
        for gap in gaps {
            assert!((gap - 0.01).abs() < 1e-9, "constant 10ms gaps, got {gap}");
        }
    }

    #[test]
    fn mean_rate_tracks_qps_for_any_burstiness() {
        for burstiness in [0.0, 0.5, 1.0] {
            let cfg = ReplayConfig {
                qps: 1000.0,
                burstiness,
                seed: 42,
                ..Default::default()
            };
            let schedule = ReplaySchedule::from_records(&records(2000), &cfg);
            let secs = schedule.duration().as_secs_f64();
            // 2000 arrivals at 1000 q/s ≈ 2s; exponential noise averages out.
            assert!(
                (1.6..=2.4).contains(&secs),
                "burstiness {burstiness}: schedule span {secs}s"
            );
        }
    }

    #[test]
    fn bursty_schedules_have_spread_gaps() {
        let cfg = ReplayConfig {
            qps: 1000.0,
            burstiness: 1.0,
            ..Default::default()
        };
        let schedule = ReplaySchedule::from_records(&records(500), &cfg);
        let gaps: Vec<f64> = schedule
            .events()
            .windows(2)
            .map(|w| (w[1].offset - w[0].offset).as_secs_f64())
            .collect();
        let short = gaps.iter().filter(|g| **g < 0.0005).count();
        let long = gaps.iter().filter(|g| **g > 0.002).count();
        assert!(short > 50, "Poisson arrivals bunch up: {short} short gaps");
        assert!(long > 20, "and leave lulls: {long} long gaps");
    }

    #[test]
    fn deterministic_under_seed_and_limit_respected() {
        let cfg = ReplayConfig {
            limit: Some(7),
            ..Default::default()
        };
        let a = ReplaySchedule::from_records(&records(50), &cfg);
        let b = ReplaySchedule::from_records(&records(50), &cfg);
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 7);
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.offset, y.offset);
            assert_eq!(x.record, y.record);
        }
    }

    #[test]
    fn distinct_templates_collapses_literal_variants() {
        // `records(n)` varies only the selected literal → one template.
        let schedule = ReplaySchedule::from_records(&records(50), &ReplayConfig::default());
        assert_eq!(schedule.distinct_templates(), 1);
        // Mixing in a structurally different shape adds exactly one.
        let mut recs = records(20);
        let mut other = recs[0].clone();
        other.sql = "insert into logs values (1, 'x')".into();
        recs.push(other);
        let schedule = ReplaySchedule::from_records(&recs, &ReplayConfig::default());
        assert_eq!(schedule.distinct_templates(), 2);
        assert_eq!(
            ReplaySchedule::from_records(&[], &ReplayConfig::default()).distinct_templates(),
            0
        );
    }

    #[test]
    fn tenant_mix_is_deterministic_per_seed() {
        let cfg = |seed| ReplayConfig {
            seed,
            tenant_mix: Some(TenantMix {
                tenants: 50,
                exponent: 1.1,
            }),
            ..Default::default()
        };
        let a = ReplaySchedule::from_records(&records(400), &cfg(7));
        let b = ReplaySchedule::from_records(&records(400), &cfg(7));
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.record.account, y.record.account, "same seed, same draw");
            assert_eq!(x.offset, y.offset);
        }
        // A different seed draws a different tenant sequence.
        let c = ReplaySchedule::from_records(&records(400), &cfg(8));
        assert!(
            a.events()
                .iter()
                .zip(c.events())
                .any(|(x, y)| x.record.account != y.record.account),
            "different seeds should diverge somewhere in 400 draws"
        );
    }

    #[test]
    fn tenant_mix_does_not_perturb_the_gap_schedule() {
        let base = ReplayConfig::default();
        let mixed = ReplayConfig {
            tenant_mix: Some(TenantMix {
                tenants: 20,
                exponent: 1.0,
            }),
            ..Default::default()
        };
        let plain = ReplaySchedule::from_records(&records(200), &base);
        let zipf = ReplaySchedule::from_records(&records(200), &mixed);
        for (p, z) in plain.events().iter().zip(zipf.events()) {
            assert_eq!(
                p.offset, z.offset,
                "tenant sampling must ride a separate RNG stream"
            );
            assert_eq!(p.record.sql, z.record.sql, "only tenancy is rewritten");
        }
    }

    #[test]
    fn tenant_mix_is_heavy_tailed_with_rank_zero_whale() {
        let cfg = ReplayConfig {
            tenant_mix: Some(TenantMix {
                tenants: 40,
                exponent: 1.2,
            }),
            ..Default::default()
        };
        let schedule = ReplaySchedule::from_records(&records(2000), &cfg);
        let mut counts = std::collections::HashMap::new();
        for e in schedule.events() {
            *counts.entry(e.record.account.clone()).or_insert(0usize) += 1;
            assert!(e.record.account.starts_with("tenant"));
            assert_eq!(e.record.user, format!("{}/u0", e.record.account));
        }
        let whale = counts.get("tenant000000").copied().unwrap_or(0);
        let max = counts.values().copied().max().unwrap();
        assert_eq!(whale, max, "rank 0 is the most popular tenant");
        assert!(
            whale > 2000 / 40 * 4,
            "whale far exceeds the uniform share: {whale}"
        );
        // Cardinality surfaces next to distinct_templates().
        assert!(schedule.distinct_tenants() > 10);
        assert!(schedule.distinct_tenants() <= 40);
        assert_eq!(schedule.distinct_templates(), 1);
        // Without a mix, the corpus's own 3 accounts survive.
        let plain = ReplaySchedule::from_records(&records(100), &ReplayConfig::default());
        assert_eq!(plain.distinct_tenants(), 3);
    }

    #[test]
    fn empty_corpus_yields_empty_schedule() {
        let schedule = ReplaySchedule::from_records(&[], &ReplayConfig::default());
        assert!(schedule.is_empty());
        assert_eq!(schedule.duration(), Duration::ZERO);
        let stats = schedule.replay(|_| panic!("no events to dispatch"));
        assert_eq!(stats.dispatched, 0);
    }

    #[test]
    fn replay_dispatches_everything_and_tracks_time() {
        let cfg = ReplayConfig {
            qps: 10_000.0,
            ..Default::default()
        };
        let schedule = ReplaySchedule::from_records(&records(100), &cfg);
        let mut seen = Vec::new();
        let stats = schedule.replay(|r| seen.push(r.sql.clone()));
        assert_eq!(stats.dispatched, 100);
        assert_eq!(seen.len(), 100);
        assert_eq!(seen[99], "select 99 from t");
        assert!(stats.elapsed >= schedule.duration());
    }

    #[test]
    fn unpaced_replay_ignores_the_clock() {
        let cfg = ReplayConfig {
            qps: 1.0, // paced, this would take ~100 seconds
            ..Default::default()
        };
        let schedule = ReplaySchedule::from_records(&records(100), &cfg);
        let mut n = 0usize;
        let stats = schedule.replay_unpaced(|_| n += 1);
        assert_eq!((n, stats.dispatched), (100, 100));
        assert!(stats.elapsed < Duration::from_secs(5));
    }
}
