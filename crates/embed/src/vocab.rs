//! Token vocabulary with out-of-vocabulary hash buckets.
//!
//! Multi-tenant workloads have unbounded identifier vocabularies (every
//! tenant brings its own schema), so the vocabulary keeps the most frequent
//! tokens exactly and maps everything else into a fixed number of hash
//! buckets. OOV tokens therefore still carry (collision-shared) signal —
//! important for the account-labeling task where rare schema identifiers
//! are the discriminative tokens.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Vocabulary construction parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VocabConfig {
    /// Tokens seen fewer than this many times go to hash buckets.
    pub min_count: u64,
    /// At most this many exact tokens are kept (most frequent first).
    pub max_size: usize,
    /// Number of OOV hash buckets appended after the exact tokens.
    pub hash_buckets: usize,
}

impl Default for VocabConfig {
    fn default() -> Self {
        VocabConfig {
            min_count: 2,
            max_size: 20_000,
            hash_buckets: 1024,
        }
    }
}

/// A frozen vocabulary: exact ids for frequent tokens, hashed ids for the
/// long tail.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    token_to_id: HashMap<String, u32>,
    tokens: Vec<String>,
    counts: Vec<u64>,
    bucket_counts: Vec<u64>,
}

impl Vocab {
    /// Build a vocabulary from a corpus of token sequences.
    pub fn build<'a, I>(corpus: I, cfg: &VocabConfig) -> Vocab
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        let mut freq: HashMap<&str, u64> = HashMap::new();
        let mut order: Vec<&str> = Vec::new();
        for doc in corpus {
            for tok in doc {
                let e = freq.entry(tok.as_str()).or_insert(0);
                if *e == 0 {
                    order.push(tok.as_str());
                }
                *e += 1;
            }
        }
        // Most frequent first; ties broken by first-seen order for
        // determinism (HashMap iteration order must not leak in).
        let first_seen: HashMap<&str, usize> =
            order.iter().enumerate().map(|(i, t)| (*t, i)).collect();
        let mut entries: Vec<(&str, u64)> = freq
            .iter()
            .filter(|(_, &c)| c >= cfg.min_count)
            .map(|(t, c)| (*t, *c))
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(first_seen[a.0].cmp(&first_seen[b.0])));
        entries.truncate(cfg.max_size);

        let mut token_to_id = HashMap::with_capacity(entries.len());
        let mut tokens = Vec::with_capacity(entries.len());
        let mut counts = Vec::with_capacity(entries.len());
        for (i, (t, c)) in entries.iter().enumerate() {
            token_to_id.insert((*t).to_string(), i as u32);
            tokens.push((*t).to_string());
            counts.push(*c);
        }
        // Everything that fell below the threshold contributes to its
        // bucket's noise count.
        let mut bucket_counts = vec![0u64; cfg.hash_buckets.max(1)];
        for (t, c) in freq {
            if !token_to_id.contains_key(t) {
                let b = fnv1a(t) as usize % bucket_counts.len();
                bucket_counts[b] += c;
            }
        }
        Vocab {
            token_to_id,
            tokens,
            counts,
            bucket_counts,
        }
    }

    /// Total id space: exact tokens + hash buckets.
    pub fn size(&self) -> usize {
        self.tokens.len() + self.bucket_counts.len()
    }

    /// Number of exactly-represented tokens.
    pub fn exact_len(&self) -> usize {
        self.tokens.len()
    }

    /// Map a token to its exact id, or `None` when out-of-vocabulary.
    pub fn exact_id(&self, token: &str) -> Option<usize> {
        self.token_to_id.get(token).map(|&i| i as usize)
    }

    /// Map a token to its id. Never fails — OOV tokens hash into buckets.
    pub fn id(&self, token: &str) -> usize {
        match self.token_to_id.get(token) {
            Some(&i) => i as usize,
            None => self.tokens.len() + fnv1a(token) as usize % self.bucket_counts.len(),
        }
    }

    /// Map a full token sequence to ids.
    pub fn encode(&self, tokens: &[String]) -> Vec<usize> {
        tokens.iter().map(|t| self.id(t)).collect()
    }

    /// Map a token sequence to ids, silently dropping out-of-vocabulary
    /// tokens — the classical word2vec/gensim behaviour.
    pub fn encode_drop_oov(&self, tokens: &[String]) -> Vec<usize> {
        tokens.iter().filter_map(|t| self.exact_id(t)).collect()
    }

    /// The token string for an exact id, or `None` for bucket ids.
    pub fn token(&self, id: usize) -> Option<&str> {
        self.tokens.get(id).map(String::as_str)
    }

    /// Occurrence count of a token id (bucket ids return the bucket mass).
    pub fn count(&self, id: usize) -> u64 {
        if id < self.counts.len() {
            self.counts[id]
        } else {
            self.bucket_counts
                .get(id - self.counts.len())
                .copied()
                .unwrap_or(0)
        }
    }

    /// Noise-distribution counts over the whole id space for negative
    /// sampling; zero-count buckets get 1 so the alias table is total.
    pub fn noise_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .copied()
            .chain(self.bucket_counts.iter().map(|&c| c.max(1)))
            .collect()
    }

    /// Total token occurrences in the training corpus.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.bucket_counts.iter().sum::<u64>()
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(texts: &[&str]) -> Vec<Vec<String>> {
        texts
            .iter()
            .map(|t| t.split_whitespace().map(String::from).collect())
            .collect()
    }

    fn build(texts: &[&str], cfg: &VocabConfig) -> Vocab {
        let d = docs(texts);
        Vocab::build(d.iter().map(|v| v.as_slice()), cfg)
    }

    #[test]
    fn frequent_tokens_get_exact_ids() {
        let v = build(
            &["select a from t", "select b from t", "select a from u"],
            &VocabConfig {
                min_count: 2,
                max_size: 100,
                hash_buckets: 16,
            },
        );
        assert!(v.token(v.id("select")).is_some());
        assert!(v.token(v.id("from")).is_some());
        assert!(v.token(v.id("a")).is_some());
        // "b" and "u" appear once → bucketed.
        assert!(v.id("b") >= v.exact_len());
        assert!(v.id("u") >= v.exact_len());
    }

    #[test]
    fn ids_are_stable_and_in_range() {
        let v = build(&["x y z x y x"], &VocabConfig::default());
        for tok in ["x", "y", "z", "never-seen", "🙂"] {
            let id = v.id(tok);
            assert!(id < v.size());
            assert_eq!(id, v.id(tok), "id must be deterministic");
        }
    }

    #[test]
    fn most_frequent_token_is_id_zero() {
        let v = build(
            &["select select select from from t"],
            &VocabConfig {
                min_count: 1,
                max_size: 100,
                hash_buckets: 4,
            },
        );
        assert_eq!(v.id("select"), 0);
        assert_eq!(v.token(0), Some("select"));
        assert_eq!(v.count(0), 3);
    }

    #[test]
    fn max_size_truncates() {
        let v = build(
            &["a a a b b c"],
            &VocabConfig {
                min_count: 1,
                max_size: 2,
                hash_buckets: 8,
            },
        );
        assert_eq!(v.exact_len(), 2);
        assert!(v.id("c") >= 2);
        assert_eq!(v.size(), 10);
    }

    #[test]
    fn noise_counts_cover_full_space_and_are_positive() {
        let v = build(
            &["a a b"],
            &VocabConfig {
                min_count: 1,
                max_size: 10,
                hash_buckets: 4,
            },
        );
        let n = v.noise_counts();
        assert_eq!(n.len(), v.size());
        assert!(n.iter().all(|&c| c > 0));
    }

    #[test]
    fn determinism_across_builds() {
        let texts = [
            "select a from t where b = 1",
            "select b from t",
            "select c from u",
        ];
        let v1 = build(&texts, &VocabConfig::default());
        let v2 = build(&texts, &VocabConfig::default());
        for tok in ["select", "a", "b", "t", "u", "zzz"] {
            assert_eq!(v1.id(tok), v2.id(tok));
        }
    }

    #[test]
    fn bucket_mass_counts_oov() {
        let v = build(
            &["rare1 rare2 common common"],
            &VocabConfig {
                min_count: 2,
                max_size: 10,
                hash_buckets: 1,
            },
        );
        assert_eq!(v.exact_len(), 1);
        // Both rare tokens landed in the single bucket.
        assert_eq!(v.count(1), 2);
        assert_eq!(v.total_count(), 4);
    }
}
