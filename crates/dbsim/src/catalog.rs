//! Table and column statistics, including the built-in TPC-H SF1 catalog.

use std::collections::HashMap;

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub ndv: u64,
    /// Numeric domain (dates stored as days since 1970-01-01).
    pub min: f64,
    pub max: f64,
    /// Multiplier from *estimated* to *true* selectivity for range/equality
    /// predicates on this column. 1.0 = stats are accurate; >1 = the
    /// optimizer underestimates (skew/correlation the uniformity assumption
    /// misses).
    pub skew: f64,
}

impl ColumnStats {
    pub fn new(ndv: u64, min: f64, max: f64) -> Self {
        ColumnStats {
            ndv: ndv.max(1),
            min,
            max,
            skew: 1.0,
        }
    }

    pub fn with_skew(mut self, skew: f64) -> Self {
        self.skew = skew;
        self
    }
}

/// Statistics for one table.
#[derive(Debug, Clone)]
pub struct TableStats {
    pub rows: u64,
    /// Average row width in bytes (drives scan cost).
    pub row_bytes: u64,
    pub columns: HashMap<String, ColumnStats>,
}

/// A database catalog: per-table statistics plus cross-cutting knowledge
/// the simulator needs (HAVING-aggregate selectivity truths).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, TableStats>,
    /// True selectivity overrides for HAVING `func(column) op value`
    /// predicates, keyed by `(func, column)`. The optimizer always *guesses*
    /// [`crate::selectivity::HAVING_EST_SEL`] for these — this map is what
    /// reality does instead.
    having_truth: HashMap<(String, String), f64>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table.
    pub fn add_table(&mut self, name: &str, rows: u64, row_bytes: u64) -> &mut Self {
        self.tables.insert(
            name.to_ascii_lowercase(),
            TableStats {
                rows,
                row_bytes,
                columns: HashMap::new(),
            },
        );
        self
    }

    /// Register a column on an existing table.
    pub fn add_column(&mut self, table: &str, column: &str, stats: ColumnStats) -> &mut Self {
        if let Some(t) = self.tables.get_mut(&table.to_ascii_lowercase()) {
            t.columns.insert(column.to_ascii_lowercase(), stats);
        }
        self
    }

    /// Declare the *true* selectivity of a HAVING aggregate predicate.
    pub fn set_having_truth(&mut self, func: &str, column: &str, true_sel: f64) -> &mut Self {
        self.having_truth.insert(
            (func.to_ascii_lowercase(), column.to_ascii_lowercase()),
            true_sel,
        );
        self
    }

    /// Look up a table (case-insensitive).
    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Look up a column on a table.
    pub fn column(&self, table: &str, column: &str) -> Option<&ColumnStats> {
        self.table(table)?.columns.get(&column.to_ascii_lowercase())
    }

    /// Find which table owns a column name (TPC-H columns are uniquely
    /// prefixed, so unqualified references resolve unambiguously).
    pub fn table_of_column(&self, column: &str) -> Option<&str> {
        let c = column.to_ascii_lowercase();
        let mut found: Option<&str> = None;
        // Deterministic scan order (BTreeSet of names) to avoid HashMap
        // iteration-order nondeterminism on ambiguous schemas.
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        for name in names {
            if self.tables[name.as_str()].columns.contains_key(&c) {
                if found.is_some() {
                    return None; // ambiguous
                }
                found = Some(name.as_str());
            }
        }
        found
    }

    /// True HAVING selectivity if declared.
    pub fn having_truth(&self, func: &str, column: &str) -> Option<f64> {
        self.having_truth
            .get(&(func.to_ascii_lowercase(), column.to_ascii_lowercase()))
            .copied()
    }

    /// All table names, sorted (for deterministic iteration).
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// The TPC-H catalog at scale factor 1.
    pub fn tpch_sf1() -> Catalog {
        let mut c = Catalog::new();
        let d = |s: &str| querc_sql::ast::date_to_days(s).expect("valid date");
        let date_lo = d("1992-01-01");
        let date_hi = d("1998-12-31");

        c.add_table("region", 5, 120);
        c.add_column("region", "r_regionkey", ColumnStats::new(5, 0.0, 4.0));
        c.add_column("region", "r_name", ColumnStats::new(5, 0.0, 4.0));

        c.add_table("nation", 25, 130);
        c.add_column("nation", "n_nationkey", ColumnStats::new(25, 0.0, 24.0));
        c.add_column("nation", "n_name", ColumnStats::new(25, 0.0, 24.0));
        c.add_column("nation", "n_regionkey", ColumnStats::new(5, 0.0, 4.0));

        c.add_table("supplier", 10_000, 160);
        c.add_column(
            "supplier",
            "s_suppkey",
            ColumnStats::new(10_000, 1.0, 10_000.0),
        );
        c.add_column("supplier", "s_nationkey", ColumnStats::new(25, 0.0, 24.0));
        c.add_column(
            "supplier",
            "s_acctbal",
            ColumnStats::new(9_000, -999.0, 9_999.0),
        );
        c.add_column(
            "supplier",
            "s_name",
            ColumnStats::new(10_000, 0.0, 10_000.0),
        );
        c.add_column("supplier", "s_comment", ColumnStats::new(10_000, 0.0, 1.0));

        c.add_table("customer", 150_000, 180);
        c.add_column(
            "customer",
            "c_custkey",
            ColumnStats::new(150_000, 1.0, 150_000.0),
        );
        c.add_column("customer", "c_nationkey", ColumnStats::new(25, 0.0, 24.0));
        c.add_column("customer", "c_mktsegment", ColumnStats::new(5, 0.0, 4.0));
        c.add_column(
            "customer",
            "c_acctbal",
            ColumnStats::new(140_000, -999.0, 9_999.0),
        );
        c.add_column("customer", "c_phone", ColumnStats::new(150_000, 0.0, 1.0));
        c.add_column("customer", "c_name", ColumnStats::new(150_000, 0.0, 1.0));

        c.add_table("part", 200_000, 160);
        c.add_column(
            "part",
            "p_partkey",
            ColumnStats::new(200_000, 1.0, 200_000.0),
        );
        c.add_column("part", "p_size", ColumnStats::new(50, 1.0, 50.0));
        c.add_column("part", "p_brand", ColumnStats::new(25, 0.0, 24.0));
        c.add_column("part", "p_type", ColumnStats::new(150, 0.0, 149.0));
        c.add_column("part", "p_container", ColumnStats::new(40, 0.0, 39.0));
        c.add_column("part", "p_name", ColumnStats::new(200_000, 0.0, 1.0));
        c.add_column("part", "p_mfgr", ColumnStats::new(5, 0.0, 4.0));

        c.add_table("partsupp", 800_000, 150);
        c.add_column(
            "partsupp",
            "ps_partkey",
            ColumnStats::new(200_000, 1.0, 200_000.0),
        );
        c.add_column(
            "partsupp",
            "ps_suppkey",
            ColumnStats::new(10_000, 1.0, 10_000.0),
        );
        c.add_column(
            "partsupp",
            "ps_supplycost",
            ColumnStats::new(100_000, 1.0, 1_000.0),
        );
        c.add_column(
            "partsupp",
            "ps_availqty",
            ColumnStats::new(10_000, 1.0, 9_999.0),
        );

        c.add_table("orders", 1_500_000, 120);
        c.add_column(
            "orders",
            "o_orderkey",
            ColumnStats::new(1_500_000, 1.0, 6_000_000.0),
        );
        c.add_column(
            "orders",
            "o_custkey",
            ColumnStats::new(100_000, 1.0, 150_000.0),
        );
        c.add_column(
            "orders",
            "o_orderdate",
            ColumnStats::new(2_400, date_lo, date_hi),
        );
        c.add_column(
            "orders",
            "o_totalprice",
            ColumnStats::new(1_400_000, 850.0, 560_000.0),
        );
        c.add_column("orders", "o_orderpriority", ColumnStats::new(5, 0.0, 4.0));
        c.add_column("orders", "o_orderstatus", ColumnStats::new(3, 0.0, 2.0));
        c.add_column("orders", "o_shippriority", ColumnStats::new(1, 0.0, 0.0));
        c.add_column("orders", "o_comment", ColumnStats::new(1_500_000, 0.0, 1.0));

        c.add_table("lineitem", 6_000_000, 130);
        c.add_column(
            "lineitem",
            "l_orderkey",
            ColumnStats::new(1_500_000, 1.0, 6_000_000.0),
        );
        c.add_column(
            "lineitem",
            "l_partkey",
            ColumnStats::new(200_000, 1.0, 200_000.0),
        );
        c.add_column(
            "lineitem",
            "l_suppkey",
            ColumnStats::new(10_000, 1.0, 10_000.0),
        );
        c.add_column("lineitem", "l_quantity", ColumnStats::new(50, 1.0, 50.0));
        c.add_column(
            "lineitem",
            "l_extendedprice",
            ColumnStats::new(1_000_000, 900.0, 105_000.0),
        );
        c.add_column("lineitem", "l_discount", ColumnStats::new(11, 0.0, 0.10));
        c.add_column("lineitem", "l_tax", ColumnStats::new(9, 0.0, 0.08));
        c.add_column(
            "lineitem",
            "l_shipdate",
            ColumnStats::new(2_500, date_lo, date_hi),
        );
        c.add_column(
            "lineitem",
            "l_commitdate",
            ColumnStats::new(2_500, date_lo, date_hi),
        );
        c.add_column(
            "lineitem",
            "l_receiptdate",
            ColumnStats::new(2_500, date_lo, date_hi),
        );
        c.add_column("lineitem", "l_returnflag", ColumnStats::new(3, 0.0, 2.0));
        c.add_column("lineitem", "l_linestatus", ColumnStats::new(2, 0.0, 1.0));
        c.add_column("lineitem", "l_shipmode", ColumnStats::new(7, 0.0, 6.0));
        c.add_column("lineitem", "l_shipinstruct", ColumnStats::new(4, 0.0, 3.0));

        // The Q18 wedge: optimizers guess a HAVING `sum(...) > K` keeps a
        // tiny fraction of groups; on TPC-H's lineitem the quantity sums
        // concentrate so the predicate keeps far more orders than the
        // guess. The runtime uses this truth; the optimizer never sees it.
        c.set_having_truth("sum", "l_quantity", 0.50);

        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpch_tables_present_with_spec_cardinalities() {
        let c = Catalog::tpch_sf1();
        assert_eq!(c.table("lineitem").unwrap().rows, 6_000_000);
        assert_eq!(c.table("orders").unwrap().rows, 1_500_000);
        assert_eq!(c.table("region").unwrap().rows, 5);
        assert_eq!(c.table_names().len(), 8);
    }

    #[test]
    fn lookups_are_case_insensitive() {
        let c = Catalog::tpch_sf1();
        assert!(c.table("LINEITEM").is_some());
        assert!(c.column("Orders", "O_ORDERDATE").is_some());
    }

    #[test]
    fn column_ownership_resolves_unambiguously() {
        let c = Catalog::tpch_sf1();
        assert_eq!(c.table_of_column("l_shipdate"), Some("lineitem"));
        assert_eq!(c.table_of_column("o_custkey"), Some("orders"));
        assert_eq!(c.table_of_column("nonexistent_col"), None);
    }

    #[test]
    fn ambiguous_columns_resolve_to_none() {
        let mut c = Catalog::new();
        c.add_table("a", 10, 10);
        c.add_table("b", 10, 10);
        c.add_column("a", "x", ColumnStats::new(5, 0.0, 1.0));
        c.add_column("b", "x", ColumnStats::new(5, 0.0, 1.0));
        assert_eq!(c.table_of_column("x"), None);
    }

    #[test]
    fn having_truth_registered_for_q18() {
        let c = Catalog::tpch_sf1();
        let t = c.having_truth("sum", "l_quantity").unwrap();
        assert!(t > 0.1, "Q18's HAVING keeps a large fraction in truth");
        assert!(c.having_truth("sum", "o_totalprice").is_none());
    }

    #[test]
    fn date_domains_in_days() {
        let c = Catalog::tpch_sf1();
        let ship = c.column("lineitem", "l_shipdate").unwrap();
        assert!(ship.max - ship.min > 2000.0 && ship.max - ship.min < 3000.0);
    }

    #[test]
    fn builder_api() {
        let mut c = Catalog::new();
        c.add_table("t", 100, 64);
        c.add_column("t", "x", ColumnStats::new(10, 0.0, 9.0).with_skew(5.0));
        assert_eq!(c.column("t", "x").unwrap().skew, 5.0);
        assert_eq!(c.table("t").unwrap().rows, 100);
    }
}
