//! Routing-policy misconfiguration detection (paper §4).
//!
//! Learns historical query→cluster routing, then scans a batch in which a
//! policy drift sent analytics traffic to the ETL cluster. Queries whose
//! predicted cluster disagrees confidently with the assigned one are
//! reported — no policy rules are ever parsed.
//!
//! Run with: `cargo run --release --example query_routing`

use querc::apps::routing::RoutingChecker;
use querc_embed::BagOfTokens;
use querc_workloads::QueryRecord;
use std::sync::Arc;

fn record(sql: &str, cluster: &str, i: u64) -> QueryRecord {
    QueryRecord {
        sql: sql.to_string(),
        user: format!("u{}", i % 7),
        account: "acme".into(),
        cluster: cluster.into(),
        dialect: "generic".into(),
        runtime_ms: 50.0,
        mem_mb: 100.0,
        error_code: None,
        timestamp: i,
    }
}

fn main() {
    // Clean routing history: BI rollups on `bi-cluster`, pipeline loads on
    // `etl-cluster`.
    let history: Vec<QueryRecord> = (0..120)
        .map(|i| {
            if i % 2 == 0 {
                record(
                    &format!(
                        "select dim{}, sum(revenue) from finance_mart group by dim{}",
                        i % 4,
                        i % 4
                    ),
                    "bi-cluster",
                    i,
                )
            } else {
                record(
                    &format!("insert into lake_raw select * from staging_batch_{}", i % 5),
                    "etl-cluster",
                    i,
                )
            }
        })
        .collect();

    let checker = RoutingChecker::train(
        &history,
        Arc::new(BagOfTokens::new(128, true)),
        0.6, // report only confident disagreements
        11,
    );

    // Live batch with two misrouted analytics queries.
    let mut live = history[..20].to_vec();
    live.push(record(
        "select dim1, sum(revenue) from finance_mart group by dim1",
        "etl-cluster", // drifted policy!
        500,
    ));
    live.push(record(
        "select dim3, sum(revenue) from finance_mart group by dim3",
        "etl-cluster",
        501,
    ));

    let anomalies = checker.check(&live);
    println!(
        "checked {} routed queries, {} suspected misroutings:",
        live.len(),
        anomalies.len()
    );
    for a in &anomalies {
        println!(
            "  query #{:>3}: assigned `{}` but looks like `{}` traffic (confidence {:.0}%)",
            a.index,
            a.assigned_cluster,
            a.predicted_cluster,
            a.confidence * 100.0
        );
    }

    // The checker also routes brand-new queries.
    println!(
        "\nsuggested cluster for a new query: {}",
        checker.predict("select dim9, sum(revenue) from finance_mart group by dim9")
    );
}
