//! Applications — the paper's §4 use cases behind one uniform trait.
//!
//! The paper's core claim is that *every* workload-management task
//! reduces to query labeling. This module makes that claim the API:
//! each application implements [`WorkloadApp`] — fit a model from a
//! [`TrainCorpus`], label query batches into [`AppOutput`]s, describe
//! itself with an [`AppReport`] — and is served uniformly by the
//! [`crate::service::WorkloadManager`] (paper Fig 1's Qworker fabric).
//!
//! * [`summarize`] — workload summarization for index recommendation
//!   (§5.1's headline experiment);
//! * [`audit`] — user/account prediction for security auditing (§5.2);
//! * [`routing`] — query-routing policy misconfiguration detection;
//! * [`errors`] — error prediction from query syntax;
//! * [`resources`] — coarse resource-class prediction for speculative
//!   allocation;
//! * [`recommend`] — next-query recommendation over embedding clusters.
//!
//! The pre-existing bespoke entry points (`SecurityAuditor::train`,
//! `summarize_workload`, …) remain as thin wrappers around the same
//! logic, so offline/ablation code keeps working unchanged.
//!
//! Apps label [`crate::EnrichedQuery`] batches: the enriched envelope
//! carries memoized tokens and (when the query came through the
//! manager's ingress embed plane) a precomputed embedding vector, so an
//! app only embeds when no upstream component already did. Every app is
//! fit/label/report — usable directly, without a manager:
//!
//! ```
//! use querc::apps::{ResourcesApp, TrainCorpus, WorkloadApp};
//! use querc::EnrichedQuery;
//! use querc_workloads::{SnowCloud, SnowCloudConfig};
//! use std::sync::Arc;
//!
//! let wl = SnowCloud::generate(&SnowCloudConfig::pretrain(2, 40, 7));
//! let corpus = TrainCorpus::from_records(wl.records.clone(), 7);
//! let app = ResourcesApp::new(Arc::new(querc_embed::BagOfTokens::new(64, true)));
//!
//! let model = app.fit(&corpus).unwrap();
//! let batch = [EnrichedQuery::from_sql("select 1")];
//! let outputs = app.label_batch(&model, &batch).unwrap();
//! assert_eq!(outputs.len(), 1);
//! assert!(outputs[0].get("resource_class").is_some());
//! assert_eq!(app.report(&model).trained_queries, corpus.len());
//! ```

pub mod audit;
pub mod errors;
pub mod recommend;
pub mod resources;
pub mod routing;
pub mod summarize;

pub use audit::AuditApp;
pub use errors::ErrorsApp;
pub use recommend::RecommendApp;
pub use resources::ResourcesApp;
pub use routing::RoutingApp;
pub use summarize::SummarizeApp;

use crate::enriched::EnrichedQuery;
use crate::error::{QuercError, Result};
use crate::labeled::LabeledQuery;
use querc_embed::Embedder;
use querc_workloads::QueryRecord;
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Training input shared by every application: labeled log records plus
/// per-user session histories (consumed by the recommendation app).
#[derive(Debug, Clone, Default)]
pub struct TrainCorpus {
    /// Labeled log records — the `(Q, c1, c2, …)` tuples of §2.
    pub records: Vec<QueryRecord>,
    /// Ordered per-session query texts (for sequence models).
    pub histories: Vec<Vec<String>>,
    /// Master seed; each app derives its own stream from it.
    pub seed: u64,
}

impl TrainCorpus {
    /// Build a corpus from log records, deriving session histories by
    /// grouping on `user` and ordering by `timestamp`.
    pub fn from_records(records: Vec<QueryRecord>, seed: u64) -> TrainCorpus {
        let mut by_user: BTreeMap<&str, Vec<(u64, &str)>> = BTreeMap::new();
        for r in &records {
            by_user
                .entry(r.user.as_str())
                .or_default()
                .push((r.timestamp, r.sql.as_str()));
        }
        let histories = by_user
            .into_values()
            .map(|mut h| {
                h.sort_by_key(|(t, _)| *t);
                h.into_iter().map(|(_, sql)| sql.to_string()).collect()
            })
            .collect();
        TrainCorpus {
            records,
            histories,
            seed,
        }
    }

    /// Number of training records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the corpus holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Normalized token streams of every record (embedder input).
    pub fn token_corpus(&self) -> Vec<Vec<String>> {
        self.records.iter().map(|r| r.tokens()).collect()
    }

    /// Guard used by app `fit` implementations.
    pub(crate) fn require_records(&self, context: &'static str) -> Result<()> {
        if self.records.is_empty() {
            Err(QuercError::EmptyCorpus { context })
        } else {
            Ok(())
        }
    }
}

/// Labels an application attaches to one query — the `ci` components of
/// the paper's labeled-query tuple, produced app-side.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AppOutput {
    /// `(label name, value)` pairs in attachment order.
    pub labels: Vec<(String, String)>,
}

impl AppOutput {
    /// An output with no labels attached yet.
    pub fn new() -> AppOutput {
        AppOutput::default()
    }

    /// Attach or replace a label.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) -> &mut Self {
        let name = name.into();
        let value = value.into();
        match self.labels.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = value,
            None => self.labels.push((name, value)),
        }
        self
    }

    /// First value of a label, if attached.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Merge these labels into a query (serving-path sink).
    pub fn apply_to(&self, lq: &mut LabeledQuery) {
        for (name, value) in &self.labels {
            lq.set(name.clone(), value.clone());
        }
    }
}

/// A fitted model's self-description, surfaced by the manager.
#[derive(Debug, Clone, PartialEq)]
pub struct AppReport {
    /// Application name (registration key).
    pub app: String,
    /// One-line task description.
    pub task: String,
    /// Queries the model was fitted on.
    pub trained_queries: usize,
    /// App-specific `(key, value)` diagnostics.
    pub detail: Vec<(String, String)>,
}

/// One workload-management task expressed as query labeling.
///
/// Implementations are *stateless configurations*: `fit` produces the
/// trained model as a value, so one app instance can train against many
/// corpora and replicated Qworkers can share one immutable model behind
/// an `Arc`. All methods that can fail report [`QuercError`] — no
/// panicking paths are reachable from the serving fabric.
pub trait WorkloadApp: Send + Sync {
    /// The trained-model artifact `fit` produces.
    type Model: Send + Sync + 'static;

    /// Registration key (e.g. `"audit"`).
    fn name(&self) -> &'static str;

    /// One-line task description for reports.
    fn task(&self) -> &'static str;

    /// Train a model from the corpus.
    fn fit(&self, corpus: &TrainCorpus) -> Result<Self::Model>;

    /// Label a batch of queries. Must return exactly `batch.len()`
    /// outputs, `outputs[i]` belonging to `batch[i]`.
    ///
    /// Implementations obtain vectors with [`EnrichedQuery::vectors`]:
    /// a vector precomputed under the app embedder's cache namespace
    /// (the manager's ingress embed plane, or an earlier consumer in the
    /// same worker) is reused as-is, and only the remainder is embedded —
    /// in one [`querc_embed::Embedder::embed_batch`] call over the
    /// memoized token streams. Either way the labels are identical:
    /// caching is an amortization, never a semantic change.
    fn label_batch(&self, model: &Self::Model, batch: &[EnrichedQuery]) -> Result<Vec<AppOutput>>;

    /// The embedder this app labels through, if it has exactly one. The
    /// manager embeds through it **at ingress** (batched, via the shared
    /// vector cache) so that by the time a chunk reaches the app shard
    /// the vectors are already attached. `None` (the default) opts out
    /// of ingress embedding; the app then embeds inside `label_batch`.
    fn embedder(&self) -> Option<Arc<dyn Embedder>> {
        None
    }

    /// Live search counters of the fitted model's vector index, if the
    /// app serves nearest-neighbor lookups through the
    /// `querc_index::VectorIndex` plane (default `None`). The manager
    /// surfaces this next to the embed-cache hit-rates in
    /// [`crate::service::AppThroughput::index`].
    fn index_stats(&self, _model: &Self::Model) -> Option<querc_index::IndexStats> {
        None
    }

    /// Describe a fitted model.
    fn report(&self, model: &Self::Model) -> AppReport;

    /// Serialize a fitted model for a snapshot (the persistence plane's
    /// checkpoint path). `None` — the default — opts the app out of
    /// persistence: it is skipped at checkpoint time and refits after a
    /// restore.
    fn save_model(&self, _model: &Self::Model) -> Option<String> {
        None
    }

    /// Rebuild a fitted model from [`WorkloadApp::save_model`] output.
    /// Implementations must **validate** everything label-time code
    /// trusts (matrix shapes, index bounds, the embedder's
    /// dimensionality) and surface [`QuercError::Corrupt`] on anything
    /// off — a snapshot section that passed its CRC can still be
    /// adversarially or bit-rot wrong. The restored model must label
    /// bit-identically to the saved one.
    fn load_model(&self, _json: &str) -> Result<Self::Model> {
        Err(QuercError::Corrupt {
            detail: format!("app `{}` does not support model restore", self.name()),
        })
    }
}

/// Object-safe erasure of [`WorkloadApp`] — what the manager stores.
/// Blanket-implemented for every `WorkloadApp`, so user code only ever
/// implements the typed trait.
pub trait DynWorkloadApp: Send + Sync {
    /// Registration key (see [`WorkloadApp::name`]).
    fn name(&self) -> &'static str;
    /// Type-erased [`WorkloadApp::fit`].
    fn fit_dyn(&self, corpus: &TrainCorpus) -> Result<Box<dyn Any + Send + Sync>>;
    /// Type-erased [`WorkloadApp::label_batch`]; fails with
    /// [`QuercError::ModelTypeMismatch`] if `model` was fitted by a
    /// different app type.
    fn label_batch_dyn(
        &self,
        model: &(dyn Any + Send + Sync),
        batch: &[EnrichedQuery],
    ) -> Result<Vec<AppOutput>>;
    /// Type-erased [`WorkloadApp::embedder`].
    fn embedder_dyn(&self) -> Option<Arc<dyn Embedder>>;
    /// Type-erased [`WorkloadApp::index_stats`]; `None` for apps without
    /// an index plane (or on a model-type mismatch).
    fn index_stats_dyn(&self, model: &(dyn Any + Send + Sync)) -> Option<querc_index::IndexStats>;
    /// Type-erased [`WorkloadApp::report`].
    fn report_dyn(&self, model: &(dyn Any + Send + Sync)) -> Result<AppReport>;
    /// Type-erased [`WorkloadApp::save_model`]; `None` when the app opts
    /// out of persistence (or on a model-type mismatch).
    fn save_model_dyn(&self, model: &(dyn Any + Send + Sync)) -> Option<String>;
    /// Type-erased [`WorkloadApp::load_model`].
    fn load_model_dyn(&self, json: &str) -> Result<Box<dyn Any + Send + Sync>>;
}

impl<A: WorkloadApp> DynWorkloadApp for A {
    fn name(&self) -> &'static str {
        WorkloadApp::name(self)
    }

    fn fit_dyn(&self, corpus: &TrainCorpus) -> Result<Box<dyn Any + Send + Sync>> {
        Ok(Box::new(self.fit(corpus)?))
    }

    fn label_batch_dyn(
        &self,
        model: &(dyn Any + Send + Sync),
        batch: &[EnrichedQuery],
    ) -> Result<Vec<AppOutput>> {
        let model =
            model
                .downcast_ref::<A::Model>()
                .ok_or_else(|| QuercError::ModelTypeMismatch {
                    app: WorkloadApp::name(self).to_string(),
                })?;
        self.label_batch(model, batch)
    }

    fn embedder_dyn(&self) -> Option<Arc<dyn Embedder>> {
        self.embedder()
    }

    fn index_stats_dyn(&self, model: &(dyn Any + Send + Sync)) -> Option<querc_index::IndexStats> {
        self.index_stats(model.downcast_ref::<A::Model>()?)
    }

    fn report_dyn(&self, model: &(dyn Any + Send + Sync)) -> Result<AppReport> {
        let model =
            model
                .downcast_ref::<A::Model>()
                .ok_or_else(|| QuercError::ModelTypeMismatch {
                    app: WorkloadApp::name(self).to_string(),
                })?;
        Ok(self.report(model))
    }

    fn save_model_dyn(&self, model: &(dyn Any + Send + Sync)) -> Option<String> {
        self.save_model(model.downcast_ref::<A::Model>()?)
    }

    fn load_model_dyn(&self, json: &str) -> Result<Box<dyn Any + Send + Sync>> {
        Ok(Box::new(self.load_model(json)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(user: &str, sql: &str, ts: u64) -> QueryRecord {
        QueryRecord {
            sql: sql.into(),
            user: user.into(),
            account: "a".into(),
            cluster: "c".into(),
            dialect: "generic".into(),
            runtime_ms: 1.0,
            mem_mb: 1.0,
            error_code: None,
            timestamp: ts,
        }
    }

    #[test]
    fn from_records_derives_ordered_histories() {
        let corpus = TrainCorpus::from_records(
            vec![
                record("u1", "select 2", 20),
                record("u2", "select 9", 5),
                record("u1", "select 1", 10),
            ],
            7,
        );
        assert_eq!(corpus.len(), 3);
        assert_eq!(
            corpus.histories,
            vec![
                vec!["select 1".to_string(), "select 2".to_string()],
                vec!["select 9".to_string()],
            ]
        );
    }

    #[test]
    fn app_output_set_get_apply() {
        let mut out = AppOutput::new();
        out.set("resource_class", "short").set("x", "1");
        out.set("x", "2");
        assert_eq!(out.get("x"), Some("2"));
        assert_eq!(out.labels.len(), 2);
        let mut lq = LabeledQuery::new("select 1");
        out.apply_to(&mut lq);
        assert_eq!(lq.get("resource_class"), Some("short"));
    }

    #[test]
    fn empty_corpus_guard() {
        let corpus = TrainCorpus::default();
        assert!(corpus.is_empty());
        assert!(matches!(
            corpus.require_records("t"),
            Err(QuercError::EmptyCorpus { context: "t" })
        ));
    }
}
