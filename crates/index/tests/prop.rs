//! Property tests for the SIMD kernel parity contract and the SQ8
//! quantizer's error bounds.
//!
//! Three families:
//!
//! * **SIMD ≡ scalar, bit for bit** — fuzzed over random lengths
//!   (including every tail residue `n % 8`), denormal components, and
//!   unaligned query slices. `to_bits` equality, not approximate.
//! * **Quantizer round-trip** — `decode(encode(x))` is within half a
//!   quantization step of `x` in every dimension.
//! * **ADC error bound** — the asymmetric (f32 query × u8 codes)
//!   Euclidean distance differs from the exact f32 distance by at most
//!   the quantization noise: `|√adc − √exact| ≤ ‖step‖ / 2`, up to f32
//!   rounding slack.

use proptest::prelude::*;
use querc_index::simd::{self, Kernel};
use querc_index::{Metric, Sq8Config, Sq8Index, VectorIndex, VectorStore};
use querc_linalg::ops;

/// Kernels whose parity this machine can witness: always the scalar
/// reference; the AVX2 / AVX-512 arms when the CPU has them.
fn arms() -> Vec<Kernel> {
    let mut arms = vec![Kernel::Scalar];
    if querc_index::simd::avx2_available() {
        arms.push(Kernel::Avx2);
    }
    if querc_index::simd::avx512_available() {
        arms.push(Kernel::Avx512);
    }
    arms
}

/// Mix denormals and a huge spread of magnitudes into a fuzzed vector:
/// index-selected components are replaced with subnormal values.
fn seed_denormals(v: &mut [f32], mask: u64) {
    for (i, x) in v.iter_mut().enumerate() {
        if (mask >> (i % 64)) & 1 == 1 {
            *x = f32::MIN_POSITIVE / 4.0 * x.signum();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Row kernels agree bit-for-bit across arms, for any length
    /// (tails of every residue), with denormal components, reading the
    /// query from an unaligned slice.
    #[test]
    fn row_kernels_bit_identical(
        mut a in prop::collection::vec(-100.0f32..100.0, 0..70),
        mask in any::<u64>(),
        bseed in any::<u64>(),
    ) {
        seed_denormals(&mut a, mask);
        let n = a.len();
        let b: Vec<f32> = (0..n)
            .map(|i| ((bseed.wrapping_add(i as u64 * 0x9e37) % 2000) as f32 - 1000.0) / 10.0)
            .collect();
        // Unaligned views: one element of padding shifts the slice off
        // any 32-byte boundary the Vec allocation happened to land on.
        let mut a_pad = vec![0.0f32; n + 1];
        a_pad[1..].copy_from_slice(&a);
        let a_off = &a_pad[1..];

        let arms = arms();
        let sq: Vec<u32> = arms.iter().map(|&k| simd::sq_dist_with(k, a_off, &b).to_bits()).collect();
        let co: Vec<u32> = arms.iter().map(|&k| simd::cosine_dist_with(k, a_off, &b).to_bits()).collect();
        let dt: Vec<u32> = arms.iter().map(|&k| simd::dot_with(k, a_off, &b).to_bits()).collect();
        for w in [&sq, &co, &dt] {
            prop_assert!(w.windows(2).all(|p| p[0] == p[1]), "arm mismatch: {w:?}");
        }
        // And the scalar arm IS the ops reference.
        prop_assert_eq!(sq[0], ops::sq_dist(a_off, &b).to_bits());
        prop_assert_eq!(co[0], ops::cosine_dist(a_off, &b).to_bits());
        prop_assert_eq!(dt[0], ops::dot(a_off, &b).to_bits());
    }

    /// Fused block kernels agree bit-for-bit across arms AND with the
    /// row kernels, over padded stores of fuzzed dim/row-count.
    #[test]
    fn block_kernels_bit_identical(
        dim in 1usize..40,
        rows in 1usize..20,
        mask in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut store = VectorStore::with_capacity(dim, rows);
        for r in 0..rows {
            let mut row: Vec<f32> = (0..dim)
                .map(|d| ((seed.wrapping_add((r * dim + d) as u64 * 0x1df5) % 4000) as f32 - 2000.0) / 40.0)
                .collect();
            seed_denormals(&mut row, mask.rotate_left(r as u32));
            store.push(&row);
        }
        let mut q: Vec<f32> = (0..dim).map(|d| (d as f32).sin() * 9.0).collect();
        seed_denormals(&mut q, mask);

        for metric in [Metric::Euclidean, Metric::Cosine] {
            let mut outs: Vec<Vec<f32>> = Vec::new();
            for &k in &arms() {
                let mut out = vec![0.0f32; rows];
                match metric {
                    Metric::Euclidean =>
                        simd::sq_dist_block_with(k, &q, store.data(), store.stride(), &mut out),
                    Metric::Cosine =>
                        simd::cosine_dist_block_with(k, &q, store.data(), store.stride(), &mut out),
                }
                outs.push(out);
            }
            for out in &outs[1..] {
                for (x, y) in outs[0].iter().zip(out) {
                    prop_assert!(x.to_bits() == y.to_bits(), "{metric:?} block arm mismatch");
                }
            }
            for (r, &d) in outs[0].iter().enumerate() {
                let row_d = metric.distance(&q, store.row(r));
                prop_assert!(
                    d.to_bits() == row_d.to_bits(),
                    "{metric:?} block vs row mismatch at row {r}: {d} vs {row_d}"
                );
            }
        }
    }

    /// ADC block kernels agree bit-for-bit across arms for arbitrary
    /// codes and fuzzed dims.
    #[test]
    fn adc_kernels_bit_identical(
        dim in 1usize..40,
        rows in 1usize..12,
        seed in any::<u64>(),
    ) {
        let stride = dim.div_ceil(8) * 8;
        let codes: Vec<u8> = (0..rows * stride)
            .map(|i| (seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(i as u64 * 0x9e37) >> 24) as u8)
            .collect();
        let t: Vec<f32> = (0..dim).map(|d| (d as f32 * 0.7).cos() * 50.0).collect();
        let step: Vec<f32> = (0..dim).map(|d| 0.01 + (d as f32 * 0.13).sin().abs()).collect();

        let mut sq_outs: Vec<Vec<f32>> = Vec::new();
        let mut dot_outs: Vec<Vec<f32>> = Vec::new();
        for &k in &arms() {
            let mut sq = vec![0.0f32; rows];
            let mut dt = vec![0.0f32; rows];
            simd::adc_sq_block_with(k, &t, &step, &codes, stride, &mut sq);
            simd::adc_dot_block_with(k, &t, &codes, stride, &mut dt);
            sq_outs.push(sq);
            dot_outs.push(dt);
        }
        for outs in [&sq_outs, &dot_outs] {
            for out in &outs[1..] {
                for (x, y) in outs[0].iter().zip(out) {
                    prop_assert!(x.to_bits() == y.to_bits(), "ADC arm mismatch: {x} vs {y}");
                }
            }
        }
    }

    /// Quantizer round-trip: decoding a code reproduces the original
    /// component to within half a step (plus f32 rounding slack).
    #[test]
    fn quantizer_round_trip_error_is_bounded(
        dim in 1usize..24,
        rows in 2usize..30,
        seed in any::<u64>(),
        scale in 0.01f32..1000.0,
    ) {
        let rows_v: Vec<Vec<f32>> = (0..rows)
            .map(|r| (0..dim)
                .map(|d| ((seed.wrapping_add((r * dim + d) as u64 * 0x517c) % 2001) as f32 - 1000.0)
                    / 1000.0 * scale)
                .collect())
            .collect();
        // Flat (nlist 0): codes quantize the raw rows, so the
        // round-trip bound is directly checkable against the inputs.
        let ix = Sq8Index::from_rows(&rows_v, Metric::Euclidean, &Sq8Config {
            nlist: 0,
            rerank_factor: 0,
            ..Default::default()
        });
        let (min, step) = ix.quantizer();
        let codes = ix.codes_by_row();
        for (r, row) in rows_v.iter().enumerate() {
            for (d, &x) in row.iter().enumerate() {
                let c = codes[r * dim + d] as f32;
                let decoded = min[d] + c * step[d];
                let slack = step[d] * 0.5 + step[d] * 1e-4 + scale * 1e-5;
                prop_assert!(
                    (decoded - x).abs() <= slack,
                    "row {r} dim {d}: decoded {decoded} vs {x}, step {}", step[d]
                );
            }
        }
    }

    /// ADC Euclidean distances are within the quantization-noise bound
    /// of the exact f32 distances: `|√adc − √exact| ≤ ‖step‖/2` (+f32
    /// slack). Checked over every row via a full-k search.
    #[test]
    fn adc_distance_is_within_quantization_noise(
        dim in 1usize..16,
        rows in 2usize..24,
        seed in any::<u64>(),
    ) {
        let rows_v: Vec<Vec<f32>> = (0..rows)
            .map(|r| (0..dim)
                .map(|d| ((seed.wrapping_add((r * dim + d) as u64 * 0x6d2b) % 2001) as f32 - 1000.0) / 50.0)
                .collect())
            .collect();
        let ix = Sq8Index::from_rows(&rows_v, Metric::Euclidean, &Sq8Config {
            nlist: 0,
            rerank_factor: 0, // report raw ADC distances
            ..Default::default()
        });
        let (_, step) = ix.quantizer();
        let half_step_norm = ops::norm(step) * 0.5;
        let q: Vec<f32> = (0..dim).map(|d| (d as f32 * 1.3).sin() * 18.0).collect();
        for (id, adc) in ix.search(&q, rows) {
            let exact = ops::sq_dist(&q, &rows_v[id as usize]);
            let (da, de) = (adc.max(0.0).sqrt(), exact.sqrt());
            prop_assert!(
                (da - de).abs() <= half_step_norm * 1.001 + 1e-3,
                "row {id}: √adc {da} vs √exact {de}, bound {half_step_norm}"
            );
        }
    }
}
