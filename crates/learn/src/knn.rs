//! k-nearest-neighbours — the nonparametric sanity-check labeler.
//!
//! Useful as a model-free probe of embedding quality (if kNN over
//! embeddings can't label users, no classifier can). Since the vector
//! search plane landed, `Knn` is a thin **voting layer** over a
//! [`querc_index::VectorIndex`]: exact blocked scans by default
//! ([`querc_index::FlatIndex`], bit-identical distances to the old
//! brute force), with an opt-in IVF approximate backend
//! ([`KnnBackend::Ivf`]) for corpora where `O(n)` per query no longer
//! flies, and an SQ8 quantized backend ([`KnnBackend::Sq8`]) for
//! corpora where the f32 training rows themselves are the problem
//! (4× smaller codes, optional exact re-rank).
//!
//! Determinism: neighbor selection follows the index plane's
//! `(distance, id)` total order (NaN sorts last, equal distances go to
//! the lower row id) and vote ties resolve to the **lower class id** —
//! identical across runs and across exact/ANN backends.

use crate::state::{bad_state, ClassifierState, KnnState};
use crate::{Classifier, LearnError};
use querc_index::{
    FlatIndex, IvfConfig, IvfIndex, Metric, Sq8Config, Sq8Index, VectorIndex, VectorStore,
};
use querc_linalg::Pcg32;

/// Distance metric for [`Knn`] (mapped onto [`querc_index::Metric`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnMetric {
    /// Squared Euclidean distance.
    Euclidean,
    /// 1 − cosine similarity; zero vectors are orthogonal to everything
    /// (distance exactly 1, never NaN — see [`querc_index::Metric::Cosine`]).
    Cosine,
}

impl KnnMetric {
    fn to_metric(self) -> Metric {
        match self {
            KnnMetric::Euclidean => Metric::Euclidean,
            KnnMetric::Cosine => Metric::Cosine,
        }
    }
}

/// Which search backend `fit` builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KnnBackend {
    /// Exact blocked scan over a contiguous store (the default; results
    /// match the historical brute force bit for bit).
    #[default]
    Exact,
    /// Inverted-file ANN: `nlist` k-means partitions (`0` = auto `√n`),
    /// `nprobe` of them scanned per query. Opt-in recall/latency trade —
    /// see `querc_index::IvfIndex`.
    Ivf {
        /// Inverted lists (`0` = auto `⌈√n⌉`).
        nlist: usize,
        /// Lists probed per query (clamped to `[1, nlist]`).
        nprobe: usize,
    },
    /// 8-bit scalar-quantized index (`querc_index::Sq8Index`): 4×
    /// smaller code storage, asymmetric-distance scans, optional exact
    /// re-rank. The memory/recall trade for corpora where even the f32
    /// rows no longer fit comfortably.
    Sq8 {
        /// Coarse inverted lists over the codes. `0` = none (flat ADC
        /// scan); `querc_index::Sq8Config::AUTO_NLIST` = auto `⌈√n⌉`.
        nlist: usize,
        /// Lists probed per query when a coarse layer exists.
        nprobe: usize,
        /// Top `rerank_factor × k` ADC candidates re-scored against
        /// retained f32 rows; `0` drops the f32 rows entirely.
        rerank_factor: usize,
    },
}

/// The concrete index a fitted [`Knn`] searches. Kept as an enum (not
/// `Box<dyn VectorIndex>`) so the persistence layer can export the
/// backend's parts without downcasting.
enum KnnIndex {
    Flat(FlatIndex),
    Ivf(IvfIndex),
    Sq8(Sq8Index),
}

impl KnnIndex {
    fn as_dyn(&self) -> &dyn VectorIndex {
        match self {
            KnnIndex::Flat(ix) => ix,
            KnnIndex::Ivf(ix) => ix,
            KnnIndex::Sq8(ix) => ix,
        }
    }
}

/// k-nearest-neighbours classifier over a vector index.
pub struct Knn {
    k: usize,
    metric: KnnMetric,
    backend: KnnBackend,
    index: Option<KnnIndex>,
    y: Vec<u32>,
    n_classes: usize,
}

impl Knn {
    /// An unfitted kNN voting over the `k` nearest neighbors.
    ///
    /// Thin wrapper over [`Knn::try_new`]; panics (with the error
    /// message) if `k == 0`.
    pub fn new(k: usize, metric: KnnMetric) -> Self {
        Self::try_new(k, metric).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: `k == 0` is reported as
    /// [`LearnError::InvalidK`] instead of panicking.
    pub fn try_new(k: usize, metric: KnnMetric) -> Result<Self, LearnError> {
        if k == 0 {
            return Err(LearnError::InvalidK { k });
        }
        Ok(Knn {
            k,
            metric,
            backend: KnnBackend::Exact,
            index: None,
            y: Vec::new(),
            n_classes: 0,
        })
    }

    /// Choose the search backend `fit` will build (exact by default;
    /// ANN is opt-in). Refit after changing the backend.
    pub fn with_backend(mut self, backend: KnnBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The fitted search index, if `fit` has run (diagnostics: expose
    /// probe/candidate counters via `VectorIndex::stats`).
    pub fn index(&self) -> Option<&dyn VectorIndex> {
        self.index.as_ref().map(KnnIndex::as_dyn)
    }

    /// Snapshot the fitted classifier (training set, labels, and the
    /// search backend's layout) as a [`KnnState`].
    pub fn to_state(&self) -> KnnState {
        let mut state = KnnState {
            k: self.k,
            cosine: self.metric == KnnMetric::Cosine,
            n_classes: self.n_classes,
            y: self.y.clone(),
            dim: 0,
            rows: Vec::new(),
            ivf: false,
            nprobe: 0,
            centroids: Vec::new(),
            lists: Vec::new(),
            sq8: false,
            rerank: 0,
            qmin: Vec::new(),
            qstep: Vec::new(),
            codes: Vec::new(),
        };
        match &self.index {
            None => {}
            Some(KnnIndex::Flat(ix)) => {
                state.dim = ix.store().dim();
                state.rows = flatten(ix.store());
            }
            Some(KnnIndex::Ivf(ix)) => {
                state.dim = ix.store().dim();
                state.rows = flatten(ix.store());
                state.ivf = true;
                state.nprobe = ix.nprobe();
                state.centroids = flatten(ix.centroids());
                state.lists = ix.lists().to_vec();
            }
            Some(KnnIndex::Sq8(ix)) => {
                state.dim = ix.dim();
                state.sq8 = true;
                state.rerank = ix.rerank_factor();
                let (qmin, qstep) = ix.quantizer();
                state.qmin = qmin.to_vec();
                state.qstep = qstep.to_vec();
                state.codes = ix.codes_by_row();
                state.nprobe = ix.nprobe();
                if let Some(exact) = ix.exact_store() {
                    state.rows = flatten(exact);
                }
                if ix.nlist() > 0 {
                    state.ivf = true;
                    state.centroids = flatten(ix.centroids());
                    state.lists = ix.lists();
                }
            }
        }
        state
    }

    /// Rebuild a fitted classifier from a snapshot, validating label
    /// ranges, row shapes, and (for IVF) the list layout, so restored
    /// predictions are bit-identical to the exported model's and
    /// corrupt states fail with [`LearnError::BadState`] instead of an
    /// index panic during voting.
    pub fn from_state(state: KnnState) -> Result<Knn, LearnError> {
        let metric = if state.cosine {
            KnnMetric::Cosine
        } else {
            KnnMetric::Euclidean
        };
        let mut knn = Knn::try_new(state.k, metric)?;
        knn.n_classes = state.n_classes;
        if state.y.is_empty() {
            return Ok(knn);
        }
        if let Some(&bad) = state.y.iter().find(|&&c| c as usize >= state.n_classes) {
            return Err(bad_state(format!(
                "label {bad} out of range for {} classes",
                state.n_classes
            )));
        }
        if state.sq8 {
            return Self::from_sq8_state(knn, state);
        }
        if state.dim == 0 || state.rows.len() != state.y.len() * state.dim {
            return Err(bad_state(format!(
                "{} row floats for {} rows of dim {}",
                state.rows.len(),
                state.y.len(),
                state.dim
            )));
        }
        let store = unflatten(&state.rows, state.dim);
        let index = if state.ivf {
            if !state.centroids.len().is_multiple_of(state.dim) {
                return Err(bad_state("ragged centroid rows"));
            }
            let centroids = unflatten(&state.centroids, state.dim);
            let nlist = centroids.len();
            let ivf = IvfIndex::from_parts(
                store,
                metric.to_metric(),
                centroids,
                state.lists.clone(),
                state.nprobe,
            )
            .ok_or_else(|| bad_state("inconsistent IVF centroid/list layout"))?;
            knn.backend = KnnBackend::Ivf {
                nlist,
                nprobe: state.nprobe,
            };
            KnnIndex::Ivf(ivf)
        } else {
            KnnIndex::Flat(FlatIndex::new(store, metric.to_metric()))
        };
        knn.y = state.y;
        knn.index = Some(index);
        Ok(knn)
    }

    /// [`Knn::from_state`] continued for the SQ8 backend: rebuild an
    /// [`Sq8Index`] from exported codes + quantizer params (+ optional
    /// coarse layer and re-rank rows), with the same corrupt-state
    /// guarantees. Label range and non-emptiness are already checked by
    /// the caller.
    fn from_sq8_state(mut knn: Knn, state: KnnState) -> Result<Knn, LearnError> {
        if state.dim == 0 || state.codes.len() != state.y.len() * state.dim {
            return Err(bad_state(format!(
                "{} SQ8 codes for {} rows of dim {}",
                state.codes.len(),
                state.y.len(),
                state.dim
            )));
        }
        // Re-rank rows are optional (dropped when `rerank == 0`), but
        // when present they must cover every row.
        let exact = if state.rows.is_empty() {
            None
        } else if state.rows.len() == state.y.len() * state.dim {
            Some(unflatten(&state.rows, state.dim))
        } else {
            return Err(bad_state(format!(
                "{} re-rank floats for {} rows of dim {}",
                state.rows.len(),
                state.y.len(),
                state.dim
            )));
        };
        if !state.centroids.len().is_multiple_of(state.dim) {
            return Err(bad_state("ragged centroid rows"));
        }
        let centroids = unflatten(&state.centroids, state.dim);
        let nlist = centroids.len();
        let index = Sq8Index::from_parts(
            knn.metric.to_metric(),
            state.dim,
            state.qmin,
            state.qstep,
            &state.codes,
            centroids,
            state.lists,
            exact,
            state.nprobe,
            state.rerank,
        )
        .ok_or_else(|| bad_state("inconsistent SQ8 quantizer/code/list layout"))?;
        knn.backend = KnnBackend::Sq8 {
            nlist,
            nprobe: state.nprobe,
            rerank_factor: state.rerank,
        };
        knn.y = state.y;
        knn.index = Some(KnnIndex::Sq8(index));
        Ok(knn)
    }

    /// Majority vote over neighbor labels; vote ties resolve to the
    /// lower class id.
    fn vote(&self, hits: &[(u32, f32)]) -> u32 {
        let mut votes = vec![0u32; self.n_classes.max(1)];
        for &(id, _) in hits {
            votes[self.y[id as usize] as usize] += 1;
        }
        let mut best = 0usize;
        for (c, &v) in votes.iter().enumerate() {
            if v > votes[best] {
                best = c;
            }
        }
        best as u32
    }
}

impl std::fmt::Debug for Knn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Knn")
            .field("k", &self.k)
            .field("metric", &self.metric)
            .field("backend", &self.backend)
            .field("fitted", &self.index.is_some())
            .field("n_classes", &self.n_classes)
            .finish()
    }
}

impl Classifier for Knn {
    fn fit(&mut self, x: &[Vec<f32>], y: &[u32], n_classes: usize, _rng: &mut Pcg32) {
        assert_eq!(x.len(), y.len());
        self.y = y.to_vec();
        self.n_classes = n_classes;
        if x.is_empty() {
            self.index = None;
            return;
        }
        let store = VectorStore::from_rows(x);
        let metric = self.metric.to_metric();
        self.index = Some(match self.backend {
            KnnBackend::Exact => KnnIndex::Flat(FlatIndex::new(store, metric)),
            KnnBackend::Ivf { nlist, nprobe } => KnnIndex::Ivf(IvfIndex::build(
                store,
                metric,
                &IvfConfig {
                    nlist,
                    nprobe,
                    ..Default::default()
                },
            )),
            KnnBackend::Sq8 {
                nlist,
                nprobe,
                rerank_factor,
            } => KnnIndex::Sq8(Sq8Index::build(
                store,
                metric,
                &Sq8Config {
                    nlist,
                    nprobe,
                    rerank_factor,
                    ..Default::default()
                },
            )),
        });
    }

    fn predict(&self, q: &[f32]) -> u32 {
        match &self.index {
            None => 0,
            Some(ix) => self.vote(&ix.as_dyn().search(q, self.k)),
        }
    }

    fn predict_batch(&self, xs: &[Vec<f32>]) -> Vec<u32> {
        let refs: Vec<&[f32]> = xs.iter().map(Vec::as_slice).collect();
        self.predict_batch_refs(&refs)
    }

    fn predict_batch_refs(&self, xs: &[&[f32]]) -> Vec<u32> {
        match &self.index {
            None => vec![0; xs.len()],
            Some(ix) => ix
                .as_dyn()
                .search_batch(xs, self.k)
                .iter()
                .map(|hits| self.vote(hits))
                .collect(),
        }
    }

    fn export_state(&self) -> Option<ClassifierState> {
        Some(ClassifierState::Knn(self.to_state()))
    }
}

/// Row-major copy of a store's vectors.
fn flatten(store: &VectorStore) -> Vec<f32> {
    let mut out = Vec::with_capacity(store.len() * store.dim());
    for row in store.iter() {
        out.extend_from_slice(row);
    }
    out
}

/// Rebuild a store from a row-major float buffer (caller has validated
/// that `flat.len()` is a multiple of a nonzero `dim`).
fn unflatten(flat: &[f32], dim: usize) -> VectorStore {
    let mut store = VectorStore::with_capacity(dim, flat.len() / dim);
    for row in flat.chunks_exact(dim) {
        store.push(row);
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_nn_memorizes() {
        let x = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        let y = vec![0, 1, 2];
        let mut knn = Knn::new(1, KnnMetric::Euclidean);
        knn.fit(&x, &y, 3, &mut Pcg32::new(1));
        assert_eq!(knn.predict(&[0.1, 0.0]), 0);
        assert_eq!(knn.predict(&[0.9, 1.1]), 1);
        assert_eq!(knn.predict(&[5.0, 5.0]), 2);
    }

    #[test]
    fn majority_vote_smooths_noise() {
        // One mislabeled point among many correct ones.
        let mut x = vec![vec![0.0f32]; 9];
        for (i, v) in x.iter_mut().enumerate() {
            v[0] = i as f32 * 0.01;
        }
        let mut y = vec![0u32; 9];
        y[4] = 1; // noise
        let mut knn = Knn::new(5, KnnMetric::Euclidean);
        knn.fit(&x, &y, 2, &mut Pcg32::new(2));
        assert_eq!(knn.predict(&[0.04]), 0);
    }

    #[test]
    fn cosine_metric_ignores_magnitude() {
        let x = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let y = vec![0, 1];
        let mut knn = Knn::new(1, KnnMetric::Cosine);
        knn.fit(&x, &y, 2, &mut Pcg32::new(3));
        // A large vector along axis 0 is still class 0 under cosine.
        assert_eq!(knn.predict(&[100.0, 1.0]), 0);
        assert_eq!(knn.predict(&[0.5, 60.0]), 1);
    }

    #[test]
    fn empty_training_set() {
        let knn = Knn::new(3, KnnMetric::Euclidean);
        assert_eq!(knn.predict(&[1.0]), 0);
        assert_eq!(knn.predict_batch(&[vec![1.0], vec![2.0]]), vec![0, 0]);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0, 1];
        let mut knn = Knn::new(10, KnnMetric::Euclidean);
        knn.fit(&x, &y, 2, &mut Pcg32::new(4));
        // The index returns every row; the 1-1 vote tie resolves to the
        // lower class id.
        assert_eq!(knn.predict(&[0.4]), 0);
    }

    #[test]
    fn try_new_rejects_zero_k() {
        let err = Knn::try_new(0, KnnMetric::Euclidean).unwrap_err();
        assert!(matches!(err, LearnError::InvalidK { k: 0 }));
        assert!(err.to_string().contains("k"));
        assert!(Knn::try_new(1, KnnMetric::Cosine).is_ok());
    }

    #[test]
    #[should_panic(expected = "k")]
    fn new_panics_on_zero_k_with_the_error_message() {
        let _ = Knn::new(0, KnnMetric::Euclidean);
    }

    #[test]
    fn cosine_zero_vectors_cannot_poison_selection() {
        // Regression: `1 - cosine` used to go NaN on zero vectors and
        // `partial_cmp(..).unwrap_or(Equal)` let the NaN corrupt the
        // k-selection. Zero vectors now sit at distance exactly 1.
        let x = vec![
            vec![0.0, 0.0],  // zero vector, class 0
            vec![1.0, 0.0],  // class 1
            vec![0.0, 1.0],  // class 1
            vec![-1.0, 0.0], // class 2 (distance 2 from [1,0] queries)
        ];
        let y = vec![0, 1, 1, 2];
        let mut knn = Knn::new(3, KnnMetric::Cosine);
        knn.fit(&x, &y, 3, &mut Pcg32::new(5));
        // Query aligned with [1,0]: the k=3 selection is row 1 (d=0)
        // plus the d=1 tie broken to the lower ids (rows 0, 2) — class 1
        // outvotes the zero row 2-to-1. No NaN anywhere.
        assert_eq!(knn.predict(&[10.0, 0.0]), 1);
        // A zero-vector *query* is at distance exactly 1 from
        // everything: the selection is the three lowest row ids
        // (0, 1, 2) — deterministic, and class 1 wins 2-to-1.
        assert_eq!(knn.predict(&[0.0, 0.0]), 1);
    }

    #[test]
    fn denormal_vectors_are_ordinary_citizens() {
        let tiny = f32::MIN_POSITIVE / 4.0;
        let x = vec![vec![tiny, 0.0], vec![0.0, 1.0]];
        let y = vec![0, 1];
        let mut knn = Knn::new(1, KnnMetric::Cosine);
        knn.fit(&x, &y, 2, &mut Pcg32::new(6));
        // A denormal along axis 0 still encodes direction... unless the
        // norm underflows to 0, in which case it degrades to the defined
        // zero-vector behavior — either way: no NaN, no panic.
        let p = knn.predict(&[1.0, 0.0]);
        assert!(p < 2);
        let p = knn.predict(&[tiny, tiny]);
        assert!(p < 2);
    }

    #[test]
    fn nan_training_row_never_wins() {
        let x = vec![vec![f32::NAN, 0.0], vec![5.0, 5.0]];
        let y = vec![0, 1];
        let mut knn = Knn::new(1, KnnMetric::Euclidean);
        knn.fit(&x, &y, 2, &mut Pcg32::new(7));
        // NaN distance sorts after every real distance: the finite row
        // wins even though it is far away.
        assert_eq!(knn.predict(&[0.0, 0.0]), 1);
    }

    #[test]
    fn ivf_backend_agrees_on_clustered_data() {
        let mut rng = Pcg32::new(8);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in [(0.0f32, 0.0f32), (10.0, 10.0), (0.0, 10.0)]
            .iter()
            .enumerate()
        {
            for _ in 0..40 {
                x.push(vec![cx + rng.normal() * 0.4, cy + rng.normal() * 0.4]);
                y.push(c as u32);
            }
        }
        let mut exact = Knn::new(5, KnnMetric::Euclidean);
        exact.fit(&x, &y, 3, &mut Pcg32::new(9));
        let mut ann = Knn::new(5, KnnMetric::Euclidean).with_backend(KnnBackend::Ivf {
            nlist: 3,
            nprobe: 1,
        });
        ann.fit(&x, &y, 3, &mut Pcg32::new(9));
        for q in [[0.5f32, -0.2], [9.6, 10.3], [0.2, 9.8]] {
            assert_eq!(exact.predict(&q), ann.predict(&q));
        }
        let stats = ann.index().unwrap().stats();
        assert_eq!(stats.searches, 3);
        assert!(
            stats.candidates < 3 * 120,
            "ANN must scan fewer candidates than exact: {stats:?}"
        );
    }

    #[test]
    fn sq8_backend_agrees_on_clustered_data() {
        let mut rng = Pcg32::new(12);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in [(0.0f32, 0.0f32), (10.0, 10.0), (0.0, 10.0)]
            .iter()
            .enumerate()
        {
            for _ in 0..40 {
                x.push(vec![cx + rng.normal() * 0.4, cy + rng.normal() * 0.4]);
                y.push(c as u32);
            }
        }
        let mut exact = Knn::new(5, KnnMetric::Euclidean);
        exact.fit(&x, &y, 3, &mut Pcg32::new(13));
        // Flat SQ8 with re-ranking: the exact re-score makes the final
        // neighbor set match the exact scan on separated clusters.
        let mut quant = Knn::new(5, KnnMetric::Euclidean).with_backend(KnnBackend::Sq8 {
            nlist: 0,
            nprobe: 1,
            rerank_factor: 4,
        });
        quant.fit(&x, &y, 3, &mut Pcg32::new(13));
        for q in [[0.5f32, -0.2], [9.6, 10.3], [0.2, 9.8]] {
            assert_eq!(exact.predict(&q), quant.predict(&q));
        }
        let stats = quant.index().unwrap().stats();
        assert_eq!(stats.backend, "sq8");
        let flat_bytes = exact.index().unwrap().stats().resident_bytes;
        // Codes + quantizer + retained f32 rows still undercut… nothing
        // at dim 2 — just sanity-check the field is populated.
        assert!(stats.resident_bytes > 0 && flat_bytes > 0);
    }

    #[test]
    fn predict_batch_matches_predict() {
        let mut rng = Pcg32::new(10);
        let x: Vec<Vec<f32>> = (0..60)
            .map(|_| vec![rng.normal(), rng.normal(), rng.normal()])
            .collect();
        let y: Vec<u32> = (0..60).map(|i| (i % 4) as u32).collect();
        for backend in [
            KnnBackend::Exact,
            KnnBackend::Ivf {
                nlist: 4,
                nprobe: 4,
            },
            KnnBackend::Sq8 {
                nlist: 4,
                nprobe: 4,
                rerank_factor: 2,
            },
            KnnBackend::Sq8 {
                nlist: 0,
                nprobe: 1,
                rerank_factor: 0,
            },
        ] {
            let mut knn = Knn::new(3, KnnMetric::Euclidean).with_backend(backend);
            knn.fit(&x, &y, 4, &mut Pcg32::new(11));
            let queries: Vec<Vec<f32>> = (0..10)
                .map(|_| vec![rng.normal(), rng.normal(), rng.normal()])
                .collect();
            let batched = knn.predict_batch(&queries);
            for (q, &b) in queries.iter().zip(&batched) {
                assert_eq!(b, knn.predict(q), "backend {backend:?}");
            }
        }
    }
}
