//! # querc — database-agnostic workload management
//!
//! A from-scratch reproduction of the system described in *Database-
//! Agnostic Workload Management* (Jain, Yan, Cruanes, Howe — CIDR 2019).
//!
//! Querc models every workload-management task as **query labeling**:
//!
//! * a [`classifier::QueryClassifier`] is a pre-trained *(embedder,
//!   labeler)* pair — the embedder maps SQL text to a vector
//!   (`querc-embed`), the labeler maps vectors to string labels
//!   (`querc-learn`);
//! * [`qworker::Qworker`]s consume per-application query streams, attach
//!   labels, and forward the labeled queries to the database and/or the
//!   training module (paper Fig 1);
//! * the [`training::TrainingModule`] accumulates labeled queries,
//!   periodically (re)trains embedders and labelers as batch jobs, and
//!   deploys them through the versioned [`registry::ModelRegistry`];
//! * applications live under [`apps`], every one behind the uniform
//!   [`apps::WorkloadApp`] trait: workload summarization for index
//!   recommendation (§5.1), security auditing (§5.2), query-routing
//!   policy checks, error prediction, resource allocation hints, and
//!   next-query recommendation (§4);
//! * the [`service::WorkloadManager`] is the serving façade: it owns the
//!   registry, fits and registers apps by name, shards each app's query
//!   stream across single-consumer Qworker threads (hash-routed by
//!   tenant so per-tenant order is preserved), applies backpressure
//!   through bounded shard queues, and batches the hot path end to end
//!   (`submit`/`submit_batch`/`drain`, per-app throughput counters and
//!   [`histogram::LatencyHistogram`] p50/p95/p99 latency);
//! * multi-tenant **QoS** ([`qos`]) isolates tenants on that serving
//!   path: per-tenant token-bucket admission control at `submit`,
//!   deficit-round-robin fair dequeue across per-tenant subqueues
//!   inside every shard worker, and explicit load shedding
//!   ([`error::QuercError::Rejected`] with per-tenant counts and
//!   latency quantiles in [`service::ServiceDrain::qos`]) instead of
//!   blanket backpressure — off by default, enabled via
//!   [`service::WorkloadManagerConfig::qos`];
//! * queries are parsed, fingerprinted, and embedded **once at manager
//!   ingress**: the [`embed_plane::EmbedPlane`] keys a sharded, bounded
//!   LRU vector cache by template fingerprint
//!   (`querc_sql::fingerprint`) and embedder namespace, and the
//!   resulting `Arc<Vec<f32>>` rides the [`enriched::EnrichedQuery`]
//!   envelope to every app shard — repeated templates serve with zero
//!   embedding work, and cache hit-rates surface per app in
//!   [`service::AppThroughput`];
//! * every nearest-neighbor lookup behind those labels (kNN labelers,
//!   centroid assignment in the recommend/summarize apps) goes through
//!   the `querc-index` **vector search plane** — contiguous stores,
//!   exact blocked scans, opt-in IVF ANN — and each app's search
//!   counters (probes, candidates scanned, exact vs ANN) surface in
//!   [`service::AppThroughput::index`] next to the embed-cache
//!   hit-rates;
//! * the whole serving stack is **restartable**:
//!   [`service::WorkloadManager::checkpoint`] writes a versioned,
//!   per-section-checksummed snapshot (`querc-persist`) of every fitted
//!   app, the registry's pinned versions and history, and the warm
//!   embed-cache entries; [`service::WorkloadManager::restore`] brings
//!   it all back — bit-identical labels without refitting, warm cache
//!   from the first batch — and
//!   [`service::WorkloadManager::checkpoint_delta`] appends
//!   newly-cached vectors between full checkpoints;
//! * every fallible surface reports [`error::QuercError`] instead of
//!   panicking — a torn or hand-edited snapshot included
//!   ([`error::QuercError::Corrupt`]).
//!
//! The only message type between components is a query plus labels —
//! [`labeled::LabeledQuery`], the `(Q, c1, c2, …)` tuple of the paper's
//! data model ([`enriched::EnrichedQuery`] is that tuple plus memoized
//! derived artifacts on the serving hot path).

#![deny(missing_docs)]

pub mod apps;
pub mod classifier;
pub mod embed_plane;
pub mod enriched;
pub mod error;
pub mod histogram;
pub mod labeled;
mod persist;
pub mod qos;
pub mod qworker;
pub mod registry;
pub mod service;
pub mod training;

pub use apps::{AppOutput, AppReport, TrainCorpus, WorkloadApp};
pub use classifier::{LabelMap, LabelerState, QueryClassifier, TrainedLabeler};
pub use embed_plane::{EmbedCacheStats, EmbedPlane, EmbedPlaneConfig};
pub use enriched::EnrichedQuery;
pub use error::{QuercError, Result};
pub use histogram::{LatencyHistogram, LatencySnapshot};
pub use labeled::LabeledQuery;
pub use qos::{
    DrrScheduler, QosConfig, QosDrain, RateLimit, RejectReason, TenantPolicy, TenantSnapshot,
    TokenBucket,
};
pub use qworker::{Qworker, QworkerMode, TimedQuery};
pub use registry::{ModelRegistry, RegistryEvent};
pub use service::{
    lineage_routing_key, routing_key, shard_for, AppThroughput, FittedApp, KernelPolicy,
    RoutingPolicy, ServiceDrain, WorkloadManager, WorkloadManagerConfig,
};
pub use training::{EmbedderKind, TrainingConfig, TrainingModule};
