//! Coverage-guided fuzz plane for the parser.
//!
//! Two generators feed the parser:
//!
//! 1. A *grammar-directed* builder that consumes a random decision-byte
//!    stream and emits syntactically plausible SQL (CTEs, joins, derived
//!    tables, set operations, subquery predicates, window QUALIFY). Every
//!    emitted query must parse to a `Select` shape whose base-table reads
//!    stay inside the generator's table pool — CTE names must never leak
//!    into lineage.
//! 2. Raw token-soup and byte-soup streams that exercise recovery paths.
//!
//! All inputs are parsed under all six dialects and must uphold parser
//! totality: no panics, `subquery_depth` bounded by [`MAX_PARSE_DEPTH`],
//! deterministic output, and (for dialect-neutral text) identical
//! template fingerprints in every dialect.

use proptest::prelude::*;
use querc_sql::parser::MAX_PARSE_DEPTH;
use querc_sql::{parse_query, template_fingerprint, Dialect, StatementKind};

const TABLES: [&str; 6] = ["t0", "t1", "t2", "t3", "t4", "t5"];
const COLS: [&str; 6] = ["a", "b", "k", "v", "ts", "region"];
/// Token soup pool: SQL fragments in hostile orders.
const SOUP: [&str; 24] = [
    "SELECT", "FROM", "WHERE", "JOIN", "ON", "GROUP", "BY", "UNION", "ALL", "WITH", "AS", "(", ")",
    ",", "=", "<", "'x'", "42", "t0", "a", "*", "QUALIFY", "EXCEPT", "TOP",
];

/// Deterministic decision stream: yields the next byte, 0 once exhausted.
struct Decisions<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decisions<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Decisions { bytes, pos: 0 }
    }
    fn next(&mut self) -> usize {
        let v = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        v as usize
    }
    fn table(&mut self) -> &'static str {
        TABLES[self.next() % TABLES.len()]
    }
    fn col(&mut self) -> &'static str {
        COLS[self.next() % COLS.len()]
    }
}

fn gen_predicate(g: &mut Decisions, depth: usize) -> String {
    match g.next() % 7 {
        0 => format!("{} = {}", g.col(), g.next()),
        1 => format!("{} > {}", g.col(), g.next() % 100),
        2 => format!("{} = 'v{}'", g.col(), g.next() % 10),
        3 => format!(
            "{} BETWEEN {} AND {}",
            g.col(),
            g.next() % 50,
            50 + g.next() % 50
        ),
        4 => format!("{} IN ({}, {})", g.col(), g.next() % 9, g.next() % 9),
        5 if depth < 4 => format!("EXISTS ({})", gen_select(g, depth + 1)),
        _ => format!("{} IS NOT NULL", g.col()),
    }
}

fn gen_from_item(g: &mut Decisions, depth: usize, cte: Option<&str>) -> String {
    match g.next() % 5 {
        0 | 1 => g.table().to_string(),
        2 => format!("{} x{}", g.table(), g.next() % 4),
        3 if depth < 4 => format!("({}) d{}", gen_select(g, depth + 1), g.next() % 4),
        _ => cte.unwrap_or_else(|| g.table()).to_string(),
    }
}

fn gen_select(g: &mut Decisions, depth: usize) -> String {
    gen_select_with(g, depth, None)
}

fn gen_select_with(g: &mut Decisions, depth: usize, cte: Option<&str>) -> String {
    let mut s = String::from("SELECT ");
    if g.next().is_multiple_of(4) {
        s.push_str("DISTINCT ");
    }
    for i in 0..1 + g.next() % 3 {
        if i > 0 {
            s.push_str(", ");
        }
        match g.next() % 4 {
            0 => s.push_str(&format!("sum({})", g.col())),
            1 => s.push_str("count(*)"),
            _ => s.push_str(g.col()),
        }
    }
    s.push_str(" FROM ");
    s.push_str(&gen_from_item(g, depth, cte));
    if g.next().is_multiple_of(3) {
        let join = ["JOIN", "LEFT JOIN", "CROSS JOIN"][g.next() % 3];
        s.push_str(&format!(" {join} {}", gen_from_item(g, depth, cte)));
        if !join.starts_with("CROSS") {
            s.push_str(&format!(" ON {} = {}", g.col(), g.col()));
        }
    }
    if g.next().is_multiple_of(2) {
        s.push_str(" WHERE ");
        s.push_str(&gen_predicate(g, depth));
        if g.next().is_multiple_of(3) {
            let conj = if g.next().is_multiple_of(2) {
                "AND"
            } else {
                "OR"
            };
            s.push_str(&format!(" {conj} {}", gen_predicate(g, depth)));
        }
    }
    if g.next().is_multiple_of(4) {
        s.push_str(&format!(" GROUP BY {}", g.col()));
        if g.next().is_multiple_of(2) {
            s.push_str(&format!(" HAVING count(*) > {}", g.next() % 10));
        }
    }
    if depth == 0 && g.next().is_multiple_of(5) {
        s.push_str(&format!(
            " QUALIFY row_number() OVER (PARTITION BY {} ORDER BY {}) = 1",
            g.col(),
            g.col()
        ));
    }
    if depth == 0 && g.next().is_multiple_of(3) {
        s.push_str(&format!(
            " ORDER BY {} LIMIT {}",
            g.col(),
            1 + g.next() % 100
        ));
    }
    s
}

/// Top-level statement: optional CTE prelude, select core, set-op tail.
fn build_query(bytes: &[u8]) -> String {
    let g = &mut Decisions::new(bytes);
    let mut s = String::new();
    let cte = if g.next().is_multiple_of(3) {
        s.push_str(&format!("WITH c0 AS ({}) ", gen_select(g, 1)));
        Some("c0")
    } else {
        None
    };
    s.push_str(&gen_select_with(g, 0, cte));
    let mut ops = 0;
    while ops < 3 && g.next().is_multiple_of(4) {
        let op = ["UNION", "UNION ALL", "INTERSECT", "EXCEPT"][g.next() % 4];
        s.push_str(&format!(" {op} {}", gen_select(g, 1)));
        ops += 1;
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Grammar-directed fuzz: every generated query parses as a Select in
    /// every dialect, stays depth-bounded, keeps `distinct_tables` sorted
    /// and unique, and never leaks a CTE name into lineage reads.
    #[test]
    fn grammar_fuzz_totality(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let sql = build_query(&bytes);
        for d in Dialect::all() {
            let shape = parse_query(&sql, d);
            prop_assert!(shape.kind == Some(StatementKind::Select), "{}", sql);
            prop_assert!(
                shape.subquery_depth <= MAX_PARSE_DEPTH + 1,
                "depth {} for {}", shape.subquery_depth, sql
            );
            let dt = shape.distinct_tables();
            prop_assert!(dt.windows(2).all(|w| w[0] < w[1]), "{:?} from {}", dt, sql);
            let lin = shape.lineage();
            for r in &lin.reads {
                prop_assert!(
                    TABLES.contains(&r.as_str()),
                    "read {:?} outside table pool for {}", r, sql
                );
            }
            prop_assert!(lin.writes.is_empty() && lin.views.is_empty(), "{}", sql);
        }
    }

    /// Generated SQL is dialect-neutral text, so its template fingerprint
    /// must be identical under all six dialects (cross-dialect routing
    /// stability: the same workload hashes to the same template).
    #[test]
    fn grammar_fuzz_cross_dialect_fingerprint(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let sql = build_query(&bytes);
        let expect = template_fingerprint(&sql, Dialect::Generic);
        for d in Dialect::all() {
            prop_assert!(expect == template_fingerprint(&sql, d), "{}", sql);
        }
    }

    /// Parsing is a pure function of (sql, dialect).
    #[test]
    fn grammar_fuzz_deterministic(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let sql = build_query(&bytes);
        for d in Dialect::all() {
            prop_assert_eq!(parse_query(&sql, d), parse_query(&sql, d));
        }
    }

    /// Token soup: valid SQL fragments in arbitrary order must never
    /// panic or blow the depth bound, in any dialect.
    #[test]
    fn token_soup_fuzz(picks in prop::collection::vec(0usize..SOUP.len(), 0..48)) {
        let sql = picks.iter().map(|&i| SOUP[i]).collect::<Vec<_>>().join(" ");
        for d in Dialect::all() {
            let shape = parse_query(&sql, d);
            prop_assert!(shape.subquery_depth <= MAX_PARSE_DEPTH + 1, "{}", sql);
            let dt = shape.distinct_tables();
            prop_assert!(dt.windows(2).all(|w| w[0] < w[1]), "{:?} from {}", dt, sql);
        }
    }

    /// Byte soup: totally arbitrary text is handled by every dialect,
    /// deterministically and depth-bounded.
    #[test]
    fn byte_soup_fuzz(s in ".{0,240}") {
        for d in Dialect::all() {
            let shape = parse_query(&s, d);
            prop_assert!(shape.subquery_depth <= MAX_PARSE_DEPTH + 1);
            prop_assert_eq!(&shape, &parse_query(&s, d));
        }
    }

    /// `distinct_tables` equals the sorted, deduplicated table list for a
    /// FROM clause built from arbitrary picks out of the table pool.
    #[test]
    fn distinct_tables_matches_sorted_dedup(
        picks in prop::collection::vec(0usize..TABLES.len(), 1..8),
    ) {
        let from = picks.iter().map(|&i| TABLES[i]).collect::<Vec<_>>().join(", ");
        let sql = format!("SELECT a FROM {from}");
        let shape = parse_query(&sql, Dialect::Generic);
        let mut expect: Vec<String> = picks.iter().map(|&i| TABLES[i].to_string()).collect();
        expect.sort();
        expect.dedup();
        prop_assert_eq!(shape.distinct_tables(), expect);
    }
}
