//! Summarization benchmarks (the Fig 3 pipeline's offline half) and the
//! ablation the paper's §5.1 implies: embedding + K-means versus the
//! classical syntactic K-medoids, across workload sizes. K-medoids is
//! O(k·n²) per swap pass — the crossover against embed-everything+K-means
//! is the practical argument for the Querc design at cloud scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use querc::apps::summarize::{summarize_workload, SummaryConfig, SummaryMethod};
use querc_embed::BagOfTokens;
use querc_workloads::TpchWorkload;
use std::hint::black_box;

fn bench_summary_methods(c: &mut Criterion) {
    let embedder = BagOfTokens::new(128, true);
    let mut g = c.benchmark_group("summarize");
    g.sample_size(10);
    for per_template in [2usize, 6, 12] {
        let w = TpchWorkload::generate(per_template, 9);
        let sqls: Vec<String> = w.queries.into_iter().map(|q| q.sql).collect();
        let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
        let cfg = SummaryConfig {
            k: Some(20),
            ..Default::default()
        };
        g.bench_with_input(
            BenchmarkId::new("embedding_kmeans", refs.len()),
            &refs,
            |b, refs| {
                b.iter(|| {
                    black_box(summarize_workload(
                        refs,
                        &SummaryMethod::Embedding(&embedder),
                        &cfg,
                    ))
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("syntactic_kmedoids", refs.len()),
            &refs,
            |b, refs| {
                b.iter(|| {
                    black_box(summarize_workload(
                        refs,
                        &SummaryMethod::SyntacticKMedoids,
                        &cfg,
                    ))
                })
            },
        );
    }
    g.finish();
}

fn bench_elbow(c: &mut Criterion) {
    let w = TpchWorkload::generate(4, 11);
    let sqls: Vec<String> = w.queries.into_iter().map(|q| q.sql).collect();
    let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
    let embedder = BagOfTokens::new(128, true);
    let mut g = c.benchmark_group("summarize_k_selection");
    g.sample_size(10);
    g.bench_function("elbow_scan_4_to_26", |b| {
        let cfg = SummaryConfig {
            k: None,
            k_min: 4,
            k_max: 26,
            plateau: 0.01,
            seed: 5,
        };
        b.iter(|| {
            black_box(summarize_workload(
                &refs,
                &SummaryMethod::Embedding(&embedder),
                &cfg,
            ))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_summary_methods, bench_elbow
}
criterion_main!(benches);
