//! Deterministic random number generation.
//!
//! All randomized algorithms in the workspace take an explicit [`Pcg32`]
//! so every experiment is reproducible from a seed printed in its header.
//! PCG-XSH-RR 64/32 (O'Neill 2014) is small, fast, and passes BigCrush for
//! the sizes used here.

/// A PCG-XSH-RR 64/32 pseudo-random generator.
///
/// Supports independent *streams*: two generators with the same seed but
/// different stream identifiers produce uncorrelated sequences, which lets
/// each component of an experiment (workload generation, model init,
/// shuffling, …) derive its own generator from a single experiment seed.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Create a generator from a seed, using the default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Create a generator from a seed on a specific stream.
    ///
    /// Distinct `stream` values yield statistically independent sequences
    /// even under identical seeds.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Derive a child generator on an independent stream.
    ///
    /// Useful to hand sub-components their own generator without sharing
    /// mutable state; `label` distinguishes siblings.
    pub fn split(&mut self, label: u64) -> Pcg32 {
        let seed = ((self.next_u32() as u64) << 32) | self.next_u32() as u64;
        Pcg32::with_stream(seed, label.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    /// Next raw 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next raw 64-bit output (two 32-bit draws).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn f32(&mut self) -> f32 {
        // 24 mantissa bits of a u32 — uniform dyadic rationals in [0,1).
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift with
    /// rejection, avoiding modulo bias. `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "below(0) is undefined");
        loop {
            let x = self.next_u32();
            let m = (x as u64) * (bound as u64);
            let lo = m as u32;
            if lo >= bound || lo >= (u32::MAX - bound + 1) % bound {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform usize in `[0, bound)`.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0 && bound <= u32::MAX as usize);
        self.below(bound as u32) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        if span <= u32::MAX as u64 {
            lo + self.below(span as u32) as i64
        } else {
            lo + (self.next_u64() % span) as i64
        }
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.f32()
    }

    /// Standard normal draw via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        let u1 = (1.0 - self.f64()) as f32; // avoid ln(0)
        let u2 = self.f32();
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element by reference. Panics on empty input.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below_usize(items.len())]
    }

    /// Sample `k` distinct indices from `[0, n)` (reservoir if k << n).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n);
        // Floyd's algorithm: O(k) expected with a small set.
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.below_usize(j + 1);
            let pick = if chosen.contains(&t) { j } else { t };
            chosen.insert(pick);
            out.push(pick);
        }
        out
    }

    /// Draw an index from explicit (unnormalized, non-negative) weights.
    ///
    /// Linear scan — fine for small weight vectors; use
    /// [`crate::AliasTable`] for repeated draws from large distributions.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = Pcg32::new(42);
        let mut b = Pcg32::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "{same} collisions in 64 draws");
    }

    #[test]
    fn streams_are_independent() {
        let mut a = Pcg32::with_stream(7, 1);
        let mut b = Pcg32::with_stream(7, 2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = Pcg32::new(3);
        for _ in 0..10_000 {
            let x = rng.f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Pcg32::new(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Pcg32::new(11);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!((c as i64 - expected as i64).abs() < (expected / 10) as i64);
        }
    }

    #[test]
    fn range_i64_inclusive() {
        let mut rng = Pcg32::new(8);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = rng.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn normal_mean_and_var() {
        let mut rng = Pcg32::new(13);
        let n = 50_000;
        let draws: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = draws.iter().sum::<f32>() / n as f32;
        let var: f32 = draws.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::new(21);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn sample_indices_distinct_in_range() {
        let mut rng = Pcg32::new(34);
        for _ in 0..50 {
            let ids = rng.sample_indices(30, 10);
            assert_eq!(ids.len(), 10);
            let set: std::collections::HashSet<_> = ids.iter().collect();
            assert_eq!(set.len(), 10);
            assert!(ids.iter().all(|&i| i < 30));
        }
    }

    #[test]
    fn weighted_prefers_heavy_entries() {
        let mut rng = Pcg32::new(55);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > 8 * counts[0] / 2, "{counts:?}");
    }

    #[test]
    fn split_children_are_uncorrelated() {
        let mut root = Pcg32::new(99);
        let mut a = root.split(1);
        let mut b = root.split(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }
}
