//! Offline workload analytics: clustering, error prediction, resource
//! classes and next-query recommendation, all from one embedding space.
//!
//! Demonstrates the architectural point of Querc: one learned
//! representation feeds every application (paper §2's split design).
//!
//! Run with: `cargo run --release --example workload_explorer`

use querc::apps::errors::ErrorPredictor;
use querc::apps::recommend::QueryRecommender;
use querc::apps::resources::{ResourceBuckets, ResourcePredictor};
use querc_cluster::{choose_k_elbow, kmeans, mean_silhouette, KMeansConfig};
use querc_embed::{BagOfTokens, Embedder};
use querc_linalg::Pcg32;
use querc_workloads::{SnowCloud, SnowCloudConfig};
use std::sync::Arc;

fn main() {
    let wl = SnowCloud::generate(&SnowCloudConfig::pretrain(6, 80, 3));
    println!("workload: {} queries from 6 tenants", wl.records.len());

    // One shared embedder for every application below.
    let embedder: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(128, true));

    // --- clustering + elbow + silhouette ---------------------------------
    let points: Vec<Vec<f32>> = wl
        .records
        .iter()
        .map(|r| embedder.embed(&r.tokens()))
        .collect();
    let mut rng = Pcg32::new(21);
    let k = choose_k_elbow(&points, 2, 16, 0.02, &mut rng);
    let clustering = kmeans(
        &points,
        &KMeansConfig {
            k,
            ..Default::default()
        },
        &mut rng,
    );
    let sil = mean_silhouette(&points, &clustering.assignments);
    println!("\nclustering: elbow chose k = {k}, silhouette {sil:.2}");
    let witnesses = clustering.witnesses(&points);
    for (c, (&w, size)) in witnesses.iter().zip(clustering.sizes()).enumerate() {
        let sql = &wl.records[w].sql;
        println!(
            "  cluster {c} ({size:>3} queries): {}",
            &sql[..sql.len().min(84)]
        );
    }

    // --- error prediction -------------------------------------------------
    let errors = wl.records.iter().filter(|r| r.is_error()).count();
    let predictor = ErrorPredictor::train(&wl.records, Arc::clone(&embedder), 0.5, 5);
    println!("\nerror prediction: {errors} failures in the log");
    let risky = wl
        .records
        .iter()
        .filter(|r| predictor.assess(&r.sql).risky)
        .count();
    println!("  {risky} queries flagged as risky before execution");

    // --- resource classes --------------------------------------------------
    let buckets = ResourceBuckets::default();
    let resources = ResourcePredictor::train(&wl.records, Arc::clone(&embedder), buckets, 9);
    println!(
        "\nresource hints (held-in accuracy {:.0}%):",
        resources.holdout_accuracy(&wl.records) * 100.0
    );
    for r in wl.records.iter().take(3) {
        println!(
            "  predicted `{}` for: {}",
            resources.predict(&r.sql).name(),
            &r.sql[..r.sql.len().min(70)]
        );
    }

    // --- next-query recommendation -----------------------------------------
    // Per-user ordered histories from the log.
    let mut by_user: std::collections::BTreeMap<&str, Vec<String>> = Default::default();
    for r in &wl.records {
        by_user
            .entry(r.user.as_str())
            .or_default()
            .push(r.sql.clone());
    }
    let histories: Vec<Vec<String>> = by_user.into_values().filter(|h| h.len() >= 3).collect();
    let recommender = QueryRecommender::train(&histories, Arc::clone(&embedder), k, 13);
    let last = &wl.records[0].sql;
    println!("\nafter: {}", &last[..last.len().min(84)]);
    println!("recommend next: {}", {
        let r = recommender.recommend(last);
        &r[..r.len().min(84)]
    });
}
