//! # querc-workloads
//!
//! Workload generators and the query-log record model.
//!
//! Two workload families drive the paper's evaluation:
//!
//! * [`tpch`] — all 22 TPC-H query templates with spec-style parameter
//!   substitution. ~38 instances per template reproduces the ~800-query
//!   workload of the §5.1 index-selection experiment.
//! * [`snowcloud`] — "SnowCloud", a synthetic multi-tenant cloud warehouse
//!   workload standing in for the proprietary Snowflake logs of §5.2:
//!   per-account schemas (disjoint identifier vocabularies), per-user
//!   query-habit mixtures, dialect variation, and *repetitive* accounts in
//!   which many users issue verbatim-identical query text — the exact
//!   mechanism the paper identifies for its low per-account user-labeling
//!   accuracies (Table 2).
//!
//! [`record::QueryRecord`] is the labeled-query tuple `(Q, c1, c2, …)` of
//! the paper's data model, carrying the training labels (user, account,
//! cluster, runtime, memory, error code) used by the application layer.
//!
//! [`replay`] turns either corpus into a timed, deterministic query
//! stream (configurable QPS and burstiness) for load-testing the
//! serving layer.

#![deny(missing_docs)]

pub mod record;
pub mod replay;
pub mod snowcloud;
pub mod tpch;

pub use record::QueryRecord;
pub use replay::{ReplayConfig, ReplayEvent, ReplaySchedule, ReplayStats, TenantMix};
pub use snowcloud::{AccountSpec, SnowCloud, SnowCloudConfig};
pub use tpch::{TpchQuery, TpchWorkload};
