//! The lightweight query-shape model extracted by [`crate::parser`].
//!
//! `QueryShape` is intentionally *not* a full AST: Querc only needs the
//! structural facts that drive the database simulator's optimizer (tables,
//! join graph, sargable predicates, grouping) and the baseline feature
//! extractor. Anything the parser cannot interpret is skipped, never fatal.

/// Top-level statement class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are the documentation
pub enum StatementKind {
    Select,
    Insert,
    Update,
    Delete,
    CreateTable,
    CreateView,
    Drop,
    Copy,
    Show,
    Set,
    Other,
}

/// A table reference in FROM, with its optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Unqualified lowercase table name (last path component).
    pub name: String,
    /// Full dotted path as written, lowercase (e.g. `tpch.public.orders`).
    pub path: String,
    /// Alias bound in the FROM clause, lowercase, if any.
    pub alias: Option<String>,
}

/// A possibly-qualified column reference, lowercase.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table name or alias qualifier if written.
    pub qualifier: Option<String>,
    /// Column name, lowercase.
    pub column: String,
}

impl ColumnRef {
    /// Build a reference, lowercasing both parts.
    pub fn new(qualifier: Option<&str>, column: &str) -> Self {
        ColumnRef {
            qualifier: qualifier.map(|q| q.to_ascii_lowercase()),
            column: column.to_ascii_lowercase(),
        }
    }

    /// `q.c` or bare `c`.
    pub fn to_string_qualified(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.column),
            None => self.column.clone(),
        }
    }
}

/// Comparison operator of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operator names are the documentation
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Like,
    In,
    Between,
    IsNull,
    IsNotNull,
    Exists,
}

/// Right-hand side of a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Rhs {
    /// Numeric literal value.
    Number(f64),
    /// String literal (quotes stripped). Dates arrive here.
    Str(String),
    /// Bind parameter.
    Param,
    /// An IN-list with this many members (literal lists only).
    List(usize),
    /// A scalar or relational subquery.
    Subquery,
    /// No RHS (IS NULL / EXISTS).
    None,
}

impl Rhs {
    /// Best-effort numeric interpretation: numbers pass through and ISO
    /// dates (`yyyy-mm-dd`) become days since 1970-01-01, so range
    /// selectivities on date columns work from parsed text alone.
    pub fn numeric(&self) -> Option<f64> {
        match self {
            Rhs::Number(n) => Some(*n),
            Rhs::Str(s) => date_to_days(s),
            _ => None,
        }
    }
}

/// Convert an ISO `yyyy-mm-dd` date to days since the Unix epoch.
/// Returns `None` for anything that does not look like a date.
pub fn date_to_days(s: &str) -> Option<f64> {
    let bytes = s.as_bytes();
    if bytes.len() < 10 || bytes[4] != b'-' || bytes[7] != b'-' {
        return None;
    }
    let year: i64 = s.get(0..4)?.parse().ok()?;
    let month: i64 = s.get(5..7)?.parse().ok()?;
    let day: i64 = s.get(8..10)?.parse().ok()?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    // Civil-from-days algorithm (Howard Hinnant), inverted.
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (month + 9) % 12;
    let doy = (153 * mp + 2) / 5 + day - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    Some((era * 146097 + doe - 719468) as f64)
}

/// What the predicate's left-hand side refers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Lhs {
    /// A plain (possibly qualified) column.
    Column(ColumnRef),
    /// An aggregate call, e.g. HAVING sum(l_quantity) > 300.
    Agg {
        /// Lowercase aggregate function name.
        func: String,
        /// Aggregated column, when the argument is a plain column.
        column: Option<ColumnRef>,
    },
}

/// One atomic filter condition.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// What the condition constrains (column or aggregate call).
    pub lhs: Lhs,
    /// The comparison operator.
    pub op: CmpOp,
    /// Right-hand side value.
    pub rhs: Rhs,
    /// Second bound for BETWEEN.
    pub rhs2: Option<Rhs>,
    /// Preceded by NOT.
    pub negated: bool,
    /// True if this condition sits under an OR somewhere — the optimizer
    /// treats such predicates as non-sargable.
    pub in_or: bool,
}

impl Predicate {
    /// The column this predicate constrains, when the LHS is a plain column.
    pub fn column(&self) -> Option<&ColumnRef> {
        match &self.lhs {
            Lhs::Column(c) => Some(c),
            Lhs::Agg { column, .. } => column.as_ref(),
        }
    }

    /// Sargable = usable for an index seek: plain column, not under OR,
    /// not negated, and a comparison against a literal/param.
    pub fn sargable(&self) -> bool {
        matches!(self.lhs, Lhs::Column(_))
            && !self.in_or
            && !self.negated
            && matches!(
                self.op,
                CmpOp::Eq
                    | CmpOp::Lt
                    | CmpOp::Le
                    | CmpOp::Gt
                    | CmpOp::Ge
                    | CmpOp::Between
                    | CmpOp::In
            )
            && !matches!(self.rhs, Rhs::Subquery | Rhs::None)
    }
}

/// An equi-join edge between two column references.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JoinEdge {
    /// Left side of the equi-join condition.
    pub left: ColumnRef,
    /// Right side of the equi-join condition.
    pub right: ColumnRef,
}

/// Aggregate call observed in the select list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggCall {
    /// Lowercase function name (`sum`, `count`, `avg`, `min`, `max`).
    pub func: String,
    /// Aggregated column, when the argument is a plain column.
    pub column: Option<ColumnRef>,
    /// `DISTINCT` inside the call.
    pub distinct: bool,
}

/// Structural summary of one SQL statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryShape {
    /// Statement class, `None` until the parser has seen a first keyword.
    pub kind: Option<StatementKind>,
    /// Every table reference encountered, subqueries and CTE bodies
    /// included (CTE *names* referenced in FROM appear here too — use
    /// [`QueryShape::lineage`] for the base-table view).
    pub tables: Vec<TableRef>,
    /// Equi-join edges from ON/USING clauses and WHERE col=col conditions.
    pub joins: Vec<JoinEdge>,
    /// WHERE-clause conditions (conjunction members, OR members flagged).
    pub predicates: Vec<Predicate>,
    /// HAVING-clause conditions.
    pub having: Vec<Predicate>,
    /// QUALIFY-clause conditions (Snowflake / BigQuery window filters).
    pub qualify: Vec<Predicate>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// ORDER BY columns.
    pub order_by: Vec<ColumnRef>,
    /// Aggregate calls observed in select lists and HAVING.
    pub aggregates: Vec<AggCall>,
    /// Number of select-list items (0 for `*`-only lists counts as 1).
    pub projections: usize,
    /// SELECT DISTINCT seen.
    pub distinct: bool,
    /// LIMIT / TOP / FETCH FIRST row bound.
    pub limit: Option<u64>,
    /// Count of UNION/INTERSECT/EXCEPT operators at the top level.
    pub set_ops: usize,
    /// Maximum subquery nesting depth below this statement.
    pub subquery_depth: usize,
    /// Count of derived tables (`FROM (SELECT …) alias`) at any depth.
    pub derived_tables: usize,
    /// Names introduced by WITH — referenced in FROM they are *not*
    /// base tables; [`QueryShape::lineage`] excludes them.
    pub cte_names: Vec<String>,
    /// The table a DML/DDL statement writes: INSERT/UPDATE/DELETE target,
    /// CREATE TABLE/VIEW name. `None` for pure reads.
    pub write_target: Option<String>,
    /// Total token count of the statement (cheap length signal).
    pub token_count: usize,
}

/// Table dependency sets of one statement — the first-class lineage
/// feature: which **base tables** a query reads, which table it writes,
/// and which view it defines. CTE names are excluded from `reads`
/// because they are query-local bindings, not stored tables.
///
/// All vectors are lowercase, sorted, and deduplicated, so lineage sets
/// compare and hash stably — [`Lineage::key`] is usable directly as a
/// routing or audit key.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Lineage {
    /// Base tables read (FROM/JOIN/subqueries), CTE names and the write
    /// target excluded.
    pub reads: Vec<String>,
    /// Table written by INSERT/UPDATE/DELETE/CREATE TABLE, if any.
    pub writes: Vec<String>,
    /// View defined by CREATE VIEW, if any.
    pub views: Vec<String>,
    /// CTE names bound by WITH (for audit visibility; never in `reads`).
    pub ctes: Vec<String>,
}

impl Lineage {
    /// Canonical routing key: the sorted read set joined with `,`, or the
    /// write target prefixed `w:` when the statement only writes. Empty
    /// when the statement touches no tables at all.
    pub fn key(&self) -> String {
        if !self.reads.is_empty() {
            self.reads.join(",")
        } else if let Some(w) = self.writes.first() {
            format!("w:{w}")
        } else if let Some(v) = self.views.first() {
            format!("v:{v}")
        } else {
            String::new()
        }
    }

    /// True when the statement touches no stored tables at all.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty() && self.views.is_empty()
    }
}

impl QueryShape {
    /// Resolve an alias or table name to the canonical table name.
    pub fn resolve_table(&self, qualifier: &str) -> Option<&str> {
        let q = qualifier.to_ascii_lowercase();
        for t in &self.tables {
            if t.name == q || t.alias.as_deref() == Some(q.as_str()) {
                return Some(&t.name);
            }
        }
        None
    }

    /// All distinct table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Distinct table names as owned strings, sorted and deduplicated —
    /// the self-join-safe counterpart of iterating [`QueryShape::tables`]
    /// (which keeps one entry per reference).
    pub fn distinct_tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.iter().map(|t| t.name.clone()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Extract the statement's table dependency sets. Base tables read
    /// are every referenced table minus CTE names and the write target;
    /// the write target lands in `writes` (or `views` for CREATE VIEW).
    pub fn lineage(&self) -> Lineage {
        let mut ctes: Vec<String> = self
            .cte_names
            .iter()
            .map(|c| c.to_ascii_lowercase())
            .collect();
        ctes.sort_unstable();
        ctes.dedup();
        let mut writes = Vec::new();
        let mut views = Vec::new();
        if let Some(target) = &self.write_target {
            match self.kind {
                Some(StatementKind::CreateView) => views.push(target.clone()),
                Some(
                    StatementKind::Insert
                    | StatementKind::Update
                    | StatementKind::Delete
                    | StatementKind::CreateTable
                    | StatementKind::Copy
                    | StatementKind::Drop,
                ) => writes.push(target.clone()),
                _ => {}
            }
        }
        let mut reads = self.distinct_tables();
        reads.retain(|t| {
            ctes.binary_search(t).is_err()
                && !writes.iter().any(|w| w == t)
                && !views.iter().any(|v| v == t)
        });
        Lineage {
            reads,
            writes,
            views,
            ctes,
        }
    }

    /// Does the statement mention this keyword-level feature (convenience
    /// for the baseline feature extractor)?
    pub fn is_select(&self) -> bool {
        self.kind == Some(StatementKind::Select)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_to_days_known_values() {
        assert_eq!(date_to_days("1970-01-01"), Some(0.0));
        assert_eq!(date_to_days("1970-01-02"), Some(1.0));
        assert_eq!(date_to_days("1971-01-01"), Some(365.0));
        assert_eq!(date_to_days("2000-01-01"), Some(10957.0));
        // TPC-H date domain endpoints.
        let lo = date_to_days("1992-01-01").unwrap();
        let hi = date_to_days("1998-12-31").unwrap();
        assert!((hi - lo - 2556.0).abs() < 1.0);
    }

    #[test]
    fn date_to_days_rejects_non_dates() {
        assert_eq!(date_to_days("hello"), None);
        assert_eq!(date_to_days("1995-13-01"), None);
        assert_eq!(date_to_days("1995-00-10"), None);
        assert_eq!(date_to_days(""), None);
        assert_eq!(date_to_days("19950101"), None);
    }

    #[test]
    fn rhs_numeric_handles_dates_and_numbers() {
        assert_eq!(Rhs::Number(5.0).numeric(), Some(5.0));
        assert_eq!(Rhs::Str("1970-01-02".into()).numeric(), Some(1.0));
        assert_eq!(Rhs::Str("FURNITURE".into()).numeric(), None);
        assert_eq!(Rhs::Param.numeric(), None);
    }

    #[test]
    fn sargability_rules() {
        let col = |op, rhs| Predicate {
            lhs: Lhs::Column(ColumnRef::new(None, "a")),
            op,
            rhs,
            rhs2: None,
            negated: false,
            in_or: false,
        };
        assert!(col(CmpOp::Eq, Rhs::Number(1.0)).sargable());
        assert!(col(CmpOp::Between, Rhs::Number(1.0)).sargable());
        assert!(!col(CmpOp::Like, Rhs::Str("x%".into())).sargable());
        assert!(!col(CmpOp::Eq, Rhs::Subquery).sargable());
        let mut p = col(CmpOp::Eq, Rhs::Number(1.0));
        p.in_or = true;
        assert!(!p.sargable());
        let mut n = col(CmpOp::Eq, Rhs::Number(1.0));
        n.negated = true;
        assert!(!n.sargable());
    }

    #[test]
    fn resolve_table_by_name_and_alias() {
        let shape = QueryShape {
            tables: vec![TableRef {
                name: "lineitem".into(),
                path: "lineitem".into(),
                alias: Some("l".into()),
            }],
            ..Default::default()
        };
        assert_eq!(shape.resolve_table("l"), Some("lineitem"));
        assert_eq!(shape.resolve_table("LINEITEM"), Some("lineitem"));
        assert_eq!(shape.resolve_table("x"), None);
    }
}
