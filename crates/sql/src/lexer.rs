//! A dialect-tolerant, total SQL lexer.
//!
//! Totality is the design requirement: Querc sits in front of databases it
//! does not control, so the lexer must produce *some* token stream for any
//! byte sequence — malformed queries are exactly the ones error-prediction
//! applications care about. Unterminated strings/comments lex to the end of
//! input, and unclassifiable characters come out as [`TokenKind::Other`].

use crate::dialect::{is_keyword, Dialect};
use crate::token::{Token, TokenKind};
use std::cell::Cell;

thread_local! {
    static LEX_CALLS: Cell<u64> = const { Cell::new(0) };
}

/// Number of `tokenize` / [`tokenize_with_comments`] invocations made by
/// **this thread** since it started. A diagnostic counter for asserting
/// single-parse invariants on hot paths (e.g. "a serving chunk lexes each
/// query exactly once") — thread-local so concurrent tests don't see each
/// other's lexing. Compare two readings; the absolute value is
/// meaningless.
pub fn lex_calls_this_thread() -> u64 {
    LEX_CALLS.with(Cell::get)
}

/// Tokenize `sql` under `dialect`, dropping whitespace and comments.
pub fn tokenize(sql: &str, dialect: Dialect) -> Vec<Token> {
    LEX_CALLS.with(|c| c.set(c.get() + 1));
    Lexer::new(sql, dialect, false).run()
}

/// Tokenize keeping comment tokens (for auditing / lineage applications).
pub fn tokenize_with_comments(sql: &str, dialect: Dialect) -> Vec<Token> {
    LEX_CALLS.with(|c| c.set(c.get() + 1));
    Lexer::new(sql, dialect, true).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    dialect: Dialect,
    keep_comments: bool,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str, dialect: Dialect, keep_comments: bool) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            dialect,
            keep_comments,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn text(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while let Some(c) = self.peek() {
            let start = self.pos;
            match c {
                b' ' | b'\t' | b'\r' | b'\n' | 0x0b | 0x0c => {
                    self.pos += 1;
                }
                b'-' if self.peek2() == Some(b'-') => {
                    self.line_comment(start, &mut out);
                }
                b'#' if self.dialect.hash_comments() => {
                    self.line_comment(start, &mut out);
                }
                b'/' if self.peek2() == Some(b'*') => {
                    self.block_comment(start, &mut out);
                }
                b'\'' => {
                    self.string_lit(start, &mut out);
                }
                b'"' => {
                    self.quoted_ident(start, b'"', b'"', &mut out);
                }
                b'`' if self.dialect.backtick_idents() => {
                    self.quoted_ident(start, b'`', b'`', &mut out);
                }
                b'[' if self.dialect.bracket_idents() => {
                    self.quoted_ident(start, b'[', b']', &mut out);
                }
                b'0'..=b'9' => {
                    self.number(start, &mut out);
                }
                b'.' if matches!(self.peek2(), Some(b'0'..=b'9')) => {
                    self.number(start, &mut out);
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    self.word(start, &mut out);
                }
                b'?' => {
                    self.pos += 1;
                    out.push(Token::new(TokenKind::Param, "?"));
                }
                b':' if matches!(self.peek2(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'_')) => {
                    self.pos += 1;
                    self.consume_word_chars();
                    out.push(Token::new(TokenKind::Param, self.text(start)));
                }
                b'$' if self.dialect.dollar_params()
                    && matches!(
                        self.peek2(),
                        Some(b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_')
                    ) =>
                {
                    self.pos += 1;
                    self.consume_word_chars();
                    out.push(Token::new(TokenKind::Param, self.text(start)));
                }
                b'@' if self.dialect.at_params()
                    && matches!(self.peek2(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'_')) =>
                {
                    self.pos += 1;
                    self.consume_word_chars();
                    out.push(Token::new(TokenKind::Param, self.text(start)));
                }
                b'%' if self.peek2() == Some(b's') => {
                    // printf-style placeholder common in logged Python SQL.
                    self.pos += 2;
                    out.push(Token::new(TokenKind::Param, "%s"));
                }
                b'(' | b')' | b',' | b';' | b'.' => {
                    self.pos += 1;
                    out.push(Token::new(TokenKind::Punct, self.text(start)));
                }
                _ => {
                    self.operator_or_other(start, &mut out);
                }
            }
        }
        out
    }

    fn line_comment(&mut self, start: usize, out: &mut Vec<Token>) {
        while let Some(c) = self.peek() {
            if c == b'\n' {
                break;
            }
            self.pos += 1;
        }
        if self.keep_comments {
            out.push(Token::new(TokenKind::Comment, self.text(start)));
        }
    }

    fn block_comment(&mut self, start: usize, out: &mut Vec<Token>) {
        self.pos += 2; // consume /*
        while self.pos < self.src.len() {
            if self.peek() == Some(b'*') && self.peek2() == Some(b'/') {
                self.pos += 2;
                break;
            }
            self.pos += 1;
        }
        if self.keep_comments {
            out.push(Token::new(TokenKind::Comment, self.text(start)));
        }
    }

    fn string_lit(&mut self, start: usize, out: &mut Vec<Token>) {
        self.pos += 1; // opening quote
        while let Some(c) = self.bump() {
            if c == b'\'' {
                if self.peek() == Some(b'\'') {
                    self.pos += 1; // escaped quote, keep going
                } else {
                    break;
                }
            }
        }
        out.push(Token::new(TokenKind::StringLit, self.text(start)));
    }

    fn quoted_ident(&mut self, start: usize, open: u8, close: u8, out: &mut Vec<Token>) {
        self.pos += 1; // opening delimiter
        while let Some(c) = self.bump() {
            if c == close {
                // Doubling escapes for " and `, not for ].
                if close == open && self.peek() == Some(close) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        out.push(Token::new(TokenKind::QuotedIdent, self.text(start)));
    }

    fn number(&mut self, start: usize, out: &mut Vec<Token>) {
        let mut seen_dot = false;
        let mut seen_exp = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.pos += 1;
                }
                b'.' if !seen_dot && !seen_exp && matches!(self.peek2(), Some(b'0'..=b'9')) => {
                    seen_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !seen_exp => {
                    // Only an exponent if followed by digits or sign+digits.
                    let next = self.peek2();
                    let after_sign = self.src.get(self.pos + 2).copied();
                    let ok = matches!(next, Some(b'0'..=b'9'))
                        || (matches!(next, Some(b'+') | Some(b'-'))
                            && matches!(after_sign, Some(b'0'..=b'9')));
                    if !ok {
                        break;
                    }
                    seen_exp = true;
                    self.pos += 2; // consume e and the digit/sign
                }
                _ => break,
            }
        }
        out.push(Token::new(TokenKind::Number, self.text(start)));
    }

    fn consume_word_chars(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'$' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn word(&mut self, start: usize, out: &mut Vec<Token>) {
        self.consume_word_chars();
        let text = self.text(start);
        let kind = if is_keyword(&text) {
            TokenKind::Keyword
        } else {
            TokenKind::Ident
        };
        out.push(Token::new(kind, text));
    }

    fn operator_or_other(&mut self, start: usize, out: &mut Vec<Token>) {
        const TWO: &[&[u8]] = &[
            b"<=", b">=", b"<>", b"!=", b"||", b"::", b"->", b"=>", b"**",
        ];
        let rest = &self.src[self.pos..];
        for op in TWO {
            if rest.starts_with(op) {
                self.pos += 2;
                out.push(Token::new(TokenKind::Operator, self.text(start)));
                return;
            }
        }
        match self.bump() {
            Some(
                b'=' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^' | b'~'
                | b'!',
            ) => {
                out.push(Token::new(TokenKind::Operator, self.text(start)));
            }
            Some(_) => {
                // Swallow a maximal run of unclassifiable bytes (e.g. a
                // multi-byte UTF-8 character) into one Other token.
                while let Some(c) = self.peek() {
                    if c >= 0x80 {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::new(TokenKind::Other, self.text(start)));
            }
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql, Dialect::Generic)
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    fn texts(sql: &str) -> Vec<String> {
        tokenize(sql, Dialect::Generic)
            .into_iter()
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_select() {
        let toks = tokenize("SELECT a, b FROM t WHERE a = 1", Dialect::Generic);
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["SELECT", "a", ",", "b", "FROM", "t", "WHERE", "a", "=", "1"]
        );
        assert_eq!(toks[0].kind, TokenKind::Keyword);
        assert_eq!(toks[1].kind, TokenKind::Ident);
        assert_eq!(toks[8].kind, TokenKind::Operator);
        assert_eq!(toks[9].kind, TokenKind::Number);
    }

    #[test]
    fn string_literals_with_doubling() {
        let toks = tokenize("select 'it''s' from t", Dialect::Generic);
        assert_eq!(toks[1].kind, TokenKind::StringLit);
        assert_eq!(toks[1].text, "'it''s'");
    }

    #[test]
    fn unterminated_string_reaches_eof() {
        let toks = tokenize("select 'oops", Dialect::Generic);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].kind, TokenKind::StringLit);
        assert_eq!(toks[1].text, "'oops");
    }

    #[test]
    fn numbers_int_decimal_scientific() {
        assert_eq!(
            kinds("1 2.5 .5 1e10 3.14e-2 1.e"),
            vec![
                TokenKind::Number,
                TokenKind::Number,
                TokenKind::Number,
                TokenKind::Number,
                TokenKind::Number,
                TokenKind::Number, // "1"
                TokenKind::Punct,  // "."
                TokenKind::Ident,  // "e"
            ]
        );
        assert_eq!(texts("3.14e-2")[0], "3.14e-2");
    }

    #[test]
    fn qualified_column_is_three_tokens() {
        assert_eq!(
            texts("t.a"),
            vec!["t".to_string(), ".".to_string(), "a".to_string()]
        );
    }

    #[test]
    fn comments_dropped_by_default_kept_on_request() {
        let sql = "select 1 -- trailing\n/* block */ from t # mysql";
        let plain = tokenize(sql, Dialect::Generic);
        assert!(plain.iter().all(|t| t.kind != TokenKind::Comment));
        let kept = tokenize_with_comments(sql, Dialect::Generic);
        let comments: Vec<_> = kept
            .iter()
            .filter(|t| t.kind == TokenKind::Comment)
            .collect();
        assert_eq!(comments.len(), 3);
        assert_eq!(comments[1].text, "/* block */");
    }

    #[test]
    fn unterminated_block_comment() {
        let toks = tokenize_with_comments("select /* never closed", Dialect::Generic);
        assert_eq!(toks.last().unwrap().kind, TokenKind::Comment);
    }

    #[test]
    fn dialect_quoted_identifiers() {
        let t = tokenize("select [col name] from [dbo].[t]", Dialect::TSql);
        assert_eq!(t[1].kind, TokenKind::QuotedIdent);
        assert_eq!(t[1].ident_name(), "col name");

        let m = tokenize("select `weird col` from `db`.`t`", Dialect::MySql);
        assert_eq!(m[1].kind, TokenKind::QuotedIdent);

        // Brackets are NOT identifiers in Postgres — '[' becomes Other.
        let p = tokenize("select [x]", Dialect::Postgres);
        assert!(p.iter().any(|t| t.kind == TokenKind::Other));
    }

    #[test]
    fn params_by_dialect() {
        let g = tokenize(
            "where a = ? and b = :name and c = $1 and d = @p",
            Dialect::Generic,
        );
        let params: Vec<_> = g
            .iter()
            .filter(|t| t.kind == TokenKind::Param)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(params, ["?", ":name", "$1", "@p"]);

        // In MySQL, @ is not recognized as a param marker by our table.
        let m = tokenize("set x = @v", Dialect::MySql);
        assert!(m.iter().all(|t| t.kind != TokenKind::Param));
    }

    #[test]
    fn multi_char_operators() {
        let toks = tokenize("a <= b >= c <> d != e || f :: g", Dialect::Generic);
        let ops: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Operator)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ops, ["<=", ">=", "<>", "!=", "||", "::"]);
    }

    #[test]
    fn never_panics_on_garbage() {
        for garbage in [
            "",
            "🙂🙂🙂",
            "\u{0}\u{1}\u{2}",
            "SELECT \u{feff} FROM",
            "'''",
            "((((",
            "\\\\\\",
            "select * from t where x = 'u\u{308}ber'",
        ] {
            let _ = tokenize(garbage, Dialect::Generic);
        }
    }

    #[test]
    fn keywords_recognized_any_case() {
        let toks = tokenize("sElEcT FrOm WhErE", Dialect::Generic);
        assert!(toks.iter().all(|t| t.kind == TokenKind::Keyword));
    }

    #[test]
    fn snowflake_tolerates_tsql_text_degraded() {
        // A bracketed identifier under the Snowflake dialect still lexes
        // (as Other + ident + Other) — totality over fidelity.
        let toks = tokenize("select [a] from t", Dialect::Snowflake);
        assert!(!toks.is_empty());
    }

    #[test]
    fn whole_tpch_style_query_lexes() {
        let sql = "select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty \
                   from lineitem where l_shipdate <= date '1998-12-01' - interval '90' day \
                   group by l_returnflag, l_linestatus order by l_returnflag";
        let toks = tokenize(sql, Dialect::Generic);
        assert!(toks.iter().any(|t| t.is_kw("group")));
        assert!(toks.iter().any(|t| t.kind == TokenKind::StringLit));
        assert!(toks.len() > 25);
    }
}
