//! Template fingerprinting — a stable 64-bit identity for a query's *shape*.
//!
//! Cloud workloads are overwhelmingly templated: the same statement
//! structure recurs with only literals varying (the SnowCloud corpus the
//! paper trains on, and the "few distinct intents, many concrete
//! instances" pattern). A template fingerprint hashes the *normalized*
//! token stream — literals collapsed to placeholders, identifiers
//! case-folded, whitespace and comments gone — so every instantiation of
//! a template maps to one `u64`. That key is what the serving plane's
//! vector cache (`querc::embed_plane`) is indexed by: embed a template
//! once, serve every repetition from the cache.
//!
//! Properties (enforced by `tests/prop.rs`):
//!
//! * **literal-blind** — `where x = 1` and `where x = 99` fingerprint
//!   identically, as do `'a'` vs `'b'` string literals and `?`/`$1`/`@p`
//!   bind markers;
//! * **layout-blind** — whitespace, case, and comments don't matter;
//! * **structure-sensitive** — different identifiers, different clause
//!   structure, or different token order produce different fingerprints
//!   (modulo 64-bit hash collisions);
//! * **total** — any byte sequence fingerprints without panicking, like
//!   the lexer it is built on.
//!
//! ```
//! use querc_sql::{template_fingerprint, Dialect};
//!
//! let a = template_fingerprint("SELECT * FROM t WHERE x = 1", Dialect::Generic);
//! let b = template_fingerprint("select *  from t where x = 42 -- hi", Dialect::Generic);
//! let c = template_fingerprint("select * from u where x = 1", Dialect::Generic);
//! assert_eq!(a, b);
//! assert_ne!(a, c);
//! ```

use crate::dialect::Dialect;
use crate::normalize::normalize_sql;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Fingerprint an already-normalized token stream (the output of
/// [`crate::normalize::normalize_sql`]). FNV-1a over each token's
/// length followed by its bytes — a length-prefixed encoding is
/// injective over token streams, so no byte value *inside* a token
/// (quoted identifiers can smuggle in arbitrary bytes, separators
/// included) can make two different streams hash as one.
///
/// Callers that already hold the normalized tokens (e.g. a memoized
/// `EnrichedQuery`) use this directly and skip re-lexing the SQL.
pub fn fingerprint_tokens<S: AsRef<str>>(tokens: &[S]) -> u64 {
    let mut h = FNV_OFFSET;
    for t in tokens {
        let bytes = t.as_ref().as_bytes();
        for b in (bytes.len() as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// The template fingerprint of raw SQL text under `dialect`: lex,
/// normalize (literals → placeholders, identifiers case-folded,
/// comments dropped), then [`fingerprint_tokens`].
pub fn template_fingerprint(sql: &str, dialect: Dialect) -> u64 {
    fingerprint_tokens(&normalize_sql(sql, dialect))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_substitution_is_invariant() {
        let a = template_fingerprint(
            "select o_orderkey from orders where o_totalprice > 100",
            Dialect::Generic,
        );
        let b = template_fingerprint(
            "select o_orderkey from orders where o_totalprice > 99999.5",
            Dialect::Generic,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn whitespace_case_and_comments_are_invariant() {
        let a = template_fingerprint("select a from t where x = 'v'", Dialect::Generic);
        let b = template_fingerprint(
            "SELECT  A\n FROM t /* c */ WHERE x = 'other'",
            Dialect::Generic,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn bind_markers_unify_across_dialects() {
        let a = template_fingerprint("select * from t where x = ?", Dialect::Generic);
        let b = template_fingerprint("select * from t where x = $1", Dialect::Postgres);
        let c = template_fingerprint("select * from t where x = @p", Dialect::TSql);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn structure_changes_the_fingerprint() {
        let base = template_fingerprint("select a from t", Dialect::Generic);
        for other in [
            "select b from t",
            "select a from u",
            "select a, b from t",
            "select a from t where a = 1",
            "from t select a",
        ] {
            assert_ne!(
                base,
                template_fingerprint(other, Dialect::Generic),
                "{other} must not collide with the base template"
            );
        }
    }

    #[test]
    fn token_boundaries_matter() {
        assert_ne!(
            fingerprint_tokens(&["ab", "c"]),
            fingerprint_tokens(&["a", "bc"])
        );
        assert_ne!(fingerprint_tokens(&["a"]), fingerprint_tokens(&["a", ""]));
    }

    #[test]
    fn separator_bytes_inside_tokens_cannot_forge_boundaries() {
        // A quoted identifier smuggles a control byte into a token: the
        // stream ["a\u{1f}b"] must not collide with ["a", "b"] (the
        // former boundary-separator scheme collided here).
        assert_ne!(
            fingerprint_tokens(&["a\u{1f}b"]),
            fingerprint_tokens(&["a", "b"])
        );
        assert_ne!(
            template_fingerprint("select \"a\u{1f}b\" from t", Dialect::Generic),
            template_fingerprint("select a b from t", Dialect::Generic)
        );
    }

    #[test]
    fn matches_the_token_level_entry_point() {
        let sql = "SELECT revenue FROM finance_reports WHERE q = 7";
        assert_eq!(
            template_fingerprint(sql, Dialect::Generic),
            fingerprint_tokens(&normalize_sql(sql, Dialect::Generic))
        );
    }

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(template_fingerprint("", Dialect::Generic), FNV_OFFSET);
        assert_eq!(fingerprint_tokens::<&str>(&[]), FNV_OFFSET);
    }
}
