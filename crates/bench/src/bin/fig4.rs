//! **Figure 4** — per-query runtime with no indexes vs the indexes
//! recommended to the full workload under a three-minute budget.
//!
//! The paper's observation: the low-budget recommendation makes a few
//! specific queries dramatically *slower* than running with no indexes at
//! all, because the optimizer picks a bad plan for them — all instances
//! of TPC-H Q18 (a contiguous block of query ids) regress by several ×,
//! while most other queries are barely affected.

use querc_bench::harness;
use querc_dbsim::{run_workload, Advisor, AdvisorConfig, Catalog};

fn main() {
    println!("== Figure 4: per-query runtime, no indexes vs 3-minute-budget indexes ==");
    println!("seed = {:#x}", harness::SEED);

    let workload = harness::tpch_workload();
    let sqls = workload.sql();
    let catalog = Catalog::tpch_sf1();
    let advisor = Advisor::new(&catalog, AdvisorConfig::default());

    // The paper's 3-minute budget on the full workload.
    let report = advisor.recommend(&sqls, 180.0);
    println!(
        "advisor@3min recommended {} indexes ({} validated): {}",
        report.indexes.len(),
        report.validated,
        report
            .indexes
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let base = run_workload(&sqls, &catalog, &[]);
    let with = run_workload(&sqls, &catalog, &report.indexes);

    // Per-template aggregate view (the full per-query series is long).
    println!(
        "\n{:>9} {:>12} {:>12} {:>12} {:>8}",
        "template", "queries", "no_index_s", "with_idx_s", "ratio"
    );
    let mut q18_ratio = 0.0;
    let mut other_ratios: Vec<f64> = Vec::new();
    for t in 1..=22u8 {
        let (s, e) = workload.template_range(t);
        let b: f64 = base.per_query_secs[s..e].iter().sum::<f64>() / (e - s) as f64;
        let w: f64 = with.per_query_secs[s..e].iter().sum::<f64>() / (e - s) as f64;
        let ratio = w / b;
        println!(
            "{:>9} {:>12} {:>12.2} {:>12.2} {:>8.2}",
            format!("q{t:02}"),
            format!("{s}..{e}"),
            b,
            w,
            ratio
        );
        if t == 18 {
            q18_ratio = ratio;
        } else {
            other_ratios.push(ratio);
        }
    }

    // The per-query series around the Q18 block, like the paper's plot.
    let (q18s, q18e) = workload.template_range(18);
    println!("\nper-query sample around the Q18 block (ids {q18s}..{q18e}):");
    for i in (q18s.saturating_sub(4)..(q18e + 4).min(sqls.len())).step_by(4) {
        println!(
            "  query {:>4} (q{:02}): no_index {:>6.2} s  with_idx {:>6.2} s",
            i, workload.queries[i].template, base.per_query_secs[i], with.per_query_secs[i]
        );
    }

    println!(
        "\ntotals: no_index {:.0} s, with 3-min indexes {:.0} s",
        base.total_secs, with.total_secs
    );

    // ---- shape checks ----------------------------------------------------
    println!("\nshape checks:");
    let mut ok = true;
    ok &= harness::check(
        "Q18 instances regress by several ×",
        q18_ratio > 2.0,
        format!("Q18 with/without ratio = {q18_ratio:.2}"),
    );
    let hurt_others = other_ratios.iter().filter(|&&r| r > 1.5).count();
    ok &= harness::check(
        "most other templates are not badly hurt",
        hurt_others <= 3,
        format!("{hurt_others}/21 other templates regress >1.5×"),
    );
    let q18_abs = with.per_query_secs[q18s];
    let q18_base = base.per_query_secs[q18s];
    ok &= harness::check(
        "per-query Q18 spike is visible in absolute terms",
        q18_abs > q18_base + 2.0,
        format!("one Q18 instance: {q18_base:.2} s → {q18_abs:.2} s"),
    );
    ok &= harness::check(
        "the 3-minute recommendation is net-worse than no indexes",
        with.total_secs > base.total_secs,
        format!("{:.0} s vs {:.0} s", with.total_secs, base.total_secs),
    );
    harness::finish(ok);
}
