//! Parameter initialization schemes.
//!
//! Embedding tables use the word2vec convention (uniform in
//! `[-0.5/dim, 0.5/dim]`); recurrent and dense layers use Xavier/Glorot or
//! He initialization depending on the following nonlinearity.

use crate::matrix::Matrix;
use crate::rng::Pcg32;

/// Xavier/Glorot uniform: `U[-sqrt(6/(fan_in+fan_out)), +...]`.
///
/// Appropriate before tanh/sigmoid nonlinearities (LSTM gates).
pub fn xavier(rows: usize, cols: usize, rng: &mut Pcg32) -> Matrix {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::uniform(rows, cols, -bound, bound, rng)
}

/// He/Kaiming uniform: `U[-sqrt(6/fan_in), +sqrt(6/fan_in)]`.
///
/// Appropriate before ReLU nonlinearities.
pub fn he(rows: usize, cols: usize, rng: &mut Pcg32) -> Matrix {
    let bound = (6.0 / cols as f32).sqrt();
    Matrix::uniform(rows, cols, -bound, bound, rng)
}

/// word2vec-style embedding init: `U[-0.5/dim, 0.5/dim]`.
pub fn embedding(vocab: usize, dim: usize, rng: &mut Pcg32) -> Matrix {
    let bound = 0.5 / dim as f32;
    Matrix::uniform(vocab, dim, -bound, bound, rng)
}

/// All-zero matrix — output-side embedding tables in word2vec start at zero.
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_bound() {
        let mut rng = Pcg32::new(1);
        let m = xavier(16, 48, &mut rng);
        let bound = (6.0 / 64.0f32).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
        // Not degenerate.
        assert!(m.frobenius() > 0.0);
    }

    #[test]
    fn he_within_bound() {
        let mut rng = Pcg32::new(2);
        let m = he(10, 24, &mut rng);
        let bound = (6.0 / 24.0f32).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn embedding_bound_scales_with_dim() {
        let mut rng = Pcg32::new(3);
        let m = embedding(100, 50, &mut rng);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.01));
    }

    #[test]
    fn init_mean_near_zero() {
        let mut rng = Pcg32::new(4);
        let m = xavier(64, 64, &mut rng);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / (64.0 * 64.0);
        assert!(mean.abs() < 0.01);
    }
}
