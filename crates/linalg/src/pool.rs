//! Deterministic fork/join over scoped std threads — the thread half of
//! the compute plane (the kernel half is [`crate::kernel`]).
//!
//! Training code never spawns threads directly; it asks
//! [`ComputePool::current`] for a pool and hands it an **indexed task
//! set**: `pool.map(n, f)` evaluates `f(0), f(1), …, f(n-1)` and
//! returns the results **in index order**, regardless of how many
//! worker threads ran them or how they interleaved. Tasks must be pure
//! functions of their index (plus shared `&` state); under that
//! contract the output of `map` is *identical for every thread count*,
//! which is what lets N-thread training produce bit-identical models
//! to 1-thread training — callers do any floating-point reduction
//! themselves, folding the returned `Vec` left-to-right (a fixed-order
//! tree), never in completion order.
//!
//! Thread-count resolution mirrors the kernel dispatcher: a
//! programmatic [`set_training_threads`] (the
//! `WorkloadManagerConfig::training_threads` knob) wins over the
//! `QUERC_THREADS` environment variable, which wins over
//! `std::thread::available_parallelism`. Workers are **scoped**
//! (`std::thread::scope`) and live only for one `map` call: no global
//! executor, no channels, nothing outlives the borrow of the caller's
//! data. For the corpus sizes the learners see, spawn cost (~10 µs per
//! worker) is noise next to a fit; a persistent pool would buy nothing
//! but shutdown hazards.
//!
//! Sizing guidance: training threads default to every available core,
//! which is right for offline fits. A serving process that refits in
//! the background while answering queries should cap
//! `training_threads` (1–2) so the fit cannot starve the shard
//! workers; the result is bit-identical either way, only slower.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// 0 = unset (fall through to `QUERC_THREADS` / detected cores).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("QUERC_THREADS") {
        Ok(v) => v.trim().parse::<usize>().ok().filter(|&n| n >= 1),
        Err(_) => None,
    })
}

fn detected_threads() -> usize {
    static DETECTED: OnceLock<usize> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Force (or clear, with `None`) the process-wide training thread
/// count, overriding both `QUERC_THREADS` and core detection. Returns
/// the now-effective count. Safe to call at any time: pools are sized
/// when created, and results never depend on the count.
pub fn set_training_threads(threads: Option<usize>) -> usize {
    OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
    training_threads()
}

/// The effective training thread count: programmatic override >
/// `QUERC_THREADS` > `available_parallelism` (≥ 1 always).
pub fn training_threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => env_threads().unwrap_or_else(detected_threads).max(1),
        n => n,
    }
}

/// A fork/join scope over `threads` workers executing indexed task
/// sets deterministically. Cheap to construct (two words); holds no
/// threads between calls.
#[derive(Debug, Clone, Copy)]
pub struct ComputePool {
    threads: usize,
}

impl ComputePool {
    /// Pool sized by [`training_threads`] — the one training code uses.
    pub fn current() -> ComputePool {
        ComputePool::with_threads(training_threads())
    }

    /// Pool with an explicit worker count (≥ 1 enforced); for tests
    /// and benchmarks that pin the count regardless of globals.
    pub fn with_threads(threads: usize) -> ComputePool {
        ComputePool {
            threads: threads.max(1),
        }
    }

    /// Worker-thread count this pool runs `map` with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluate `f(0) … f(n_tasks - 1)` and return the results in
    /// index order.
    ///
    /// Tasks are claimed from a shared atomic counter, so an expensive
    /// task does not straggle behind a static partition; each worker
    /// buffers `(index, result)` pairs locally and the buffers are
    /// merged by index after the scope joins. Because placement is by
    /// task index, the returned `Vec` is identical no matter which
    /// worker ran what — determinism needs only that `f` itself is a
    /// pure function of its index. Runs inline (no threads spawned)
    /// when the pool has one worker or there is at most one task. A
    /// panic in any task propagates to the caller after the scope
    /// joins.
    pub fn map<R, F>(&self, n_tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads <= 1 || n_tasks <= 1 {
            return (0..n_tasks).map(f).collect();
        }
        let workers = self.threads.min(n_tasks);
        let next = AtomicUsize::new(0);
        let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n_tasks {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                // Re-raise task panics on the caller's thread.
                parts.push(h.join().unwrap());
            }
        });
        let mut slots: Vec<Option<R>> = (0..n_tasks).map(|_| None).collect();
        for (i, r) in parts.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every task index produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order_for_every_thread_count() {
        for threads in [1, 2, 4, 7] {
            let pool = ComputePool::with_threads(threads);
            let got = pool.map(23, |i| i * i);
            let want: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single_task_sets() {
        let pool = ComputePool::with_threads(4);
        assert_eq!(pool.map(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn float_fold_is_thread_count_invariant() {
        // The contract the learners rely on: map + fixed-order fold is
        // bit-identical across thread counts.
        let data: Vec<f32> = (0..1000).map(|i| (i as f32).sin() / 7.0).collect();
        let chunk = 64;
        let n_chunks = data.len().div_ceil(chunk);
        let sum_with = |threads: usize| -> f32 {
            let parts = ComputePool::with_threads(threads).map(n_chunks, |c| {
                let lo = c * chunk;
                let hi = (lo + chunk).min(data.len());
                data[lo..hi].iter().fold(0.0f32, |a, &x| a + x)
            });
            parts.into_iter().fold(0.0f32, |a, x| a + x)
        };
        let want = sum_with(1).to_bits();
        for threads in [2, 3, 4, 8] {
            assert_eq!(sum_with(threads).to_bits(), want, "threads={threads}");
        }
    }

    #[test]
    fn with_threads_clamps_to_one_and_reports() {
        assert_eq!(ComputePool::with_threads(0).threads(), 1);
        assert_eq!(ComputePool::with_threads(3).threads(), 3);
        assert!(training_threads() >= 1);
    }

    #[test]
    #[should_panic]
    fn task_panics_propagate() {
        ComputePool::with_threads(2).map(8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
