//! Token model shared by the lexer, normalizer and parser.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// A reserved word in the active dialect (`select`, `join`, …).
    Keyword,
    /// A bare identifier (table, column, alias, function name).
    Ident,
    /// A quoted identifier — `"x"`, `` `x` `` or `[x]` depending on dialect.
    QuotedIdent,
    /// Numeric literal (integer, decimal or scientific).
    Number,
    /// Single-quoted string literal (quote-doubling handled).
    StringLit,
    /// Operator such as `=`, `<>`, `<=`, `||`, `::`.
    Operator,
    /// Single punctuation character: `( ) , ; .`
    Punct,
    /// Bind parameter: `?`, `:name`, `$1`, `%s`, `@p`.
    Param,
    /// `-- …`, `/* … */` or `# …` comment (kept only when requested).
    Comment,
    /// Any byte sequence the lexer could not classify. Lexing never fails.
    Other,
}

/// One lexed token: its class and the exact source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Raw text as it appeared in the query (quotes included for quoted
    /// identifiers and string literals).
    pub text: String,
}

impl Token {
    pub fn new(kind: TokenKind, text: impl Into<String>) -> Self {
        Token {
            kind,
            text: text.into(),
        }
    }

    /// Case-normalized view: keywords and identifiers lowercase, everything
    /// else verbatim.
    pub fn folded(&self) -> String {
        match self.kind {
            TokenKind::Keyword | TokenKind::Ident => self.text.to_ascii_lowercase(),
            _ => self.text.clone(),
        }
    }

    /// For quoted identifiers, the name with quoting stripped and case
    /// preserved; for bare identifiers the lowercased name; otherwise the
    /// raw text.
    pub fn ident_name(&self) -> String {
        match self.kind {
            TokenKind::Ident => self.text.to_ascii_lowercase(),
            TokenKind::QuotedIdent => {
                let t = &self.text;
                if t.len() >= 2 {
                    let inner = &t[1..t.len() - 1];
                    match t.as_bytes()[0] {
                        b'"' => inner.replace("\"\"", "\""),
                        b'`' => inner.replace("``", "`"),
                        b'[' => inner.to_string(),
                        _ => inner.to_string(),
                    }
                } else {
                    t.clone()
                }
            }
            _ => self.text.clone(),
        }
    }

    /// True for keyword tokens matching `kw` case-insensitively.
    pub fn is_kw(&self, kw: &str) -> bool {
        self.kind == TokenKind::Keyword && self.text.eq_ignore_ascii_case(kw)
    }

    /// True for punctuation tokens with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// True for operator tokens with exactly this text.
    pub fn is_op(&self, op: &str) -> bool {
        self.kind == TokenKind::Operator && self.text == op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folded_lowercases_words_only() {
        assert_eq!(Token::new(TokenKind::Keyword, "SELECT").folded(), "select");
        assert_eq!(
            Token::new(TokenKind::Ident, "LineItem").folded(),
            "lineitem"
        );
        assert_eq!(
            Token::new(TokenKind::StringLit, "'ASIA'").folded(),
            "'ASIA'"
        );
    }

    #[test]
    fn ident_name_strips_quoting() {
        assert_eq!(
            Token::new(TokenKind::QuotedIdent, "\"My Table\"").ident_name(),
            "My Table"
        );
        assert_eq!(
            Token::new(TokenKind::QuotedIdent, "`col`").ident_name(),
            "col"
        );
        assert_eq!(
            Token::new(TokenKind::QuotedIdent, "[dbo]").ident_name(),
            "dbo"
        );
        assert_eq!(
            Token::new(TokenKind::QuotedIdent, "\"a\"\"b\"").ident_name(),
            "a\"b"
        );
    }

    #[test]
    fn predicates() {
        let t = Token::new(TokenKind::Keyword, "Select");
        assert!(t.is_kw("SELECT"));
        assert!(!t.is_kw("FROM"));
        assert!(Token::new(TokenKind::Punct, "(").is_punct('('));
        assert!(Token::new(TokenKind::Operator, "<=").is_op("<="));
    }
}
