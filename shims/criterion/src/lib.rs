//! Offline stand-in for `criterion`, implementing the API surface the
//! workspace's benches use: `Criterion`, benchmark groups, `Bencher`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple — calibrate an iteration count to
//! ~`TARGET_SAMPLE` of wall clock, take `sample_size` samples, report
//! median and a throughput rate when configured. Under `cargo test`
//! (the harness passes `--test`) each benchmark body runs exactly once
//! so benches stay compile- and smoke-checked without burning minutes.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

const TARGET_SAMPLE: Duration = Duration::from_millis(60);

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Configure the final-summary behaviour; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&id.0, self.sample_size, self.test_mode, None, |b| f(b));
        self
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark label, optionally parameterized (`name/param`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_bench(
            &label,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.test_mode,
            self.throughput,
            |b| f(b),
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_bench(
            &label,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.test_mode,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark body; `iter` times the supplied closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.elapsed = Duration::from_nanos(1);
            self.iters = 1;
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(
    label: &str,
    sample_size: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
    mut body: impl FnMut(&mut Bencher),
) {
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
            test_mode: true,
        };
        body(&mut b);
        println!("{label}: ok (smoke)");
        return;
    }

    // Calibrate: grow the per-sample iteration count until one sample
    // costs about TARGET_SAMPLE.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            test_mode: false,
        };
        body(&mut b);
        if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
            break;
        }
        let grown = if b.elapsed.is_zero() {
            iters * 8
        } else {
            let scale = TARGET_SAMPLE.as_secs_f64() / b.elapsed.as_secs_f64();
            ((iters as f64 * scale.clamp(1.2, 8.0)) as u64).max(iters + 1)
        };
        iters = grown;
    }

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
                test_mode: false,
            };
            body(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter[per_iter.len() / 2];
    let best = per_iter[0];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / median),
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.2} MiB/s", n as f64 / median / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "{label}: median {}  (best {}, {iters} iters × {sample_size} samples){rate}",
        fmt_time(median),
        fmt_time(best),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
