//! Multi-tenant QoS: deficit-round-robin fair dequeue, token-bucket
//! admission control, and per-tenant accounting for the serving plane.
//!
//! The sharded [`crate::service::WorkloadManager`] hash-routes queries
//! by tenant ([`crate::service::routing_key`]), which preserves
//! per-tenant order — but a single noisy tenant hashed onto a shard can
//! monopolize that shard's FIFO queue and starve every small tenant
//! routed alongside it. This module is the isolation story, in three
//! layers that compose on the ingress path:
//!
//! 1. **Admission control** ([`TokenBucket`] per tenant, plus a
//!    per-tenant backlog cap): a tenant exceeding its configured rate or
//!    holding too many in-flight queries is **shed** with an explicit
//!    [`crate::error::QuercError::Rejected`] carrying the tenant and a
//!    [`RejectReason`] — instead of blanket backpressure that blocks
//!    every producer behind the noisy one. Rejections are counted per
//!    tenant and per app; nothing is silently dropped.
//! 2. **Fair dequeue** ([`DrrScheduler`] inside each shard worker):
//!    arrivals are parked in per-tenant FIFO subqueues and dequeued by
//!    deficit round robin — each backlogged tenant earns
//!    `quantum × weight` dequeues per round, so service share converges
//!    to weight share within one round's slack no matter how deep one
//!    tenant's backlog grows. Per-tenant FIFO order is preserved: a
//!    subqueue is only ever popped from the front.
//! 3. **Accounting** ([`QosState`]): per-tenant submitted / processed /
//!    rejected counters and a per-tenant [`LatencyHistogram`]
//!    (p50/p95/p99), surfaced live via
//!    [`crate::service::WorkloadManager::qos_stats`] and finally in
//!    [`crate::service::ServiceDrain::qos`] — the measurements the
//!    tenant-isolation tests gate on.
//!
//! Everything here is off by default ([`QosConfig::enabled`] is
//! `false`): a manager without QoS behaves exactly as before — blocking
//! backpressure, single FIFO per shard.

use crate::histogram::{LatencyHistogram, LatencySnapshot};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a query was shed at admission instead of enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The tenant's token bucket is empty — it exceeded its configured
    /// sustained rate (and has spent its burst allowance).
    RateLimited,
    /// The tenant already has [`QosConfig::max_pending_per_tenant`]
    /// queries in flight; admitting more would let one tenant's backlog
    /// grow without bound inside the shard schedulers.
    Backlogged,
    /// The target shard's bounded input queue was full. With QoS
    /// enabled the manager sheds instead of blocking, so one saturated
    /// shard cannot stall producers serving other shards.
    ShardFull,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RejectReason::RateLimited => "rate limited",
            RejectReason::Backlogged => "per-tenant backlog cap reached",
            RejectReason::ShardFull => "shard queue full",
        })
    }
}

/// A tenant's sustained-rate limit: `rate_per_sec` tokens refill per
/// second into a bucket holding at most `burst` tokens; each admitted
/// query spends one token. `rate_per_sec == 0` with `burst == 0`
/// rejects everything — the "tenant is cut off" switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Tokens (queries) refilled per second.
    pub rate_per_sec: f64,
    /// Bucket capacity — the burst a previously-idle tenant may spend
    /// instantly before the sustained rate takes over.
    pub burst: f64,
}

/// Admission state for one rate-limited tenant. Refill is computed
/// lazily from elapsed time at each [`TokenBucket::admit_at`] call, so
/// the bucket needs no timer thread — and because the caller supplies
/// the clock, refill is exactly reproducible under a mocked sequence of
/// instants (see the unit tests).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    limit: RateLimit,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket that starts **full** (a fresh tenant may spend its whole
    /// burst immediately), with `now` as its refill epoch.
    pub fn new(limit: RateLimit, now: Instant) -> TokenBucket {
        TokenBucket {
            limit,
            tokens: limit.burst.max(0.0),
            last: now,
        }
    }

    /// Try to admit one query at time `now`: refill
    /// `elapsed × rate_per_sec` tokens (capped at `burst`), then spend
    /// one. Returns `false` — and spends nothing — when less than one
    /// token is available. A `now` earlier than the last call refills
    /// nothing (the clock never runs backwards inside the bucket).
    pub fn admit_at(&mut self, now: Instant) -> bool {
        let elapsed = now.checked_duration_since(self.last).unwrap_or_default();
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.limit.rate_per_sec.max(0.0))
            .min(self.limit.burst.max(0.0));
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after the last refill).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

/// Per-tenant QoS knobs — what [`QosConfig`] defaults can be overridden
/// with for a specific tenant via
/// [`crate::service::WorkloadManager::set_tenant_policy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// DRR weight (≥ 1): a weight-3 tenant earns 3× the dequeues of a
    /// weight-1 tenant per round while both are backlogged.
    pub weight: u32,
    /// Rate limit; `None` means no token bucket for this tenant.
    pub rate: Option<RateLimit>,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            weight: 1,
            rate: None,
        }
    }
}

/// QoS knobs on [`crate::service::WorkloadManagerConfig`]. Disabled by
/// default; enabling changes two ingress behaviors: over-limit tenants
/// are shed with [`crate::error::QuercError::Rejected`] (instead of
/// nothing), and a full shard queue sheds (instead of blocking the
/// producer).
///
/// **Sizing:** `quantum` is the queries a weight-1 tenant may dequeue
/// per DRR round; small values (4–16) bound how long a shard serves one
/// tenant before rotating (lower cross-tenant jitter), large values
/// amortize rotation overhead. `max_pending_per_tenant` bounds the
/// memory one tenant can pin inside the schedulers — total scheduler
/// memory is at most `live_tenants × max_pending_per_tenant` queries —
/// and is the knob that converts a whale's flood into `Rejected`
/// results; size it to a few rounds' worth of service
/// (`quantum × weight × shards`). `default_rate` is the plane-wide
/// per-tenant ceiling; leave `None` and rely on the backlog cap unless
/// tenants have contracted rates.
#[derive(Debug, Clone)]
pub struct QosConfig {
    /// Master switch; `false` preserves pre-QoS serving exactly.
    pub enabled: bool,
    /// Dequeues a weight-1 tenant earns per DRR round (≥ 1).
    pub quantum: u32,
    /// Weight for tenants without an explicit [`TenantPolicy`] (≥ 1).
    pub default_weight: u32,
    /// Token bucket applied to tenants without an explicit policy;
    /// `None` disables rate limiting for them.
    pub default_rate: Option<RateLimit>,
    /// Maximum in-flight (admitted but not yet labeled) queries per
    /// tenant across the whole manager; `0` means uncapped.
    pub max_pending_per_tenant: usize,
    /// Per-tenant overrides applied at construction (more can be added
    /// live via [`crate::service::WorkloadManager::set_tenant_policy`]).
    pub policies: Vec<(String, TenantPolicy)>,
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            enabled: false,
            quantum: 8,
            default_weight: 1,
            default_rate: None,
            max_pending_per_tenant: 1024,
            policies: Vec::new(),
        }
    }
}

impl QosConfig {
    /// An enabled config with the given defaults — shorthand for tests
    /// and examples.
    pub fn enabled() -> QosConfig {
        QosConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// Live per-tenant accounting shared between the manager (admission
/// side) and every shard worker (completion side).
pub struct TenantState {
    weight: AtomicU32,
    bucket: Mutex<Option<TokenBucket>>,
    pending: AtomicU64,
    submitted: AtomicU64,
    processed: AtomicU64,
    rejected_rate: AtomicU64,
    rejected_backlog: AtomicU64,
    rejected_shard_full: AtomicU64,
    latency: LatencyHistogram,
}

impl TenantState {
    fn new(policy: TenantPolicy, now: Instant) -> TenantState {
        TenantState {
            weight: AtomicU32::new(policy.weight.max(1)),
            bucket: Mutex::new(policy.rate.map(|r| TokenBucket::new(r, now))),
            pending: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            rejected_rate: AtomicU64::new(0),
            rejected_backlog: AtomicU64::new(0),
            rejected_shard_full: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    /// Current DRR weight.
    pub fn weight(&self) -> u32 {
        self.weight.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            weight: self.weight(),
            submitted: self.submitted.load(Ordering::Relaxed),
            processed: self.processed.load(Ordering::Relaxed),
            pending: self.pending.load(Ordering::Relaxed),
            rejected_rate_limited: self.rejected_rate.load(Ordering::Relaxed),
            rejected_backlogged: self.rejected_backlog.load(Ordering::Relaxed),
            rejected_shard_full: self.rejected_shard_full.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
        }
    }
}

/// Point-in-time view of one tenant's QoS accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// DRR weight in force.
    pub weight: u32,
    /// Queries this tenant offered to `submit`/`submit_batch` (admitted
    /// **and** rejected).
    pub submitted: u64,
    /// Queries fully labeled.
    pub processed: u64,
    /// Admitted queries not yet labeled at snapshot time.
    pub pending: u64,
    /// Sheds due to an empty token bucket.
    pub rejected_rate_limited: u64,
    /// Sheds due to the per-tenant backlog cap.
    pub rejected_backlogged: u64,
    /// Sheds due to a full shard queue.
    pub rejected_shard_full: u64,
    /// This tenant's submit→labeled latency quantiles (µs).
    pub latency: LatencySnapshot,
}

impl TenantSnapshot {
    /// Total sheds across all reasons.
    pub fn rejected(&self) -> u64 {
        self.rejected_rate_limited + self.rejected_backlogged + self.rejected_shard_full
    }
}

/// Final per-tenant QoS accounting, returned by
/// [`crate::service::WorkloadManager::drain`]. Empty when QoS was
/// disabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QosDrain {
    /// Every tenant seen at admission, by routing key, sorted.
    pub tenants: BTreeMap<String, TenantSnapshot>,
}

impl QosDrain {
    /// Sum of sheds across every tenant and reason.
    pub fn total_rejected(&self) -> u64 {
        self.tenants.values().map(|t| t.rejected()).sum()
    }
}

/// The manager-wide QoS brain: tenant policies, per-tenant accounting,
/// and the admission decision. One `Arc<QosState>` is shared by the
/// manager (admission) and every shard worker (DRR weights, completion
/// accounting).
pub struct QosState {
    quantum: u32,
    default_policy: TenantPolicy,
    max_pending: usize,
    tenants: RwLock<HashMap<String, Arc<TenantState>>>,
    policies: RwLock<HashMap<String, TenantPolicy>>,
}

impl QosState {
    /// Build from config (policies listed there are installed
    /// immediately).
    pub fn new(cfg: &QosConfig) -> QosState {
        let state = QosState {
            quantum: cfg.quantum.max(1),
            default_policy: TenantPolicy {
                weight: cfg.default_weight.max(1),
                rate: cfg.default_rate,
            },
            max_pending: cfg.max_pending_per_tenant,
            tenants: RwLock::new(HashMap::new()),
            policies: RwLock::new(HashMap::new()),
        };
        for (tenant, policy) in &cfg.policies {
            state.set_policy(tenant, *policy);
        }
        state
    }

    /// Dequeues a weight-1 tenant earns per DRR round.
    pub fn quantum(&self) -> u32 {
        self.quantum
    }

    /// Install (or replace) a tenant's policy. Takes effect immediately
    /// for admission (the token bucket is swapped, starting full) and at
    /// the tenant's next backlog episode for DRR weight.
    pub fn set_policy(&self, tenant: &str, policy: TenantPolicy) {
        self.policies.write().insert(tenant.to_string(), policy);
        if let Some(state) = self.tenants.read().get(tenant) {
            state.weight.store(policy.weight.max(1), Ordering::Relaxed);
            *state.bucket.lock() = policy.rate.map(|r| TokenBucket::new(r, Instant::now()));
        }
    }

    /// Every explicitly-installed tenant policy, sorted by tenant — the
    /// set a checkpoint persists.
    pub fn policies(&self) -> Vec<(String, TenantPolicy)> {
        let mut v: Vec<(String, TenantPolicy)> = self
            .policies
            .read()
            .iter()
            .map(|(k, p)| (k.clone(), *p))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// The policy in force for `tenant` (explicit, else defaults).
    pub fn policy_for(&self, tenant: &str) -> TenantPolicy {
        self.policies
            .read()
            .get(tenant)
            .copied()
            .unwrap_or(self.default_policy)
    }

    /// Accounting slot for `tenant`, created on first sight.
    pub fn tenant(&self, tenant: &str) -> Arc<TenantState> {
        if let Some(state) = self.tenants.read().get(tenant) {
            return Arc::clone(state);
        }
        let mut map = self.tenants.write();
        Arc::clone(
            map.entry(tenant.to_string()).or_insert_with(|| {
                Arc::new(TenantState::new(self.policy_for(tenant), Instant::now()))
            }),
        )
    }

    /// DRR weight for `tenant` without creating accounting state.
    pub fn weight_of(&self, tenant: &str) -> u32 {
        if let Some(state) = self.tenants.read().get(tenant) {
            return state.weight();
        }
        self.policy_for(tenant).weight.max(1)
    }

    /// The admission decision for one query from `tenant` at `now`:
    /// counts the offer, then checks the token bucket and the backlog
    /// cap. `Ok` hands back the tenant state so the caller can commit
    /// the pending slot once the shard accepts the query.
    pub fn admit_at(
        &self,
        tenant: &str,
        now: Instant,
    ) -> std::result::Result<Arc<TenantState>, RejectReason> {
        let state = self.tenant(tenant);
        state.submitted.fetch_add(1, Ordering::Relaxed);
        if let Some(bucket) = &mut *state.bucket.lock() {
            if !bucket.admit_at(now) {
                state.rejected_rate.fetch_add(1, Ordering::Relaxed);
                return Err(RejectReason::RateLimited);
            }
        }
        if self.max_pending > 0 && state.pending.load(Ordering::Relaxed) >= self.max_pending as u64
        {
            state.rejected_backlog.fetch_add(1, Ordering::Relaxed);
            return Err(RejectReason::Backlogged);
        }
        Ok(state)
    }

    /// Reserve the admitted query's pending slot. Must be called
    /// **before** the shard send: once the query is visible to a shard
    /// worker, its completion may race this bookkeeping, and a
    /// `complete` that lands before the increment would saturate at
    /// zero and leak the slot. Reserve-then-send makes `pending ≥ 1`
    /// whenever a completion for this tenant runs.
    pub fn committed(state: &TenantState) {
        state.pending.fetch_add(1, Ordering::Relaxed);
    }

    /// The shard queue was full — the admitted query was shed after
    /// all: release its reserved pending slot and count the shed.
    pub fn shed_shard_full(state: &TenantState) {
        state.pending.fetch_sub(1, Ordering::Relaxed);
        state.rejected_shard_full.fetch_add(1, Ordering::Relaxed);
    }

    /// The shard channel was closed (dead shard): release the reserved
    /// pending slot and roll the offer back so
    /// `submitted == processed + rejected` accounting ignores queries
    /// that never had an outcome.
    pub fn unsubmit(state: &TenantState) {
        state.pending.fetch_sub(1, Ordering::Relaxed);
        state.submitted.fetch_sub(1, Ordering::Relaxed);
    }

    /// A query finished labeling: release its pending slot and record
    /// its submit→labeled latency into the tenant histogram.
    pub fn complete(&self, tenant: &str, latency: Option<Duration>) {
        let state = self.tenant(tenant);
        state.processed.fetch_add(1, Ordering::Relaxed);
        // Saturate at zero: completions for queries admitted before QoS
        // was sharing state (or double drains in tests) must not wrap.
        let _ = state
            .pending
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| {
                Some(p.saturating_sub(1))
            });
        if let Some(elapsed) = latency {
            state.latency.record(elapsed);
        }
    }

    /// Snapshot every tenant's accounting, sorted by tenant key.
    pub fn drain_snapshot(&self) -> QosDrain {
        QosDrain {
            tenants: self
                .tenants
                .read()
                .iter()
                .map(|(k, s)| (k.clone(), s.snapshot()))
                .collect(),
        }
    }
}

/// One tenant's parked arrivals inside a [`DrrScheduler`].
struct TenantQueue<T> {
    items: VecDeque<T>,
    /// Dequeue credit carried across rounds while backlogged; reset to
    /// zero when the subqueue empties (classic DRR).
    deficit: u64,
    /// Whether this head-of-line visit already earned its quantum — a
    /// chunk-size cutoff mid-service must not double-credit the tenant
    /// when the next chunk resumes.
    charged: bool,
    weight: u64,
}

/// Deficit-round-robin fair scheduler over per-tenant FIFO subqueues —
/// the dequeue discipline inside each shard worker when QoS is enabled.
///
/// Each backlogged tenant, on its turn, earns `quantum × weight`
/// dequeue credit and is served until the credit runs out (rotating to
/// the back of the active ring with the remainder) or its subqueue
/// empties (credit is forfeited). With unit-cost items this guarantees:
/// over any window in which a set of tenants stays backlogged, tenant
/// `i` receives dequeues proportional to `weight_i` within one round's
/// slack (`quantum × weight_i` items) — property-tested below. FIFO
/// within a tenant is structural: items only ever leave a subqueue from
/// the front.
pub struct DrrScheduler<T> {
    queues: HashMap<String, TenantQueue<T>>,
    /// Backlogged tenants, in service order (front = next to serve).
    active: VecDeque<String>,
    quantum: u64,
    len: usize,
}

impl<T> DrrScheduler<T> {
    /// An empty scheduler; `quantum` is clamped to ≥ 1.
    pub fn new(quantum: u32) -> DrrScheduler<T> {
        DrrScheduler {
            queues: HashMap::new(),
            active: VecDeque::new(),
            quantum: quantum.max(1) as u64,
            len: 0,
        }
    }

    /// Parked items across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no tenant has parked items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of currently-backlogged tenants.
    pub fn backlogged_tenants(&self) -> usize {
        self.active.len()
    }

    /// Park one item on `tenant`'s subqueue. `weight` (clamped to ≥ 1)
    /// is latched when the tenant *enters* backlog — a mid-backlog
    /// weight change takes effect at the tenant's next backlog episode,
    /// so one round never mixes two weights for one tenant.
    pub fn enqueue(&mut self, tenant: &str, weight: u32, item: T) {
        match self.queues.get_mut(tenant) {
            Some(q) => q.items.push_back(item),
            None => {
                self.queues.insert(
                    tenant.to_string(),
                    TenantQueue {
                        items: VecDeque::from([item]),
                        deficit: 0,
                        charged: false,
                        weight: weight.max(1) as u64,
                    },
                );
                self.active.push_back(tenant.to_string());
            }
        }
        self.len += 1;
    }

    /// Dequeue up to `max` items by deficit round robin. Items from one
    /// tenant come out in FIFO order; tenants are served in ring order
    /// with their earned credit. A `max` cutoff mid-tenant resumes that
    /// tenant (with its remaining credit) on the next call.
    pub fn dequeue_chunk(&mut self, max: usize) -> Vec<T> {
        let mut out = Vec::new();
        while out.len() < max {
            let Some(tenant) = self.active.front().cloned() else {
                break;
            };
            let q = self
                .queues
                .get_mut(&tenant)
                .expect("active tenants always have a queue");
            if !q.charged {
                q.deficit = q.deficit.saturating_add(self.quantum * q.weight);
                q.charged = true;
            }
            while q.deficit > 0 && !q.items.is_empty() && out.len() < max {
                out.push(q.items.pop_front().expect("checked non-empty"));
                q.deficit -= 1;
                self.len -= 1;
            }
            if q.items.is_empty() {
                // Backlog episode over: forfeit leftover credit so an
                // idle tenant cannot bank service for later.
                self.queues.remove(&tenant);
                self.active.pop_front();
            } else if q.deficit == 0 {
                q.charged = false;
                self.active.rotate_left(1);
            } else {
                // Chunk is full mid-service; resume this tenant (credit
                // intact, no re-charge) on the next call.
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn at(base: Instant, ms: u64) -> Instant {
        base + Duration::from_millis(ms)
    }

    #[test]
    fn token_bucket_burst_then_sustain() {
        let base = Instant::now();
        let mut b = TokenBucket::new(
            RateLimit {
                rate_per_sec: 10.0,
                burst: 5.0,
            },
            base,
        );
        // The full burst is admitted instantly…
        for i in 0..5 {
            assert!(b.admit_at(base), "burst token {i} must admit");
        }
        // …then the bucket is dry until time passes.
        assert!(!b.admit_at(base));
        // 100ms at 10/s refills exactly one token.
        assert!(b.admit_at(at(base, 100)));
        assert!(!b.admit_at(at(base, 100)));
        // Sustained: one admit per 100ms, no more — the window from the
        // last refill (t=100ms) to t=1100ms is exactly 1s at 10/s.
        let mut admitted = 0;
        for ms in (150..=1100).step_by(50) {
            if b.admit_at(at(base, ms)) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 10, "1s at 10/s sustains exactly 10 admits");
    }

    #[test]
    fn token_bucket_refill_is_deterministic_under_a_mocked_clock() {
        let base = Instant::now();
        let limit = RateLimit {
            rate_per_sec: 3.0,
            burst: 2.0,
        };
        let drive = |steps: &[u64]| -> (Vec<bool>, f64) {
            let mut b = TokenBucket::new(limit, base);
            let decisions = steps.iter().map(|ms| b.admit_at(at(base, *ms))).collect();
            (decisions, b.available())
        };
        let steps = [0u64, 0, 0, 100, 400, 400, 450, 2000, 2001, 2002, 2003];
        let (first, tokens_a) = drive(&steps);
        let (second, tokens_b) = drive(&steps);
        assert_eq!(first, second, "same instants, same decisions");
        assert_eq!(
            tokens_a.to_bits(),
            tokens_b.to_bits(),
            "bit-identical refill"
        );
        // And the clock never refills backwards.
        let mut b = TokenBucket::new(limit, at(base, 1000));
        assert!(b.admit_at(at(base, 1000)));
        assert!(b.admit_at(at(base, 500)), "spends the second burst token");
        assert!(
            !b.admit_at(at(base, 500)),
            "an earlier instant must not refill"
        );
    }

    #[test]
    fn zero_rate_bucket_rejects_everything() {
        let base = Instant::now();
        let mut b = TokenBucket::new(
            RateLimit {
                rate_per_sec: 0.0,
                burst: 0.0,
            },
            base,
        );
        for ms in [0u64, 1000, 1_000_000] {
            assert!(!b.admit_at(at(base, ms)));
        }
    }

    #[test]
    fn zero_rate_tenant_rejects_while_others_proceed() {
        let cfg = QosConfig {
            enabled: true,
            policies: vec![(
                "blocked".into(),
                TenantPolicy {
                    weight: 1,
                    rate: Some(RateLimit {
                        rate_per_sec: 0.0,
                        burst: 0.0,
                    }),
                },
            )],
            ..Default::default()
        };
        let qos = QosState::new(&cfg);
        let now = Instant::now();
        for _ in 0..10 {
            assert!(matches!(
                qos.admit_at("blocked", now),
                Err(RejectReason::RateLimited)
            ));
            let ok = qos
                .admit_at("free", now)
                .unwrap_or_else(|r| panic!("unlimited tenant must admit, got {r}"));
            QosState::committed(&ok);
        }
        let drain = qos.drain_snapshot();
        assert_eq!(drain.tenants["blocked"].rejected_rate_limited, 10);
        assert_eq!(drain.tenants["blocked"].pending, 0);
        assert_eq!(drain.tenants["free"].rejected(), 0);
        assert_eq!(drain.tenants["free"].pending, 10);
        assert_eq!(drain.total_rejected(), 10);
    }

    #[test]
    fn backlog_cap_sheds_and_completions_reopen_admission() {
        let cfg = QosConfig {
            enabled: true,
            max_pending_per_tenant: 3,
            ..Default::default()
        };
        let qos = QosState::new(&cfg);
        let now = Instant::now();
        for _ in 0..3 {
            QosState::committed(&qos.admit_at("whale", now).ok().unwrap());
        }
        assert!(matches!(
            qos.admit_at("whale", now),
            Err(RejectReason::Backlogged)
        ));
        // A completion frees a slot.
        qos.complete("whale", Some(Duration::from_micros(250)));
        QosState::committed(&qos.admit_at("whale", now).ok().unwrap());
        let snap = qos.drain_snapshot();
        let whale = &snap.tenants["whale"];
        assert_eq!(whale.submitted, 5);
        assert_eq!(whale.rejected_backlogged, 1);
        assert_eq!(whale.processed, 1);
        assert_eq!(whale.pending, 3);
        assert_eq!(whale.latency.count, 1);
    }

    #[test]
    fn set_policy_swaps_weight_and_bucket_live() {
        let qos = QosState::new(&QosConfig::enabled());
        let now = Instant::now();
        QosState::committed(&qos.admit_at("t", now).ok().unwrap());
        assert_eq!(qos.weight_of("t"), 1);
        qos.set_policy(
            "t",
            TenantPolicy {
                weight: 4,
                rate: Some(RateLimit {
                    rate_per_sec: 0.0,
                    burst: 0.0,
                }),
            },
        );
        assert_eq!(qos.weight_of("t"), 4);
        assert!(matches!(
            qos.admit_at("t", now),
            Err(RejectReason::RateLimited)
        ));
        assert_eq!(
            qos.policies(),
            vec![(
                "t".to_string(),
                TenantPolicy {
                    weight: 4,
                    rate: Some(RateLimit {
                        rate_per_sec: 0.0,
                        burst: 0.0,
                    }),
                }
            )]
        );
    }

    #[test]
    fn drr_round_robins_equal_weights() {
        let mut s: DrrScheduler<u32> = DrrScheduler::new(2);
        for i in 0..6u32 {
            s.enqueue("a", 1, i);
            s.enqueue("b", 1, 100 + i);
        }
        // quantum 2: two from a, two from b, alternating.
        assert_eq!(s.dequeue_chunk(8), vec![0, 1, 100, 101, 2, 3, 102, 103]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.dequeue_chunk(100), vec![4, 5, 104, 105]);
        assert!(s.is_empty());
    }

    #[test]
    fn drr_chunk_cutoff_resumes_without_double_credit() {
        let mut s: DrrScheduler<u32> = DrrScheduler::new(4);
        for i in 0..8u32 {
            s.enqueue("a", 1, i);
            s.enqueue("b", 1, 100 + i);
        }
        // Chunk of 2 cuts tenant a off mid-credit; the next chunks must
        // finish a's round (2 more) before b's turn — not re-credit a.
        assert_eq!(s.dequeue_chunk(2), vec![0, 1]);
        assert_eq!(s.dequeue_chunk(2), vec![2, 3]);
        assert_eq!(s.dequeue_chunk(2), vec![100, 101]);
        assert_eq!(s.dequeue_chunk(2), vec![102, 103]);
        assert_eq!(s.dequeue_chunk(2), vec![4, 5]);
    }

    #[test]
    fn drr_idle_tenant_forfeits_credit() {
        let mut s: DrrScheduler<u32> = DrrScheduler::new(8);
        s.enqueue("a", 1, 0);
        for i in 0..8u32 {
            s.enqueue("b", 1, 100 + i);
        }
        // a empties on its first turn (7 credits unspent, forfeited).
        assert_eq!(
            s.dequeue_chunk(16),
            vec![0, 100, 101, 102, 103, 104, 105, 106, 107]
        );
        // Re-backlogged a starts from zero credit, not 7 + quantum.
        for i in 1..=2u32 {
            s.enqueue("a", 1, i);
        }
        for i in 8..16u32 {
            s.enqueue("b", 1, 100 + i);
        }
        let out = s.dequeue_chunk(10);
        assert_eq!(&out[..2], &[1, 2], "a serves its (whole) backlog first");
    }

    /// Deterministic fairness + FIFO harness used by the property test
    /// below (items carry their tenant + sequence number, so shares and
    /// ordering are countable).
    fn drr_run(
        quantum: u32,
        weights: &[u32],
        order_seed: u64,
        chunk: usize,
    ) -> (Vec<u64>, bool, u64) {
        let n = weights.len();
        let per_tenant = 64usize * quantum as usize;
        let mut s: DrrScheduler<(usize, usize)> = DrrScheduler::new(quantum);
        let mut remaining: Vec<usize> = vec![per_tenant; n];
        let mut seq: Vec<usize> = vec![0; n];
        let mut state = order_seed | 1;
        let mut arrivals = 0usize;
        while arrivals < per_tenant * n {
            state = state
                .wrapping_mul(0x5851_f42d_4c95_7f2d)
                .wrapping_add(0x1405_7b7e_f767_814f);
            let t = (state >> 33) as usize % n;
            if remaining[t] > 0 {
                remaining[t] -= 1;
                s.enqueue(&format!("t{t}"), weights[t], (t, seq[t]));
                seq[t] += 1;
                arrivals += 1;
            }
        }
        let weight_sum: u64 = weights.iter().map(|w| *w as u64).sum();
        // A window every tenant survives: tenant i is dequeued
        // quantum×w_i per round, so `rounds` rounds consume at most
        // rounds×quantum×w_i ≤ per_tenant items from each tenant.
        let max_weight = *weights.iter().max().unwrap() as u64;
        let rounds = (per_tenant as u64 / (quantum as u64 * max_weight)).clamp(2, 16);
        let window = (rounds * quantum as u64 * weight_sum) as usize;
        let mut served: Vec<u64> = vec![0; n];
        let mut next_seq: Vec<usize> = vec![0; n];
        let mut fifo_ok = true;
        let mut drawn = 0usize;
        while drawn < window {
            let take = chunk.min(window - drawn);
            let got = s.dequeue_chunk(take);
            if got.is_empty() {
                break;
            }
            drawn += got.len();
            for (t, sq) in got {
                served[t] += 1;
                fifo_ok &= sq == next_seq[t];
                next_seq[t] = sq + 1;
            }
        }
        (served, fifo_ok, rounds)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// DRR fairness: over random arrival orders, weights, quantum
        /// sizes, and chunk cutoffs, every continuously-backlogged
        /// tenant's dequeue count is exactly `rounds × quantum × weight`
        /// within one round's slack, and per-tenant FIFO never breaks.
        #[test]
        fn drr_fairness_and_fifo(
            quantum in 1u32..9,
            weights in proptest::collection::vec(1u32..5, 2..6),
            order_seed in 0u64..u64::MAX,
            chunk in 1usize..12,
        ) {
            let (served, fifo_ok, rounds) =
                drr_run(quantum, &weights, order_seed, chunk);
            prop_assert!(fifo_ok, "per-tenant FIFO violated");
            for (t, &count) in served.iter().enumerate() {
                let ideal = rounds * quantum as u64 * weights[t] as u64;
                let slack = quantum as u64 * weights[t] as u64; // one round
                prop_assert!(
                    count + slack >= ideal && count <= ideal + slack,
                    "tenant {t} (w={}) served {count}, ideal {ideal} ± {slack}",
                    weights[t]
                );
            }
        }
    }
}
