//! # querc-linalg
//!
//! Dense linear algebra, deterministic random number generation, weighted
//! sampling and gradient-descent optimizers for the Querc reproduction.
//!
//! Everything in this crate is written from scratch on safe Rust: the
//! embedding models in `querc-embed` (Doc2Vec, LSTM autoencoder) and the
//! classifiers in `querc-learn` are built exclusively on these primitives,
//! so the whole ML stack is dependency-free and bit-reproducible under a
//! fixed seed.
//!
//! ## Modules
//!
//! * [`rng`] — a PCG-32 generator with independent streams, plus shuffle /
//!   choice / Gaussian helpers. All randomized code in the workspace takes a
//!   `Pcg32` explicitly; nothing reads ambient entropy.
//! * [`matrix`] — row-major `f32` matrices with GEMV/GEMM kernels sized for
//!   the small dense models used here.
//! * [`ops`] — vector kernels (dot, axpy, softmax, …) shared by the models.
//! * [`init`] — Xavier/He/uniform parameter initialization.
//! * [`alias`] — Walker alias tables for O(1) draws from discrete
//!   distributions (negative sampling, sampled softmax).
//! * [`optim`] — SGD (+momentum), Adagrad and Adam over named parameter
//!   slots.
//! * [`stats`] — small statistics helpers (mean, variance, argmax, …).
//! * [`kernel`] — the shared **compute plane**: runtime-dispatched
//!   scalar/AVX2 twins of the hot kernels (distances, dot/axpy,
//!   gathered dots, blocked GEMM, SQ8 ADC), bit-identical across arms.
//! * [`pool`] — [`ComputePool`], deterministic fork/join over scoped
//!   std threads; `map` results are index-ordered so N-thread training
//!   folds reductions in a fixed order and stays bit-identical to
//!   1-thread.

pub mod alias;
pub mod init;
pub mod kernel;
pub mod matrix;
pub mod ops;
pub mod optim;
pub mod pool;
pub mod rng;
pub mod stats;

pub use alias::AliasTable;
pub use kernel::Kernel;
pub use matrix::Matrix;
pub use optim::{Adagrad, Adam, Optimizer, Sgd};
pub use pool::ComputePool;
pub use rng::Pcg32;
