//! Offline stand-in for the `crossbeam` channel API used by this
//! workspace: unbounded MPMC channels with hang-up detection, built on
//! `Mutex<VecDeque>` + `Condvar`. Semantics match crossbeam where the
//! workspace relies on them:
//!
//! * both `Sender` and `Receiver` are `Clone` (MPMC — replicated
//!   Qworkers pull from one stream);
//! * `send` fails only when every receiver is gone;
//! * `recv`/`iter` block until a message arrives or every sender is
//!   gone and the queue is drained.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Error returned by `send` when all receivers are gone; carries the
    /// unsent message back to the caller.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by `recv` when the channel is drained and closed.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by `try_recv`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.inner.queue.lock().unwrap().push_back(msg);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                let _guard = self.inner.queue.lock().unwrap();
                self.inner.ready.notify_all();
            }
        }
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().unwrap();
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.inner.ready.wait(queue).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().unwrap();
            match queue.pop_front() {
                Some(msg) => Ok(msg),
                None if self.inner.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator: yields until the channel is closed and empty.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Number of queued messages (diagnostic).
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn mpmc_fanout_consumes_each_message_once() {
        let (tx, rx) = unbounded();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
