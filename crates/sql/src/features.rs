//! Hand-engineered syntactic features — the classical baseline.
//!
//! This is the approach the paper argues *against*: a fixed-width feature
//! vector built from counts of syntactic constructs (joins, group-by width,
//! aggregates, predicate classes), in the spirit of Chaudhuri et al.'s
//! workload-compression distance functions. Querc keeps it as an ablation
//! baseline so the experiments can compare learned embeddings against
//! specialized feature engineering on equal footing.

use crate::ast::{CmpOp, QueryShape, StatementKind};
use crate::dialect::Dialect;
use crate::parser::parse_query;

/// Dimensionality of [`feature_vector`]'s output.
///
/// Grown 32 → 40 when lineage features landed; the first 32 positions
/// keep their historical meaning (pinned by a golden-vector test) so
/// persisted embeddings degrade gracefully instead of silently
/// reshuffling.
pub const FEATURE_DIM: usize = 40;

/// Number of hash buckets used for table-name features.
const TABLE_BUCKETS: usize = 8;

/// Extract the fixed-width syntactic feature vector from SQL text.
///
/// Layout (all counts lightly log-compressed so large queries do not
/// dominate Euclidean distances):
///
/// | idx     | feature                                     |
/// |---------|---------------------------------------------|
/// | 0       | statement kind ordinal / 10                 |
/// | 1       | number of tables                            |
/// | 2       | number of join edges                        |
/// | 3       | number of WHERE predicates                  |
/// | 4       | equality predicates                         |
/// | 5       | range predicates (<, <=, >, >=, between)    |
/// | 6       | LIKE predicates                             |
/// | 7       | IN predicates                               |
/// | 8       | NULL tests                                  |
/// | 9       | group-by width                              |
/// | 10      | order-by width                              |
/// | 11      | aggregate calls                             |
/// | 12      | HAVING predicates                           |
/// | 13      | projections                                 |
/// | 14      | DISTINCT flag                               |
/// | 15      | has LIMIT flag                              |
/// | 16      | set operations                              |
/// | 17      | subquery depth                              |
/// | 18      | token count (log scale)                     |
/// | 19      | predicates under OR                         |
/// | 20..23  | reserved aggregate kinds (sum/count/avg/minmax) |
/// | 24..31  | table-name hash buckets                     |
/// | 32      | lineage: distinct base tables read          |
/// | 33      | lineage: CTEs defined                       |
/// | 34      | lineage: writes a table (flag)              |
/// | 35      | lineage: defines a view (flag)              |
/// | 36      | QUALIFY predicates                          |
/// | 37      | derived tables in FROM                      |
/// | 38..39  | lineage read-set hash buckets               |
pub fn feature_vector(sql: &str, dialect: Dialect) -> Vec<f32> {
    let shape = parse_query(sql, dialect);
    features_from_shape(&shape)
}

/// Build the feature vector from an already-parsed shape.
pub fn features_from_shape(shape: &QueryShape) -> Vec<f32> {
    let mut f = vec![0.0f32; FEATURE_DIM];
    f[0] = kind_ordinal(shape.kind) as f32 / 10.0;
    f[1] = ln1p(shape.tables.len());
    f[2] = ln1p(shape.joins.len());
    f[3] = ln1p(shape.predicates.len());
    let mut eq = 0;
    let mut range = 0;
    let mut like = 0;
    let mut inn = 0;
    let mut nulls = 0;
    let mut in_or = 0;
    for p in &shape.predicates {
        match p.op {
            CmpOp::Eq | CmpOp::Ne => eq += 1,
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge | CmpOp::Between => range += 1,
            CmpOp::Like => like += 1,
            CmpOp::In => inn += 1,
            CmpOp::IsNull | CmpOp::IsNotNull => nulls += 1,
            CmpOp::Exists => {}
        }
        if p.in_or {
            in_or += 1;
        }
    }
    f[4] = ln1p(eq);
    f[5] = ln1p(range);
    f[6] = ln1p(like);
    f[7] = ln1p(inn);
    f[8] = ln1p(nulls);
    f[9] = ln1p(shape.group_by.len());
    f[10] = ln1p(shape.order_by.len());
    f[11] = ln1p(shape.aggregates.len());
    f[12] = ln1p(shape.having.len());
    f[13] = ln1p(shape.projections);
    f[14] = if shape.distinct { 1.0 } else { 0.0 };
    f[15] = if shape.limit.is_some() { 1.0 } else { 0.0 };
    f[16] = ln1p(shape.set_ops);
    f[17] = ln1p(shape.subquery_depth);
    f[18] = ln1p(shape.token_count);
    f[19] = ln1p(in_or);
    for a in &shape.aggregates {
        match a.func.as_str() {
            "sum" => f[20] += 1.0,
            "count" => f[21] += 1.0,
            "avg" => f[22] += 1.0,
            "min" | "max" => f[23] += 1.0,
            _ => {}
        }
    }
    for v in &mut f[20..24] {
        *v = (1.0 + *v).ln();
    }
    for t in &shape.tables {
        let b = 24 + (fnv1a(&t.name) as usize % TABLE_BUCKETS);
        f[b] += 1.0;
    }
    for v in &mut f[24..24 + TABLE_BUCKETS] {
        *v = (1.0 + *v).ln();
    }
    // Lineage block (32..): what the query *depends on* rather than how
    // it is phrased — base tables read, CTE scaffolding, write/view
    // targets. This is the signal lineage-aware routing keys off.
    let lin = shape.lineage();
    f[32] = ln1p(lin.reads.len());
    f[33] = ln1p(lin.ctes.len());
    f[34] = if lin.writes.is_empty() { 0.0 } else { 1.0 };
    f[35] = if lin.views.is_empty() { 0.0 } else { 1.0 };
    f[36] = ln1p(shape.qualify.len());
    f[37] = ln1p(shape.derived_tables);
    for r in &lin.reads {
        let b = 38 + (fnv1a(r) as usize % 2);
        f[b] += 1.0;
    }
    for v in &mut f[38..40] {
        *v = (1.0 + *v).ln();
    }
    f
}

fn ln1p(n: usize) -> f32 {
    (1.0 + n as f32).ln()
}

fn kind_ordinal(kind: Option<StatementKind>) -> u8 {
    match kind {
        Some(StatementKind::Select) => 1,
        Some(StatementKind::Insert) => 2,
        Some(StatementKind::Update) => 3,
        Some(StatementKind::Delete) => 4,
        Some(StatementKind::CreateTable) => 5,
        Some(StatementKind::CreateView) => 6,
        Some(StatementKind::Drop) => 7,
        Some(StatementKind::Copy) => 8,
        Some(StatementKind::Show) => 9,
        Some(StatementKind::Set) => 10,
        Some(StatementKind::Other) | None => 0,
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden layout test: every index of the feature vector is pinned to
    /// its documented meaning for one fully hand-derived query. Adding
    /// features must *append* (and bump `FEATURE_DIM`); any reshuffle of
    /// existing positions fails here before it can corrupt persisted
    /// embedding inputs.
    #[test]
    fn golden_vector_pins_layout() {
        let sql = "WITH c AS (SELECT k FROM t2) \
                   SELECT DISTINCT a, sum(b) FROM t1, c \
                   WHERE t1.k = c.k AND a = 1 \
                   GROUP BY a ORDER BY a LIMIT 5";
        let got = feature_vector(sql, Dialect::Generic);

        let mut want = vec![0.0f32; FEATURE_DIM];
        want[0] = 0.1; // Select ordinal 1 / 10
        want[1] = ln1p(3); // tables: t2 (cte body), t1, c
        want[2] = ln1p(1); // join edge t1.k = c.k
        want[3] = ln1p(1); // predicate a = 1
        want[4] = ln1p(1); // ... which is an equality
        want[9] = ln1p(1); // group-by width
        want[10] = ln1p(1); // order-by width
        want[11] = ln1p(1); // sum(b)
        want[13] = ln1p(2); // projections a, sum(b)
        want[14] = 1.0; // DISTINCT
        want[15] = 1.0; // LIMIT present
        want[17] = ln1p(1); // CTE body counts one subquery level
        want[18] = ln1p(crate::lexer::tokenize(sql, Dialect::Generic).len());
        want[20] = ln1p(1); // one sum()
        for t in ["t2", "t1", "c"] {
            want[24 + (fnv1a(t) as usize % TABLE_BUCKETS)] += 1.0;
        }
        for v in &mut want[24..24 + TABLE_BUCKETS] {
            *v = (1.0 + *v).ln();
        }
        want[32] = ln1p(2); // lineage reads: t1, t2 (c excluded as CTE)
        want[33] = ln1p(1); // one CTE defined
        for t in ["t1", "t2"] {
            want[38 + (fnv1a(t) as usize % 2)] += 1.0;
        }
        for v in &mut want[38..40] {
            *v = (1.0 + *v).ln();
        }

        assert_eq!(got, want);
    }

    #[test]
    fn lineage_flags_set_for_writes_and_views() {
        let ins = feature_vector("INSERT INTO sink SELECT * FROM src", Dialect::Generic);
        assert_eq!(ins[34], 1.0, "write flag");
        assert_eq!(ins[35], 0.0);
        let view = feature_vector("CREATE VIEW v AS SELECT * FROM base", Dialect::Generic);
        assert_eq!(view[34], 0.0);
        assert_eq!(view[35], 1.0, "view flag");
        let q = feature_vector(
            "SELECT a FROM t QUALIFY row_number() OVER (PARTITION BY a ORDER BY b) = 1",
            Dialect::Snowflake,
        );
        assert!(q[36] > 0.0, "qualify predicates counted");
        let d = feature_vector("SELECT * FROM (SELECT a FROM t) sub", Dialect::Generic);
        assert!(d[37] > 0.0, "derived tables counted");
    }

    #[test]
    fn dimension_is_fixed() {
        assert_eq!(
            feature_vector("SELECT 1", Dialect::Generic).len(),
            FEATURE_DIM
        );
        assert_eq!(feature_vector("", Dialect::Generic).len(), FEATURE_DIM);
    }

    #[test]
    fn join_count_reflected() {
        let no_join = feature_vector("SELECT * FROM a WHERE x = 1", Dialect::Generic);
        let join = feature_vector(
            "SELECT * FROM a, b WHERE a.k = b.k AND a.x = 1",
            Dialect::Generic,
        );
        assert!(join[2] > no_join[2]);
        assert!(join[1] > no_join[1]);
    }

    #[test]
    fn similar_queries_are_close_different_far() {
        use std::cmp::Ordering;
        fn d(a: &[f32], b: &[f32]) -> f32 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f32>()
                .sqrt()
        }
        let a = feature_vector(
            "SELECT c1 FROM orders WHERE o_totalprice > 100",
            Dialect::Generic,
        );
        let b = feature_vector(
            "SELECT c2 FROM orders WHERE o_totalprice > 555",
            Dialect::Generic,
        );
        let c = feature_vector(
            "SELECT a, sum(b) FROM x, y, z WHERE x.k = y.k AND y.j = z.j GROUP BY a ORDER BY a LIMIT 5",
            Dialect::Generic,
        );
        assert_eq!(
            d(&a, &b).partial_cmp(&d(&a, &c)),
            Some(Ordering::Less),
            "same-shape queries should be closer than different-shape"
        );
    }

    #[test]
    fn literal_values_do_not_change_features() {
        let a = feature_vector("SELECT * FROM t WHERE x = 1", Dialect::Generic);
        let b = feature_vector("SELECT * FROM t WHERE x = 999999", Dialect::Generic);
        assert_eq!(a, b);
    }

    #[test]
    fn table_bucket_features_differ_for_different_tables() {
        let a = feature_vector("SELECT * FROM lineitem", Dialect::Generic);
        let b = feature_vector("SELECT * FROM customer", Dialect::Generic);
        // Not guaranteed for adversarial names, but these two hash apart.
        assert_ne!(a[24..32], b[24..32]);
    }

    #[test]
    fn all_features_finite() {
        for sql in [
            "SELECT * FROM t",
            "INSERT INTO t VALUES (1)",
            "totally not sql ((((",
            "",
        ] {
            let f = feature_vector(sql, Dialect::Generic);
            assert!(f.iter().all(|v| v.is_finite()), "{sql}");
        }
    }
}
