//! Secondary index definitions.

use std::fmt;

/// A (simulated) secondary B-tree index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Index {
    /// Table the index is built on (lowercase).
    pub table: String,
    /// Key columns in order; the *leading* column decides seek
    /// applicability in this simulator.
    pub columns: Vec<String>,
}

impl Index {
    pub fn new(table: &str, columns: &[&str]) -> Self {
        Index {
            table: table.to_ascii_lowercase(),
            columns: columns.iter().map(|c| c.to_ascii_lowercase()).collect(),
        }
    }

    /// Leading key column.
    pub fn leading(&self) -> &str {
        self.columns.first().map(String::as_str).unwrap_or("")
    }

    /// Can this index serve a seek on `column` of `table`?
    pub fn serves(&self, table: &str, column: &str) -> bool {
        self.table.eq_ignore_ascii_case(table) && self.leading().eq_ignore_ascii_case(column)
    }

    /// Estimated size in bytes (keys + row pointers).
    pub fn size_bytes(&self, table_rows: u64) -> u64 {
        table_rows * (8 + 12 * self.columns.len() as u64)
    }
}

impl fmt::Display for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "idx_{}({})", self.table, self.columns.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes_case() {
        let idx = Index::new("LineItem", &["L_ShipDate", "L_Quantity"]);
        assert_eq!(idx.table, "lineitem");
        assert_eq!(idx.leading(), "l_shipdate");
    }

    #[test]
    fn serves_leading_column_only() {
        let idx = Index::new("lineitem", &["l_shipdate", "l_quantity"]);
        assert!(idx.serves("lineitem", "l_shipdate"));
        assert!(idx.serves("LINEITEM", "L_SHIPDATE"));
        assert!(!idx.serves("lineitem", "l_quantity"));
        assert!(!idx.serves("orders", "l_shipdate"));
    }

    #[test]
    fn display_and_size() {
        let idx = Index::new("orders", &["o_orderdate"]);
        assert_eq!(idx.to_string(), "idx_orders(o_orderdate)");
        assert_eq!(idx.size_bytes(1000), 1000 * 20);
    }
}
