//! TPC-H query workload generator.
//!
//! All 22 TPC-H templates with parameter substitution following the spec's
//! ranges (dates, segments, regions, brands, quantities …), emitting plain
//! SQL text. The §5.1 experiment runs on ~800 queries — the default of 38
//! instances per template reproduces that scale.
//!
//! The generated SQL is deliberately *textual*: the simulator re-parses it
//! with `querc-sql`, exactly as Querc would receive it from a client, so
//! the whole pipeline (text → shape → cost) is exercised end to end.

use querc_linalg::Pcg32;

/// One generated TPC-H query instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TpchQuery {
    /// Template number, 1–22.
    pub template: u8,
    /// The instantiated SQL text.
    pub sql: String,
}

/// A generated TPC-H workload.
#[derive(Debug, Clone)]
pub struct TpchWorkload {
    /// Generated query instances, grouped by template in order.
    pub queries: Vec<TpchQuery>,
}

impl TpchWorkload {
    /// Generate `per_template` instances of every template, interleaved in
    /// template order (q1 block, then q2 block, …) like the paper's Fig 4
    /// x-axis (Q18 instances occupy a contiguous range).
    pub fn generate(per_template: usize, seed: u64) -> TpchWorkload {
        let mut queries = Vec::with_capacity(22 * per_template);
        for template in 1..=22u8 {
            let mut rng = Pcg32::with_stream(seed, 0x7c00 + template as u64);
            for _ in 0..per_template {
                queries.push(TpchQuery {
                    template,
                    sql: instantiate(template, &mut rng),
                });
            }
        }
        TpchWorkload { queries }
    }

    /// SQL texts only.
    pub fn sql(&self) -> Vec<&str> {
        self.queries.iter().map(|q| q.sql.as_str()).collect()
    }

    /// Index range (start, end-exclusive) of a template's block.
    pub fn template_range(&self, template: u8) -> (usize, usize) {
        let start = self.queries.iter().position(|q| q.template == template);
        match start {
            Some(s) => {
                let e = self.queries[s..]
                    .iter()
                    .position(|q| q.template != template)
                    .map(|off| s + off)
                    .unwrap_or(self.queries.len());
                (s, e)
            }
            None => (0, 0),
        }
    }
}

// ---- parameter domains (TPC-H spec §2.4.x, abbreviated) -----------------

const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: &[&str] = &[
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];
const SHIP_MODES: &[&str] = &["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const CONTAINERS_1: &[&str] = &["SM", "LG", "MED", "JUMBO", "WRAP"];
const CONTAINERS_2: &[&str] = &["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const TYPES_1: &[&str] = &["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPES_2: &[&str] = &["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPES_3: &[&str] = &["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const COLORS: &[&str] = &[
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "hotpink",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
    "navajo",
    "navy",
    "olive",
    "orange",
    "orchid",
    "pale",
    "papaya",
    "peach",
    "peru",
    "pink",
    "plum",
    "powder",
    "puff",
    "purple",
    "red",
    "rose",
    "rosy",
    "royal",
    "saddle",
    "salmon",
    "sandy",
    "seashell",
    "sienna",
    "sky",
    "slate",
    "smoke",
    "snow",
    "spring",
    "steel",
    "tan",
    "thistle",
    "tomato",
    "turquoise",
    "violet",
    "wheat",
    "white",
    "yellow",
];

fn date(y: i64, m: i64, d: i64) -> String {
    format!("{y:04}-{m:02}-{d:02}")
}

fn brand(rng: &mut Pcg32) -> String {
    format!("Brand#{}{}", 1 + rng.below(5), 1 + rng.below(5))
}

fn ptype(rng: &mut Pcg32) -> String {
    format!(
        "{} {} {}",
        rng.choose(TYPES_1),
        rng.choose(TYPES_2),
        rng.choose(TYPES_3)
    )
}

/// The base tables each template reads, sorted ascending — the ground
/// truth the parser's [`querc_sql::ast::QueryShape::lineage`] extraction
/// is checked against, and the key space lineage-aware routing sees when
/// serving a TPC-H workload. CTEs (Q15's `revenue`) are not base tables
/// and are deliberately absent.
pub fn lineage_tables(template: u8) -> &'static [&'static str] {
    match template {
        1 | 6 => &["lineitem"],
        2 => &["nation", "part", "partsupp", "region", "supplier"],
        3 | 18 => &["customer", "lineitem", "orders"],
        4 | 12 => &["lineitem", "orders"],
        5 => &[
            "customer", "lineitem", "nation", "orders", "region", "supplier",
        ],
        7 => &["customer", "lineitem", "nation", "orders", "supplier"],
        8 => &[
            "customer", "lineitem", "nation", "orders", "part", "region", "supplier",
        ],
        9 => &[
            "lineitem", "nation", "orders", "part", "partsupp", "supplier",
        ],
        10 => &["customer", "lineitem", "nation", "orders"],
        11 => &["nation", "partsupp", "supplier"],
        13 | 22 => &["customer", "orders"],
        14 | 17 | 19 => &["lineitem", "part"],
        15 => &["lineitem", "supplier"],
        16 => &["part", "partsupp", "supplier"],
        20 => &["lineitem", "nation", "part", "partsupp", "supplier"],
        21 => &["lineitem", "nation", "orders", "supplier"],
        other => panic!("TPC-H has 22 templates, got {other}"),
    }
}

/// Instantiate one template with spec-range parameters.
pub fn instantiate(template: u8, rng: &mut Pcg32) -> String {
    match template {
        1 => q1(rng),
        2 => q2(rng),
        3 => q3(rng),
        4 => q4(rng),
        5 => q5(rng),
        6 => q6(rng),
        7 => q7(rng),
        8 => q8(rng),
        9 => q9(rng),
        10 => q10(rng),
        11 => q11(rng),
        12 => q12(rng),
        13 => q13(rng),
        14 => q14(rng),
        15 => q15(rng),
        16 => q16(rng),
        17 => q17(rng),
        18 => q18(rng),
        19 => q19(rng),
        20 => q20(rng),
        21 => q21(rng),
        22 => q22(rng),
        other => panic!("TPC-H has 22 templates, got {other}"),
    }
}

fn q1(rng: &mut Pcg32) -> String {
    let delta = rng.range_i64(60, 120);
    format!(
        "select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty, \
         sum(l_extendedprice) as sum_base_price, \
         sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, \
         sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge, \
         avg(l_quantity) as avg_qty, avg(l_extendedprice) as avg_price, \
         avg(l_discount) as avg_disc, count(*) as count_order \
         from lineitem \
         where l_shipdate <= date '1998-12-01' - interval '{delta}' day \
         group by l_returnflag, l_linestatus \
         order by l_returnflag, l_linestatus"
    )
}

fn q2(rng: &mut Pcg32) -> String {
    let size = rng.range_i64(1, 50);
    let t3 = rng.choose(TYPES_3);
    let region = rng.choose(REGIONS);
    format!(
        "select s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment \
         from part, supplier, partsupp, nation, region \
         where p_partkey = ps_partkey and s_suppkey = ps_suppkey and p_size = {size} \
         and p_type like '%{t3}' and s_nationkey = n_nationkey \
         and n_regionkey = r_regionkey and r_name = '{region}' \
         and ps_supplycost = (select min(ps_supplycost) from partsupp, supplier, nation, region \
           where p_partkey = ps_partkey and s_suppkey = ps_suppkey and s_nationkey = n_nationkey \
           and n_regionkey = r_regionkey and r_name = '{region}') \
         order by s_acctbal desc, n_name, s_name, p_partkey limit 100"
    )
}

fn q3(rng: &mut Pcg32) -> String {
    let segment = rng.choose(SEGMENTS);
    let d = date(1995, 3, rng.range_i64(1, 31));
    format!(
        "select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue, \
         o_orderdate, o_shippriority \
         from customer, orders, lineitem \
         where c_mktsegment = '{segment}' and c_custkey = o_custkey \
         and l_orderkey = o_orderkey and o_orderdate < date '{d}' \
         and l_shipdate > date '{d}' \
         group by l_orderkey, o_orderdate, o_shippriority \
         order by revenue desc, o_orderdate limit 10"
    )
}

fn q4(rng: &mut Pcg32) -> String {
    let y = rng.range_i64(1993, 1997);
    let m = rng.range_i64(1, 10);
    let d0 = date(y, m, 1);
    let (y2, m2) = if m + 3 > 12 {
        (y + 1, m + 3 - 12)
    } else {
        (y, m + 3)
    };
    let d1 = date(y2, m2, 1);
    format!(
        "select o_orderpriority, count(*) as order_count from orders \
         where o_orderdate >= date '{d0}' and o_orderdate < date '{d1}' \
         and exists (select * from lineitem where l_orderkey = o_orderkey \
         and l_commitdate < l_receiptdate) \
         group by o_orderpriority order by o_orderpriority"
    )
}

fn q5(rng: &mut Pcg32) -> String {
    let region = rng.choose(REGIONS);
    let y = rng.range_i64(1993, 1997);
    format!(
        "select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue \
         from customer, orders, lineitem, supplier, nation, region \
         where c_custkey = o_custkey and l_orderkey = o_orderkey \
         and l_suppkey = s_suppkey and c_nationkey = s_nationkey \
         and s_nationkey = n_nationkey and n_regionkey = r_regionkey \
         and r_name = '{region}' and o_orderdate >= date '{}' \
         and o_orderdate < date '{}' \
         group by n_name order by revenue desc",
        date(y, 1, 1),
        date(y + 1, 1, 1)
    )
}

fn q6(rng: &mut Pcg32) -> String {
    let y = rng.range_i64(1993, 1997);
    let discount = rng.range_i64(2, 9) as f64 / 100.0;
    let quantity = rng.range_i64(24, 25);
    format!(
        "select sum(l_extendedprice * l_discount) as revenue from lineitem \
         where l_shipdate >= date '{}' and l_shipdate < date '{}' \
         and l_discount between {:.2} - 0.01 and {:.2} + 0.01 and l_quantity < {quantity}",
        date(y, 1, 1),
        date(y + 1, 1, 1),
        discount,
        discount
    )
}

fn q7(rng: &mut Pcg32) -> String {
    let n1 = rng.choose(NATIONS);
    let mut n2 = rng.choose(NATIONS);
    while n2 == n1 {
        n2 = rng.choose(NATIONS);
    }
    format!(
        "select supp_nation, cust_nation, l_year, sum(volume) as revenue from \
         (select n1.n_name as supp_nation, n2.n_name as cust_nation, \
          l_extendedprice * (1 - l_discount) as volume, l_shipdate as l_year \
          from supplier, lineitem, orders, customer, nation n1, nation n2 \
          where s_suppkey = l_suppkey and o_orderkey = l_orderkey \
          and c_custkey = o_custkey and s_nationkey = n1.n_nationkey \
          and c_nationkey = n2.n_nationkey \
          and n1.n_name = '{n1}' and n2.n_name = '{n2}' \
          and l_shipdate between date '1995-01-01' and date '1996-12-31') as shipping \
         group by supp_nation, cust_nation, l_year \
         order by supp_nation, cust_nation, l_year"
    )
}

fn q8(rng: &mut Pcg32) -> String {
    let nation = rng.choose(NATIONS);
    let region = rng.choose(REGIONS);
    let t = ptype(rng);
    format!(
        "select o_orderdate, sum(l_extendedprice * (1 - l_discount)) as volume, n2.n_name \
         from part, supplier, lineitem, orders, customer, nation n1, nation n2, region \
         where p_partkey = l_partkey and s_suppkey = l_suppkey \
         and l_orderkey = o_orderkey and o_custkey = c_custkey \
         and c_nationkey = n1.n_nationkey and n1.n_regionkey = r_regionkey \
         and r_name = '{region}' and s_nationkey = n2.n_nationkey \
         and o_orderdate between date '1995-01-01' and date '1996-12-31' \
         and p_type = '{t}' and n2.n_name = '{nation}' \
         group by o_orderdate, n2.n_name order by o_orderdate"
    )
}

fn q9(rng: &mut Pcg32) -> String {
    let color = rng.choose(COLORS);
    format!(
        "select n_name, o_orderdate, \
         sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) as amount \
         from part, supplier, lineitem, partsupp, orders, nation \
         where s_suppkey = l_suppkey and ps_suppkey = l_suppkey \
         and ps_partkey = l_partkey and p_partkey = l_partkey \
         and o_orderkey = l_orderkey and s_nationkey = n_nationkey \
         and p_name like '%{color}%' \
         group by n_name, o_orderdate order by n_name, o_orderdate desc"
    )
}

fn q10(rng: &mut Pcg32) -> String {
    let y = rng.range_i64(1993, 1994);
    let m = rng.range_i64(1, 12);
    let (y2, m2) = if m + 3 > 12 {
        (y + 1, m + 3 - 12)
    } else {
        (y, m + 3)
    };
    format!(
        "select c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) as revenue, \
         c_acctbal, n_name, c_address, c_phone, c_comment \
         from customer, orders, lineitem, nation \
         where c_custkey = o_custkey and l_orderkey = o_orderkey \
         and o_orderdate >= date '{}' and o_orderdate < date '{}' \
         and l_returnflag = 'R' and c_nationkey = n_nationkey \
         group by c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment \
         order by revenue desc limit 20",
        date(y, m, 1),
        date(y2, m2, 1)
    )
}

fn q11(rng: &mut Pcg32) -> String {
    let nation = rng.choose(NATIONS);
    format!(
        "select ps_partkey, sum(ps_supplycost * ps_availqty) as value \
         from partsupp, supplier, nation \
         where ps_suppkey = s_suppkey and s_nationkey = n_nationkey and n_name = '{nation}' \
         group by ps_partkey \
         having sum(ps_supplycost * ps_availqty) > \
         (select sum(ps_supplycost * ps_availqty) * 0.0001 from partsupp, supplier, nation \
          where ps_suppkey = s_suppkey and s_nationkey = n_nationkey and n_name = '{nation}') \
         order by value desc"
    )
}

fn q12(rng: &mut Pcg32) -> String {
    let m1 = rng.choose(SHIP_MODES);
    let mut m2 = rng.choose(SHIP_MODES);
    while m2 == m1 {
        m2 = rng.choose(SHIP_MODES);
    }
    let y = rng.range_i64(1993, 1997);
    format!(
        "select l_shipmode, count(*) as line_count from orders, lineitem \
         where o_orderkey = l_orderkey and l_shipmode in ('{m1}', '{m2}') \
         and l_commitdate < l_receiptdate and l_shipdate < l_commitdate \
         and l_receiptdate >= date '{}' and l_receiptdate < date '{}' \
         group by l_shipmode order by l_shipmode",
        date(y, 1, 1),
        date(y + 1, 1, 1)
    )
}

fn q13(rng: &mut Pcg32) -> String {
    let w1 = rng.choose(&["special", "pending", "unusual", "express"]);
    let w2 = rng.choose(&["packages", "requests", "accounts", "deposits"]);
    format!(
        "select c_count, count(*) as custdist from \
         (select c_custkey, count(o_orderkey) as c_count from customer \
          left outer join orders on c_custkey = o_custkey \
          and o_comment not like '%{w1}%{w2}%' group by c_custkey) as c_orders \
         group by c_count order by custdist desc, c_count desc"
    )
}

fn q14(rng: &mut Pcg32) -> String {
    let y = rng.range_i64(1993, 1997);
    let m = rng.range_i64(1, 12);
    let (y2, m2) = if m == 12 { (y + 1, 1) } else { (y, m + 1) };
    format!(
        "select sum(l_extendedprice * (1 - l_discount)) as promo_revenue \
         from lineitem, part where l_partkey = p_partkey \
         and l_shipdate >= date '{}' and l_shipdate < date '{}'",
        date(y, m, 1),
        date(y2, m2, 1)
    )
}

fn q15(rng: &mut Pcg32) -> String {
    let y = rng.range_i64(1993, 1997);
    let m = rng.range_i64(1, 10);
    let (y2, m2) = if m + 3 > 12 {
        (y + 1, m + 3 - 12)
    } else {
        (y, m + 3)
    };
    format!(
        "with revenue as (select l_suppkey as supplier_no, \
         sum(l_extendedprice * (1 - l_discount)) as total_revenue from lineitem \
         where l_shipdate >= date '{}' and l_shipdate < date '{}' group by l_suppkey) \
         select s_suppkey, s_name, s_address, s_phone, total_revenue \
         from supplier, revenue where s_suppkey = supplier_no \
         and total_revenue = (select max(total_revenue) from revenue) order by s_suppkey",
        date(y, m, 1),
        date(y2, m2, 1)
    )
}

fn q16(rng: &mut Pcg32) -> String {
    let b = brand(rng);
    let t1 = rng.choose(TYPES_1);
    let t2 = rng.choose(TYPES_2);
    let sizes: Vec<String> = (0..8).map(|_| (1 + rng.below(50)).to_string()).collect();
    format!(
        "select p_brand, p_type, p_size, count(distinct ps_suppkey) as supplier_cnt \
         from partsupp, part where p_partkey = ps_partkey and p_brand <> '{b}' \
         and p_type not like '{t1} {t2}%' and p_size in ({}) \
         and ps_suppkey not in (select s_suppkey from supplier \
         where s_comment like '%Customer%Complaints%') \
         group by p_brand, p_type, p_size \
         order by supplier_cnt desc, p_brand, p_type, p_size",
        sizes.join(", ")
    )
}

fn q17(rng: &mut Pcg32) -> String {
    let b = brand(rng);
    let container = format!("{} {}", rng.choose(CONTAINERS_1), rng.choose(CONTAINERS_2));
    format!(
        "select sum(l_extendedprice) / 7.0 as avg_yearly from lineitem, part \
         where p_partkey = l_partkey and p_brand = '{b}' and p_container = '{container}' \
         and l_quantity < (select 0.2 * avg(l_quantity) from lineitem \
         where l_partkey = p_partkey)"
    )
}

fn q18(rng: &mut Pcg32) -> String {
    let quantity = rng.range_i64(312, 315);
    format!(
        "select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum(l_quantity) \
         from customer, orders, lineitem \
         where o_orderkey in (select l_orderkey from lineitem group by l_orderkey \
         having sum(l_quantity) > {quantity}) \
         and c_custkey = o_custkey and o_orderkey = l_orderkey \
         group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
         order by o_totalprice desc, o_orderdate limit 100"
    )
}

fn q19(rng: &mut Pcg32) -> String {
    let b1 = brand(rng);
    let b2 = brand(rng);
    let b3 = brand(rng);
    let q1 = rng.range_i64(1, 10);
    let q2 = rng.range_i64(10, 20);
    let q3 = rng.range_i64(20, 30);
    format!(
        "select sum(l_extendedprice * (1 - l_discount)) as revenue from lineitem, part \
         where (p_partkey = l_partkey and p_brand = '{b1}' \
         and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') \
         and l_quantity >= {q1} and l_quantity <= {q1} + 10 and p_size between 1 and 5 \
         and l_shipmode in ('AIR', 'AIR REG') and l_shipinstruct = 'DELIVER IN PERSON') \
         or (p_partkey = l_partkey and p_brand = '{b2}' \
         and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') \
         and l_quantity >= {q2} and l_quantity <= {q2} + 10 and p_size between 1 and 10 \
         and l_shipmode in ('AIR', 'AIR REG') and l_shipinstruct = 'DELIVER IN PERSON') \
         or (p_partkey = l_partkey and p_brand = '{b3}' \
         and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') \
         and l_quantity >= {q3} and l_quantity <= {q3} + 10 and p_size between 1 and 15 \
         and l_shipmode in ('AIR', 'AIR REG') and l_shipinstruct = 'DELIVER IN PERSON')"
    )
}

fn q20(rng: &mut Pcg32) -> String {
    let color = rng.choose(COLORS);
    let y = rng.range_i64(1993, 1997);
    let nation = rng.choose(NATIONS);
    format!(
        "select s_name, s_address from supplier, nation \
         where s_suppkey in (select ps_suppkey from partsupp \
         where ps_partkey in (select p_partkey from part where p_name like '{color}%') \
         and ps_availqty > (select 0.5 * sum(l_quantity) from lineitem \
         where l_partkey = ps_partkey and l_suppkey = ps_suppkey \
         and l_shipdate >= date '{}' and l_shipdate < date '{}')) \
         and s_nationkey = n_nationkey and n_name = '{nation}' order by s_name",
        date(y, 1, 1),
        date(y + 1, 1, 1)
    )
}

fn q21(rng: &mut Pcg32) -> String {
    let nation = rng.choose(NATIONS);
    format!(
        "select s_name, count(*) as numwait from supplier, lineitem l1, orders, nation \
         where s_suppkey = l1.l_suppkey and o_orderkey = l1.l_orderkey \
         and o_orderstatus = 'F' and l1.l_receiptdate > l1.l_commitdate \
         and exists (select * from lineitem l2 where l2.l_orderkey = l1.l_orderkey \
         and l2.l_suppkey <> l1.l_suppkey) \
         and not exists (select * from lineitem l3 where l3.l_orderkey = l1.l_orderkey \
         and l3.l_suppkey <> l1.l_suppkey and l3.l_receiptdate > l3.l_commitdate) \
         and s_nationkey = n_nationkey and n_name = '{nation}' \
         group by s_name order by numwait desc, s_name limit 100"
    )
}

fn q22(rng: &mut Pcg32) -> String {
    let codes: Vec<String> = {
        let mut set = std::collections::BTreeSet::new();
        while set.len() < 7 {
            set.insert((10 + rng.below(25)).to_string());
        }
        set.into_iter().collect()
    };
    let list = codes
        .iter()
        .map(|c| format!("'{c}'"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "select cntrycode, count(*) as numcust, sum(c_acctbal) as totacctbal from \
         (select substring(c_phone from 1 for 2) as cntrycode, c_acctbal from customer \
          where substring(c_phone from 1 for 2) in ({list}) \
          and c_acctbal > (select avg(c_acctbal) from customer where c_acctbal > 0.00 \
          and substring(c_phone from 1 for 2) in ({list})) \
          and not exists (select * from orders where o_custkey = c_custkey)) as custsale \
         group by cntrycode order by cntrycode"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_sql::{parse_query, Dialect, StatementKind};

    #[test]
    fn default_workload_size_matches_paper_scale() {
        let w = TpchWorkload::generate(38, 42);
        assert_eq!(w.queries.len(), 22 * 38); // 836 ≈ the paper's ~800
    }

    #[test]
    fn all_templates_generate_and_parse() {
        let mut rng = Pcg32::new(1);
        for t in 1..=22u8 {
            let sql = instantiate(t, &mut rng);
            assert!(!sql.is_empty());
            let shape = parse_query(&sql, Dialect::Generic);
            assert_eq!(
                shape.kind,
                Some(StatementKind::Select),
                "template {t} should parse as SELECT: {sql}"
            );
            assert!(
                !shape.tables.is_empty(),
                "template {t} should reference tables"
            );
        }
    }

    /// The parser's extracted lineage agrees with the spec-derived table
    /// sets for every template, across several instantiations: reads are
    /// exactly [`lineage_tables`], nothing is written, and Q15's CTE is
    /// captured by name without leaking into the read set.
    #[test]
    fn lineage_matches_known_tables_for_all_templates() {
        for seed in [21u64, 22, 23] {
            let mut rng = Pcg32::new(seed);
            for t in 1..=22u8 {
                let sql = instantiate(t, &mut rng);
                let lin = parse_query(&sql, Dialect::Generic).lineage();
                assert_eq!(lin.reads, lineage_tables(t), "template {t}: {sql}");
                assert!(
                    lin.writes.is_empty() && lin.views.is_empty(),
                    "template {t}"
                );
                if t == 15 {
                    assert_eq!(lin.ctes, vec!["revenue"], "Q15's CTE must be captured");
                } else {
                    assert!(lin.ctes.is_empty(), "template {t} has no CTEs");
                }
            }
        }
    }

    #[test]
    fn q1_touches_only_lineitem() {
        let mut rng = Pcg32::new(2);
        let shape = parse_query(&q1(&mut rng), Dialect::Generic);
        assert_eq!(shape.table_names(), vec!["lineitem"]);
        assert_eq!(shape.group_by.len(), 2);
        assert!(shape.aggregates.len() >= 8);
    }

    #[test]
    fn q3_has_two_join_edges_and_limit() {
        let mut rng = Pcg32::new(3);
        let shape = parse_query(&q3(&mut rng), Dialect::Generic);
        assert_eq!(shape.joins.len(), 2);
        assert_eq!(shape.limit, Some(10));
        assert!(shape.table_names().contains(&"customer"));
    }

    #[test]
    fn q18_has_having_subquery() {
        let mut rng = Pcg32::new(4);
        let shape = parse_query(&q18(&mut rng), Dialect::Generic);
        assert_eq!(shape.subquery_depth, 1);
        assert!(!shape.having.is_empty(), "Q18's HAVING must be extracted");
        assert_eq!(shape.limit, Some(100));
    }

    #[test]
    fn q6_predicates_are_sargable_ranges() {
        let mut rng = Pcg32::new(5);
        let shape = parse_query(&q6(&mut rng), Dialect::Generic);
        let sargable = shape.predicates.iter().filter(|p| p.sargable()).count();
        assert!(
            sargable >= 3,
            "Q6 should expose range predicates, got {sargable}"
        );
    }

    #[test]
    fn parameters_vary_between_instances() {
        let w = TpchWorkload::generate(10, 7);
        let (s, e) = w.template_range(3);
        let distinct: std::collections::HashSet<_> =
            w.queries[s..e].iter().map(|q| q.sql.as_str()).collect();
        assert!(distinct.len() > 1, "Q3 instances should differ");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TpchWorkload::generate(5, 99);
        let b = TpchWorkload::generate(5, 99);
        assert_eq!(a.queries, b.queries);
        let c = TpchWorkload::generate(5, 100);
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    fn template_ranges_are_contiguous_blocks() {
        let w = TpchWorkload::generate(4, 11);
        let (s, e) = w.template_range(18);
        assert_eq!(e - s, 4);
        assert!(w.queries[s..e].iter().all(|q| q.template == 18));
        // Q18's block sits deep in the workload, like Fig 4's 640-680 range.
        assert_eq!(s, 17 * 4);
    }

    #[test]
    fn q19_or_structure_detected() {
        let mut rng = Pcg32::new(8);
        let shape = parse_query(&q19(&mut rng), Dialect::Generic);
        assert!(
            shape.predicates.iter().any(|p| p.in_or),
            "Q19's OR-of-conjunctions should flag predicates as in_or"
        );
    }

    #[test]
    fn dates_are_well_formed() {
        for _ in 0..50 {
            let mut rng = Pcg32::new(13);
            for t in [1u8, 3, 4, 5, 6, 10, 12, 14, 15, 20] {
                let sql = instantiate(t, &mut rng);
                for part in sql.split("date '").skip(1) {
                    let lit: String = part.chars().take_while(|&c| c != '\'').collect();
                    assert!(
                        querc_sql::ast::date_to_days(&lit).is_some(),
                        "template {t} produced bad date {lit}"
                    );
                }
            }
        }
    }
}
