//! The elbow method for choosing K.
//!
//! The paper deliberately uses "an intentionally simple method": run
//! K-means for increasing K until the rate of change of the SSE plateaus.
//! `choose_k_elbow` reproduces that — it scans K over a range, computes
//! the SSE curve, and stops at the K where the relative improvement falls
//! below a threshold (or where curvature peaks as a fallback).

use crate::kmeans::{kmeans, KMeansConfig};
use querc_linalg::Pcg32;

/// Restarts per K inside [`sse_curve`]; the best (lowest) SSE is kept so
/// local optima do not distort the curve's shape.
const RESTARTS: usize = 4;

/// Compute the SSE for each K in `ks` (best of several K-means restarts).
pub fn sse_curve(points: &[Vec<f32>], ks: &[usize], rng: &mut Pcg32) -> Vec<f64> {
    ks.iter()
        .map(|&k| {
            (0..RESTARTS)
                .map(|r| {
                    let mut run_rng = rng.split(k as u64 * 131 + r as u64);
                    kmeans(
                        points,
                        &KMeansConfig {
                            k,
                            ..Default::default()
                        },
                        &mut run_rng,
                    )
                    .sse
                })
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

/// Choose K by the elbow criterion.
///
/// Scans `k = k_min..=k_max`; returns the first K whose relative SSE
/// improvement over K−1 drops below `plateau` (default caller value
/// ~0.1), i.e. where the curve has flattened. Falls back to the K of
/// maximum discrete curvature if no plateau is hit.
pub fn choose_k_elbow(
    points: &[Vec<f32>],
    k_min: usize,
    k_max: usize,
    plateau: f64,
    rng: &mut Pcg32,
) -> usize {
    assert!(k_min >= 1 && k_max >= k_min);
    let k_max = k_max.min(points.len().max(1));
    let k_min = k_min.min(k_max);
    let ks: Vec<usize> = (k_min..=k_max).collect();
    if ks.len() == 1 {
        return ks[0];
    }
    let sse = sse_curve(points, &ks, rng);
    // Plateau rule: first K whose improvement, measured against the
    // *initial* SSE, fades. Normalizing by sse[0] rather than the previous
    // point matters: once the curve reaches its noise floor, successive
    // ratios stay large even though the absolute gains are negligible.
    let scale = sse[0].max(1e-12);
    for i in 1..sse.len() {
        if sse[i - 1] <= 1e-12 {
            return ks[i - 1];
        }
        let gain = (sse[i - 1] - sse[i]) / scale;
        if gain < plateau {
            return ks[i - 1];
        }
    }
    // Fallback: maximum curvature (largest second difference).
    if sse.len() >= 3 {
        let mut best_i = 1;
        let mut best_curv = f64::NEG_INFINITY;
        for i in 1..sse.len() - 1 {
            let curv = sse[i - 1] - 2.0 * sse[i] + sse[i + 1];
            if curv > best_curv {
                best_curv = curv;
                best_i = i;
            }
        }
        return ks[best_i];
    }
    *ks.last().expect("non-empty ks")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(rng: &mut Pcg32, centers: &[(f32, f32)], n_per: usize, noise: f32) -> Vec<Vec<f32>> {
        let mut pts = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..n_per {
                pts.push(vec![cx + rng.normal() * noise, cy + rng.normal() * noise]);
            }
        }
        pts
    }

    #[test]
    fn finds_the_true_cluster_count_on_clean_blobs() {
        let mut rng = Pcg32::new(1);
        let pts = blobs(
            &mut rng,
            &[(0.0, 0.0), (20.0, 0.0), (0.0, 20.0), (20.0, 20.0)],
            40,
            0.5,
        );
        let k = choose_k_elbow(&pts, 1, 10, 0.1, &mut Pcg32::new(2));
        assert_eq!(k, 4, "four well-separated blobs");
    }

    #[test]
    fn single_blob_yields_small_k() {
        let mut rng = Pcg32::new(3);
        let pts = blobs(&mut rng, &[(0.0, 0.0)], 100, 1.0);
        // Gains on a single Gaussian decay like 1/k, so a plateau
        // threshold of 0.3 stops almost immediately.
        let k = choose_k_elbow(&pts, 1, 8, 0.3, &mut Pcg32::new(4));
        assert!(k <= 3, "one blob should not need many clusters, got {k}");
    }

    #[test]
    fn sse_curve_is_monotone_nonincreasing_modulo_noise() {
        let mut rng = Pcg32::new(5);
        let pts = blobs(&mut rng, &[(0.0, 0.0), (10.0, 10.0)], 50, 1.0);
        let curve = sse_curve(&pts, &[1, 2, 3, 4, 5, 6], &mut Pcg32::new(6));
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] * 1.05, "curve {curve:?}");
        }
    }

    #[test]
    fn k_bounds_respected() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        let k = choose_k_elbow(&pts, 2, 10, 0.1, &mut Pcg32::new(7));
        assert!((2..=3).contains(&k), "k clamped to n points, got {k}");
    }

    #[test]
    fn duplicate_points_pick_k_min() {
        let pts = vec![vec![1.0, 1.0]; 30];
        let k = choose_k_elbow(&pts, 1, 6, 0.1, &mut Pcg32::new(8));
        assert_eq!(k, 1);
    }
}
