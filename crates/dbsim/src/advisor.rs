//! Index tuning advisor with a time budget.
//!
//! Emulates the Database Engine Tuning Advisor workflow of the paper's
//! §5.1, with its costs *simulated* against a metered clock so the Fig 3
//! budget sweep is reproducible on any machine:
//!
//! 1. fixed startup overhead (statistics collection, workload parsing) —
//!    below it, no recommendation at all (the paper's flat < 3-minute
//!    region);
//! 2. **native workload compression** — oversized workloads are uniformly
//!    subsampled ("the tuning advisor performs its own summarization on
//!    the input according to the documentation"), which is the strawman
//!    that embedding-based summaries beat;
//! 3. candidate enumeration from sargable predicates, join keys and
//!    GROUP BY columns, join-key candidates first (they look best to the
//!    estimated cost model — and include the misestimation-prone ones);
//! 4. an anytime greedy scan in priority order: each candidate is
//!    what-if-priced against the current configuration (clock time charged
//!    per workload query) and adopted immediately when its estimated gain
//!    clears the threshold — with a tight budget the scan is cut short
//!    after the join-key candidates, which is where low-budget
//!    regressions come from;
//! 5. a validation pass that re-prices chosen indexes with *true* costs
//!    (the advisor materializing samples) and drops regressive ones —
//!    only reached when budget remains, which is why generous budgets
//!    converge to good configurations.

use crate::catalog::Catalog;
use crate::index::Index;
use crate::optimizer::plan_query;
use querc_linalg::Pcg32;
use querc_sql::ast::Lhs;
use querc_sql::{parse_query, Dialect, QueryShape};
use std::collections::BTreeMap;

/// Advisor tuning knobs (simulated-time costs).
#[derive(Debug, Clone)]
pub struct AdvisorConfig {
    /// Fixed startup cost (statistics, parsing), seconds.
    pub overhead_secs: f64,
    /// Cost of one what-if optimization of one query, seconds.
    pub whatif_secs_per_query: f64,
    /// Cost of *validating* one chosen index against one workload query
    /// (sample materialization + measured replay), seconds.
    pub validate_secs_per_query: f64,
    /// Workloads above this size are subsampled by the native compressor.
    pub max_workload: usize,
    /// Maximum indexes to recommend.
    pub max_indexes: usize,
    /// Minimum relative estimated improvement to adopt a candidate.
    pub min_gain: f64,
    pub seed: u64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            overhead_secs: 162.0,
            whatif_secs_per_query: 0.01,
            validate_secs_per_query: 0.04,
            max_workload: 200,
            max_indexes: 12,
            min_gain: 0.01,
            seed: 0xad50,
        }
    }
}

/// What the advisor did and recommended.
#[derive(Debug, Clone)]
pub struct AdvisorReport {
    pub indexes: Vec<Index>,
    /// Simulated advisor seconds actually consumed.
    pub consumed_secs: f64,
    /// Number of candidate indexes enumerated.
    pub candidates: usize,
    /// What-if evaluations performed.
    pub evaluations: usize,
    /// How many chosen indexes went through validation.
    pub validated: usize,
    /// Indexes dropped by validation (diagnostic).
    pub dropped: Vec<Index>,
}

/// The tuning advisor.
pub struct Advisor<'a> {
    catalog: &'a Catalog,
    cfg: AdvisorConfig,
}

impl<'a> Advisor<'a> {
    pub fn new(catalog: &'a Catalog, cfg: AdvisorConfig) -> Self {
        Advisor { catalog, cfg }
    }

    /// Recommend an index set for `workload` within `budget_secs` of
    /// simulated advisor time.
    pub fn recommend(&self, workload: &[&str], budget_secs: f64) -> AdvisorReport {
        let mut clock = self.cfg.overhead_secs;
        let mut report = AdvisorReport {
            indexes: Vec::new(),
            consumed_secs: clock.min(budget_secs),
            candidates: 0,
            evaluations: 0,
            validated: 0,
            dropped: Vec::new(),
        };
        if clock >= budget_secs || workload.is_empty() {
            return report;
        }

        // Native workload compression: uniform subsample.
        let mut rng = Pcg32::with_stream(self.cfg.seed, 0xad51);
        let working: Vec<&str> = if workload.len() > self.cfg.max_workload {
            let idx = rng.sample_indices(workload.len(), self.cfg.max_workload);
            idx.into_iter().map(|i| workload[i]).collect()
        } else {
            workload.to_vec()
        };
        let n = working.len();
        let whatif_cost = self.cfg.whatif_secs_per_query * n as f64;
        let validate_cost = self.cfg.validate_secs_per_query * n as f64;

        let shapes: Vec<QueryShape> = working
            .iter()
            .map(|s| parse_query(s, Dialect::Generic))
            .collect();
        let candidates = self.enumerate_candidates(&shapes);
        report.candidates = candidates.len();

        // Anytime greedy scan (shapes pre-parsed; what-if time is charged
        // against the simulated clock instead): walk the candidates in
        // priority order, price each against the configuration chosen so
        // far, and adopt immediately when the estimated gain clears the
        // threshold. A budget cut mid-scan keeps whatever was adopted so
        // far — unvalidated, exactly like a real advisor out of time.
        let mut current_est = self.est_total(&shapes, &[]);
        report.evaluations += n;
        clock += whatif_cost;
        let mut chosen: Vec<Index> = Vec::new();
        for cand in candidates {
            if chosen.len() >= self.cfg.max_indexes {
                break;
            }
            if clock + whatif_cost > budget_secs {
                break;
            }
            clock += whatif_cost;
            report.evaluations += n;
            let mut trial = chosen.clone();
            trial.push(cand.clone());
            let est = self.est_total(&shapes, &trial);
            if (current_est - est) / current_est >= self.cfg.min_gain {
                current_est = est;
                chosen.push(cand);
            }
        }

        // Validation pass: re-price each chosen index with TRUE costs and
        // drop the ones that make the (sub)workload slower.
        let mut validated_set = chosen.clone();
        let mut validated_count = 0usize;
        for ix in &chosen {
            if clock + validate_cost > budget_secs {
                break;
            }
            clock += validate_cost;
            validated_count += 1;
            let with: f64 = self.true_total(&shapes, &validated_set);
            let without_set: Vec<Index> =
                validated_set.iter().filter(|j| *j != ix).cloned().collect();
            let without = self.true_total(&shapes, &without_set);
            if with > without {
                validated_set = without_set;
                report.dropped.push(ix.clone());
            }
        }

        report.indexes = validated_set;
        report.validated = validated_count;
        report.consumed_secs = clock.min(budget_secs);
        report
    }

    /// Optimizer-estimated total cost of pre-parsed shapes.
    fn est_total(&self, shapes: &[QueryShape], indexes: &[Index]) -> f64 {
        shapes
            .iter()
            .map(|s| plan_query(s, self.catalog, indexes).est_cost)
            .sum()
    }

    /// True total cost of pre-parsed shapes (validation replays).
    fn true_total(&self, shapes: &[QueryShape], indexes: &[Index]) -> f64 {
        shapes
            .iter()
            .map(|s| plan_query(s, self.catalog, indexes).true_cost)
            .sum()
    }

    /// Candidate single-column indexes, join-key candidates first, then
    /// predicate/group-by columns, each ordered by occurrence count.
    fn enumerate_candidates(&self, shapes: &[QueryShape]) -> Vec<Index> {
        let mut join_cols: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut pred_cols: BTreeMap<(String, String), usize> = BTreeMap::new();
        for shape in shapes {
            for e in &shape.joins {
                for col in [&e.left, &e.right] {
                    if let Some(t) = self.resolve(col, shape) {
                        *join_cols.entry((t, col.column.clone())).or_default() += 1;
                    }
                }
            }
            for p in shape.predicates.iter().filter(|p| p.sargable()) {
                if let Lhs::Column(col) = &p.lhs {
                    if let Some(t) = self.resolve(col, shape) {
                        *pred_cols.entry((t, col.column.clone())).or_default() += 1;
                    }
                }
            }
            for col in &shape.group_by {
                if let Some(t) = self.resolve(col, shape) {
                    *pred_cols.entry((t, col.column.clone())).or_default() += 1;
                }
            }
        }
        let mut ordered: Vec<((String, String), usize, bool)> =
            join_cols.into_iter().map(|(k, c)| (k, c, true)).collect();
        let mut preds: Vec<((String, String), usize, bool)> =
            pred_cols.into_iter().map(|(k, c)| (k, c, false)).collect();
        ordered.append(&mut preds);
        // Join candidates first, then by frequency descending, then name
        // for determinism.
        ordered.sort_by(|a, b| b.2.cmp(&a.2).then(b.1.cmp(&a.1)).then(a.0.cmp(&b.0)));
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for ((table, column), _, _) in ordered {
            if self.catalog.table(&table).is_none() {
                continue;
            }
            if seen.insert((table.clone(), column.clone())) {
                out.push(Index::new(&table, &[&column]));
            }
        }
        out
    }

    fn resolve(&self, col: &querc_sql::ast::ColumnRef, shape: &QueryShape) -> Option<String> {
        if let Some(q) = &col.qualifier {
            if let Some(t) = shape.resolve_table(q) {
                return Some(t.to_string());
            }
        }
        let owner = self.catalog.table_of_column(&col.column)?;
        if shape.tables.iter().any(|t| t.name == owner) {
            Some(owner.to_string())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::workload_runtime;
    use querc_workloads::TpchWorkload;

    fn tpch_sqls(per_template: usize, seed: u64) -> Vec<String> {
        TpchWorkload::generate(per_template, seed)
            .queries
            .into_iter()
            .map(|q| q.sql)
            .collect()
    }

    #[test]
    fn below_overhead_no_recommendation() {
        let cat = Catalog::tpch_sf1();
        let advisor = Advisor::new(&cat, AdvisorConfig::default());
        let w = tpch_sqls(2, 1);
        let refs: Vec<&str> = w.iter().map(String::as_str).collect();
        let report = advisor.recommend(&refs, 60.0);
        assert!(report.indexes.is_empty(), "1 minute < overhead ⇒ nothing");
    }

    #[test]
    fn generous_budget_recommends_and_helps() {
        let cat = Catalog::tpch_sf1();
        let advisor = Advisor::new(&cat, AdvisorConfig::default());
        let w = tpch_sqls(4, 2);
        let refs: Vec<&str> = w.iter().map(String::as_str).collect();
        let report = advisor.recommend(&refs, 3600.0);
        assert!(!report.indexes.is_empty(), "big budget must recommend");
        let base = workload_runtime(&refs, &cat, &[]);
        let with = workload_runtime(&refs, &cat, &report.indexes);
        assert!(
            with < base,
            "validated recommendation must not regress: {with} vs {base}"
        );
    }

    #[test]
    fn budget_monotonicity_of_consumed_time() {
        let cat = Catalog::tpch_sf1();
        let advisor = Advisor::new(&cat, AdvisorConfig::default());
        let w = tpch_sqls(2, 3);
        let refs: Vec<&str> = w.iter().map(String::as_str).collect();
        let mut last = 0.0;
        for budget in [100.0, 200.0, 400.0, 1000.0] {
            let r = advisor.recommend(&refs, budget);
            assert!(r.consumed_secs <= budget + 1e-9);
            assert!(
                r.consumed_secs >= last - 1e-9,
                "consumed time grows with budget"
            );
            last = r.consumed_secs;
        }
    }

    #[test]
    fn tight_budget_skips_validation() {
        let cat = Catalog::tpch_sf1();
        let cfg = AdvisorConfig::default();
        let advisor = Advisor::new(&cat, cfg.clone());
        let w = tpch_sqls(38, 4); // full-size workload → subsampled to 100
        let refs: Vec<&str> = w.iter().map(String::as_str).collect();
        // Just past overhead: some greedy adoption, no time to validate.
        let tight = advisor.recommend(&refs, cfg.overhead_secs + 30.0);
        let loose = advisor.recommend(&refs, 3600.0);
        assert!(tight.validated < loose.validated || loose.validated == 0);
    }

    #[test]
    fn validation_drops_regressive_indexes() {
        // A Q18-heavy workload: the join-key candidates look great to the
        // estimator but regress in truth; with budget, validation must
        // drop them.
        let cat = Catalog::tpch_sf1();
        let advisor = Advisor::new(&cat, AdvisorConfig::default());
        let w: Vec<String> = (0..20)
            .map(|i| {
                let mut rng = querc_linalg::Pcg32::new(i);
                querc_workloads::tpch::instantiate(18, &mut rng)
            })
            .collect();
        let refs: Vec<&str> = w.iter().map(String::as_str).collect();
        let report = advisor.recommend(&refs, 3600.0);
        let base = workload_runtime(&refs, &cat, &[]);
        let with = workload_runtime(&refs, &cat, &report.indexes);
        assert!(with <= base * 1.01, "validated set must not regress Q18");
    }

    #[test]
    fn candidates_cover_join_pred_and_groupby_columns() {
        let cat = Catalog::tpch_sf1();
        let advisor = Advisor::new(&cat, AdvisorConfig::default());
        let shapes = vec![parse_query(
            "select c_mktsegment, count(*) from customer c, orders o \
             where c.c_custkey = o.o_custkey and o_totalprice > 1000 \
             group by c_mktsegment",
            Dialect::Generic,
        )];
        let cands = advisor.enumerate_candidates(&shapes);
        let names: Vec<String> = cands.iter().map(|c| c.to_string()).collect();
        assert!(names.iter().any(|n| n.contains("c_custkey")), "{names:?}");
        assert!(
            names.iter().any(|n| n.contains("o_totalprice")),
            "{names:?}"
        );
        assert!(
            names.iter().any(|n| n.contains("c_mktsegment")),
            "{names:?}"
        );
        // Join candidates precede predicate candidates.
        let join_pos = names.iter().position(|n| n.contains("o_custkey")).unwrap();
        let pred_pos = names
            .iter()
            .position(|n| n.contains("o_totalprice"))
            .unwrap();
        assert!(join_pos < pred_pos);
    }

    #[test]
    fn deterministic_under_seed() {
        let cat = Catalog::tpch_sf1();
        let advisor = Advisor::new(&cat, AdvisorConfig::default());
        let w = tpch_sqls(6, 5);
        let refs: Vec<&str> = w.iter().map(String::as_str).collect();
        let a = advisor.recommend(&refs, 600.0);
        let b = advisor.recommend(&refs, 600.0);
        assert_eq!(a.indexes, b.indexes);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn empty_workload_is_harmless() {
        let cat = Catalog::tpch_sf1();
        let advisor = Advisor::new(&cat, AdvisorConfig::default());
        let report = advisor.recommend(&[], 3600.0);
        assert!(report.indexes.is_empty());
    }
}
