//! Classifiers: pre-trained (embedder, labeler) pairs.
//!
//! The split is the architectural point of the paper (§2): one embedder —
//! trained once on a large combined workload — can serve many labelers,
//! each trained on a small application-specific labeled set. Labelers map
//! vectors to *string* labels through a [`LabelMap`], because everything
//! downstream (audit verdicts, routing decisions) speaks in names, not
//! class ids.

use crate::error::{QuercError, Result};
use querc_embed::Embedder;
use querc_learn::Classifier;
use querc_linalg::Pcg32;
use std::collections::HashMap;
use std::sync::Arc;

/// Bidirectional label-name ↔ class-id mapping.
#[derive(Debug, Clone, Default)]
pub struct LabelMap {
    to_id: HashMap<String, u32>,
    names: Vec<String>,
}

impl LabelMap {
    /// Build from a label column, assigning ids in first-seen order.
    pub fn from_labels<'a, I: IntoIterator<Item = &'a str>>(labels: I) -> (LabelMap, Vec<u32>) {
        let mut map = LabelMap::default();
        let ids = labels.into_iter().map(|l| map.intern(l)).collect();
        (map, ids)
    }

    /// Get or create the id for a name.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.to_id.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.to_id.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }

    /// Id of a known name.
    pub fn id(&self, name: &str) -> Option<u32> {
        self.to_id.get(name).copied()
    }

    /// Name of an id.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no classes have been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Label names in id order (`names()[id as usize]` is `name(id)`).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Rebuild a map from names in id order — the inverse of
    /// [`LabelMap::names`]. Returns `None` when the list repeats a name
    /// (ids would silently shift), which a well-formed export never does.
    pub fn from_names(names: &[String]) -> Option<LabelMap> {
        let mut map = LabelMap::default();
        for (i, n) in names.iter().enumerate() {
            if map.intern(n) != i as u32 {
                return None;
            }
        }
        Some(map)
    }
}

/// A trained labeler: a `querc-learn` model plus its label vocabulary.
pub struct TrainedLabeler {
    model: Box<dyn Classifier>,
    labels: LabelMap,
    /// Input dimensionality seen at training time, guarded on predict.
    dim: usize,
}

impl TrainedLabeler {
    /// Train `model` to map `vectors[i]` to `label_names[i]`.
    ///
    /// Thin wrapper over [`TrainedLabeler::try_train`] for callers that
    /// construct their inputs; panics with the underlying
    /// [`QuercError`] message on malformed data.
    pub fn train<C: Classifier + 'static>(
        model: C,
        vectors: &[Vec<f32>],
        label_names: &[&str],
        rng: &mut Pcg32,
    ) -> TrainedLabeler {
        Self::try_train(model, vectors, label_names, rng).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible training: reports empty corpora, row/label mismatches,
    /// and ragged vector dimensions instead of panicking downstream.
    pub fn try_train<C: Classifier + 'static>(
        mut model: C,
        vectors: &[Vec<f32>],
        label_names: &[&str],
        rng: &mut Pcg32,
    ) -> Result<TrainedLabeler> {
        if vectors.is_empty() {
            return Err(QuercError::EmptyCorpus {
                context: "labeler.train",
            });
        }
        if vectors.len() != label_names.len() {
            return Err(QuercError::LabelMismatch {
                vectors: vectors.len(),
                labels: label_names.len(),
            });
        }
        let dim = vectors[0].len();
        if let Some(bad) = vectors.iter().find(|v| v.len() != dim) {
            return Err(QuercError::DimensionMismatch {
                context: "labeler.train",
                expected: dim,
                got: bad.len(),
            });
        }
        let (labels, ids) = LabelMap::from_labels(label_names.iter().copied());
        model.fit(vectors, &ids, labels.len().max(1), rng);
        Ok(TrainedLabeler {
            model: Box::new(model),
            labels,
            dim,
        })
    }

    /// Predict the label name for a vector.
    pub fn predict(&self, v: &[f32]) -> &str {
        self.try_predict(v).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible prediction: rejects vectors of the wrong dimensionality
    /// (the former silent-corruption / index-panic path).
    pub fn try_predict(&self, v: &[f32]) -> Result<&str> {
        if v.len() != self.dim {
            return Err(QuercError::DimensionMismatch {
                context: "labeler.predict",
                expected: self.dim,
                got: v.len(),
            });
        }
        let id = self.model.predict(v);
        Ok(self.labels.name(id).unwrap_or("<unknown>"))
    }

    /// Predict label names for a chunk of borrowed vectors through the
    /// model's batched path ([`Classifier::predict_batch_refs`]) — one
    /// call into the model per chunk, so an index-backed model (kNN
    /// over a `querc_index::VectorIndex`) amortizes a single
    /// `search_batch` across the whole chunk. Rejects any vector of the
    /// wrong dimensionality before touching the model.
    pub fn try_predict_refs(&self, vectors: &[&[f32]]) -> Result<Vec<&str>> {
        for v in vectors {
            if v.len() != self.dim {
                return Err(QuercError::DimensionMismatch {
                    context: "labeler.predict",
                    expected: self.dim,
                    got: v.len(),
                });
            }
        }
        Ok(self
            .model
            .predict_batch_refs(vectors)
            .into_iter()
            .map(|id| self.labels.name(id).unwrap_or("<unknown>"))
            .collect())
    }

    /// Input dimensionality the labeler was trained on.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The label vocabulary.
    pub fn labels(&self) -> &LabelMap {
        &self.labels
    }

    /// Serialize for a snapshot. `None` when the underlying model has no
    /// persistence support (it then simply refits after a restore).
    pub fn export_state(&self) -> Option<LabelerState> {
        Some(LabelerState {
            classifier: self.model.export_state()?,
            labels: self.labels.names().to_vec(),
            dim: self.dim,
        })
    }

    /// Rebuild from [`TrainedLabeler::export_state`] output, validating
    /// the model's shape against `state.dim` so a corrupt-but-parseable
    /// snapshot surfaces [`QuercError::Corrupt`] instead of an index
    /// panic at label time. The restored labeler predicts bit-identically
    /// to the exported one.
    pub fn from_state(state: LabelerState) -> Result<TrainedLabeler> {
        if state.dim == 0 {
            return Err(QuercError::Corrupt {
                detail: "labeler state: dim must be positive".to_string(),
            });
        }
        crate::persist::check_classifier_dim(&state.classifier, state.dim)?;
        let labels = LabelMap::from_names(&state.labels).ok_or_else(|| QuercError::Corrupt {
            detail: "labeler state: duplicate label names".to_string(),
        })?;
        let model = state
            .classifier
            .into_classifier()
            .map_err(|e| QuercError::Corrupt {
                detail: format!("labeler state: {e}"),
            })?;
        Ok(TrainedLabeler {
            model,
            labels,
            dim: state.dim,
        })
    }
}

/// Serializable snapshot of a [`TrainedLabeler`]: the model's exported
/// state plus the label vocabulary and training dimensionality.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LabelerState {
    /// The underlying `querc-learn` model's snapshot.
    pub classifier: querc_learn::ClassifierState,
    /// Label names in class-id order.
    pub labels: Vec<String>,
    /// Input dimensionality the labeler was trained on.
    pub dim: usize,
}

/// A deployable classifier: (embedder, labeler) with the label name it
/// attaches (e.g. `user`, `cluster`, `resource_class`).
pub struct QueryClassifier {
    /// The label this classifier attaches to queries.
    pub label_name: String,
    embedder: Arc<dyn Embedder>,
    labeler: TrainedLabeler,
}

impl QueryClassifier {
    /// Assemble a classifier from a trained (embedder, labeler) pair.
    pub fn new(
        label_name: impl Into<String>,
        embedder: Arc<dyn Embedder>,
        labeler: TrainedLabeler,
    ) -> Self {
        QueryClassifier {
            label_name: label_name.into(),
            embedder,
            labeler,
        }
    }

    /// Label one SQL text.
    pub fn label_sql(&self, sql: &str) -> String {
        let v = self.embedder.embed_sql(sql);
        self.labeler.predict(&v).to_string()
    }

    /// Label pre-tokenized input (when the caller already normalized).
    pub fn label_tokens(&self, tokens: &[String]) -> String {
        let v = self.embedder.embed(tokens);
        self.labeler.predict(&v).to_string()
    }

    /// Label a chunk of pre-tokenized queries through the embedder's
    /// batched path. Output `i` is the label of `docs[i]`, identical to
    /// what [`QueryClassifier::label_tokens`] would return.
    pub fn label_tokens_batch(&self, docs: &[Vec<String>]) -> Vec<String> {
        self.embedder
            .embed_batch(docs)
            .iter()
            .map(|v| self.labeler.predict(v).to_string())
            .collect()
    }

    /// Label a chunk of **precomputed** vectors — the Qworker hot loop
    /// on the embed-once ingress plane. `vectors[i]` must come from this
    /// classifier's embedder (same [`querc_embed::Embedder::cache_namespace`]);
    /// the output is then identical to embedding and labeling the query
    /// from scratch. The whole chunk goes through the labeler's batched
    /// path in **one** call ([`TrainedLabeler::try_predict_refs`]), so
    /// index-backed models run a single `search_batch` per chunk.
    pub fn label_vectors_batch(&self, vectors: &[Arc<Vec<f32>>]) -> Vec<String> {
        let refs: Vec<&[f32]> = vectors.iter().map(|v| v.as_slice()).collect();
        self.labeler
            .try_predict_refs(&refs)
            .unwrap_or_else(|e| panic!("{e}"))
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// The embedder half (shared across classifiers).
    pub fn embedder(&self) -> &Arc<dyn Embedder> {
        &self.embedder
    }

    /// The labeler half — what the persistence plane snapshots.
    pub fn labeler(&self) -> &TrainedLabeler {
        &self.labeler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_embed::BagOfTokens;
    use querc_learn::{ForestConfig, RandomForest};

    #[test]
    fn label_map_roundtrip() {
        let (map, ids) = LabelMap::from_labels(["a", "b", "a", "c"]);
        assert_eq!(ids, vec![0, 1, 0, 2]);
        assert_eq!(map.len(), 3);
        assert_eq!(map.name(1), Some("b"));
        assert_eq!(map.id("c"), Some(2));
        assert_eq!(map.id("zzz"), None);
    }

    fn train_demo_classifier() -> QueryClassifier {
        let embedder: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(64, true));
        // Train: "select from sales_*" → team-a, "insert into logs" → team-b.
        let sqls: Vec<String> = (0..30)
            .map(|i| {
                if i % 2 == 0 {
                    format!("select col{} from sales_orders where x = {}", i % 5, i)
                } else {
                    format!("insert into app_logs values ({i}, 'event')")
                }
            })
            .collect();
        let labels: Vec<&str> = (0..30)
            .map(|i| if i % 2 == 0 { "team-a" } else { "team-b" })
            .collect();
        let vectors: Vec<Vec<f32>> = sqls.iter().map(|s| embedder.embed_sql(s)).collect();
        let labeler = TrainedLabeler::train(
            RandomForest::new(ForestConfig::extra_trees(15)),
            &vectors,
            &labels,
            &mut Pcg32::new(1),
        );
        QueryClassifier::new("team", embedder, labeler)
    }

    #[test]
    fn classifier_labels_unseen_queries() {
        let clf = train_demo_classifier();
        assert_eq!(
            clf.label_sql("select col9 from sales_orders where x = 999"),
            "team-a"
        );
        assert_eq!(
            clf.label_sql("insert into app_logs values (77, 'other')"),
            "team-b"
        );
    }

    #[test]
    fn label_sql_and_label_tokens_agree() {
        let clf = train_demo_classifier();
        let sql = "select col1 from sales_orders where x = 5";
        let tokens = querc_embed::sql_tokens(sql);
        assert_eq!(clf.label_sql(sql), clf.label_tokens(&tokens));
    }

    #[test]
    fn label_tokens_batch_matches_single_path() {
        let clf = train_demo_classifier();
        let sqls = [
            "select col1 from sales_orders where x = 5",
            "insert into app_logs values (9, 'event')",
            "select col4 from sales_orders where x = 77",
        ];
        let docs: Vec<Vec<String>> = sqls.iter().map(|s| querc_embed::sql_tokens(s)).collect();
        let batch = clf.label_tokens_batch(&docs);
        for (doc, label) in docs.iter().zip(&batch) {
            assert_eq!(*label, clf.label_tokens(doc));
        }
    }

    #[test]
    fn label_vectors_batch_matches_token_path() {
        let clf = train_demo_classifier();
        let sqls = [
            "select col1 from sales_orders where x = 5",
            "insert into app_logs values (9, 'event')",
        ];
        let docs: Vec<Vec<String>> = sqls.iter().map(|s| querc_embed::sql_tokens(s)).collect();
        let vectors: Vec<Arc<Vec<f32>>> = clf
            .embedder()
            .embed_batch(&docs)
            .into_iter()
            .map(Arc::new)
            .collect();
        assert_eq!(
            clf.label_vectors_batch(&vectors),
            clf.label_tokens_batch(&docs)
        );
    }

    #[test]
    fn try_train_reports_malformed_inputs() {
        use crate::error::QuercError;
        use querc_learn::{ForestConfig, RandomForest};
        let mut rng = Pcg32::new(1);
        let empty = TrainedLabeler::try_train(
            RandomForest::new(ForestConfig::extra_trees(2)),
            &[],
            &[],
            &mut rng,
        );
        assert!(matches!(empty, Err(QuercError::EmptyCorpus { .. })));
        let mismatched = TrainedLabeler::try_train(
            RandomForest::new(ForestConfig::extra_trees(2)),
            &[vec![0.0; 4]],
            &["a", "b"],
            &mut rng,
        );
        assert!(matches!(mismatched, Err(QuercError::LabelMismatch { .. })));
        let ragged = TrainedLabeler::try_train(
            RandomForest::new(ForestConfig::extra_trees(2)),
            &[vec![0.0; 4], vec![0.0; 3]],
            &["a", "b"],
            &mut rng,
        );
        assert!(matches!(
            ragged,
            Err(QuercError::DimensionMismatch {
                expected: 4,
                got: 3,
                ..
            })
        ));
    }

    #[test]
    fn knn_labeler_batches_through_one_index_search() {
        use querc_learn::{Knn, KnnMetric};
        let embedder: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(32, false));
        let sqls = [
            "select a from sales_orders",
            "insert into app_logs values (1)",
            "select b from sales_orders",
            "insert into app_logs values (2)",
        ];
        let labels = ["read", "write", "read", "write"];
        let docs: Vec<Vec<String>> = sqls.iter().map(|s| querc_embed::sql_tokens(s)).collect();
        let vectors = embedder.embed_batch(&docs);
        let labeler = TrainedLabeler::train(
            Knn::new(1, KnnMetric::Euclidean),
            &vectors,
            &labels,
            &mut Pcg32::new(3),
        );
        let clf = QueryClassifier::new("kind", embedder, labeler);
        let arcs: Vec<Arc<Vec<f32>>> = clf
            .embedder()
            .embed_batch(&docs)
            .into_iter()
            .map(Arc::new)
            .collect();
        assert_eq!(
            clf.label_vectors_batch(&arcs),
            vec!["read", "write", "read", "write"]
        );
        // Ragged chunk is rejected up front, not deep in the index.
        let refs = [vectors[0].as_slice(), &vectors[1][..7]];
        assert!(matches!(
            clf.labeler.try_predict_refs(&refs),
            Err(crate::error::QuercError::DimensionMismatch { got: 7, .. })
        ));
    }

    #[test]
    fn try_predict_rejects_wrong_dimension() {
        use crate::error::QuercError;
        use querc_learn::{ForestConfig, RandomForest};
        let mut rng = Pcg32::new(2);
        let labeler = TrainedLabeler::try_train(
            RandomForest::new(ForestConfig::extra_trees(2)),
            &[vec![0.0; 4], vec![1.0; 4]],
            &["a", "b"],
            &mut rng,
        )
        .unwrap();
        assert_eq!(labeler.dim(), 4);
        assert!(labeler.try_predict(&[0.0; 4]).is_ok());
        assert!(matches!(
            labeler.try_predict(&[0.0; 7]),
            Err(QuercError::DimensionMismatch {
                expected: 4,
                got: 7,
                ..
            })
        ));
    }

    #[test]
    fn labeler_state_round_trips_bit_identically() {
        let clf = train_demo_classifier();
        let state = clf.labeler().export_state().expect("forest is persistable");
        let restored = TrainedLabeler::from_state(state).unwrap();
        for sql in [
            "select col2 from sales_orders where x = 11",
            "insert into app_logs values (3, 'event')",
        ] {
            let v = clf.embedder().embed_sql(sql);
            assert_eq!(clf.labeler().predict(&v), restored.predict(&v));
        }
        assert_eq!(restored.dim(), clf.labeler().dim());
        assert_eq!(restored.labels().names(), clf.labeler().labels().names());
    }

    #[test]
    fn labeler_state_rejects_bad_shapes() {
        let clf = train_demo_classifier();
        let good = clf.labeler().export_state().unwrap();

        // A forest splitting on features past the advertised dim would
        // index-panic at predict time; restore must reject it instead.
        let mut narrow = good.clone();
        narrow.dim = 1;
        assert!(matches!(
            TrainedLabeler::from_state(narrow),
            Err(QuercError::Corrupt { .. })
        ));

        let mut dup = good.clone();
        dup.labels = vec!["x".to_string(), "x".to_string()];
        assert!(matches!(
            TrainedLabeler::from_state(dup),
            Err(QuercError::Corrupt { .. })
        ));

        let mut zero = good;
        zero.dim = 0;
        assert!(matches!(
            TrainedLabeler::from_state(zero),
            Err(QuercError::Corrupt { .. })
        ));
    }
}
