//! Load-test the sharded serving layer: all six workload apps under a
//! timed trace replay, with the per-app latency histogram table.
//!
//! Run with: `cargo run --release --example load_test [qps] [shards] [queries]`
//!
//! * `qps`     — aggregate arrival rate of the open-loop replay (default 600)
//! * `shards`  — `shards_per_app` worker threads (default 4)
//! * `queries` — arrivals to replay (default 600)
//!
//! Every arrival fans out to all six registered apps (six labeling
//! passes per query), so the served rate is 6× the arrival rate. The
//! replay is open-loop: if the manager can't keep up, arrivals are
//! dispatched late and the schedule slip is reported as `max lag`.
//!
//! All six apps share ONE embedder, so the ingress embed plane turns
//! the 6× fan-out into at most one embedding per distinct query
//! template; the table reports each app's cache hit-rate and the run
//! exits nonzero if the cache never hit (CI runs this as a regression
//! gate on the ingress plane). A second table reports each index-backed
//! app's vector-plane search counters (searches, probes, candidates
//! scanned, exact vs ANN), and the run also exits nonzero if the replay
//! recorded zero index searches — the same style of gate for the
//! vector search plane.

use querc::apps::summarize::SummaryConfig;
use querc::apps::{
    AuditApp, ErrorsApp, RecommendApp, ResourcesApp, RoutingApp, SummarizeApp, TrainCorpus,
};
use querc::{LabeledQuery, WorkloadManager, WorkloadManagerConfig};
use querc_embed::{BagOfTokens, Embedder};
use querc_workloads::{ReplayConfig, ReplaySchedule, SnowCloud, SnowCloudConfig};
use std::sync::Arc;

fn arg(n: usize, default: f64) -> f64 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let qps = arg(1, 600.0);
    let shards = arg(2, 4.0) as usize;
    let queries = arg(3, 600.0) as usize;

    // Train on one slice of a multi-tenant trace, replay another.
    let workload = SnowCloud::generate(&SnowCloudConfig::pretrain(10, 150, 0x10ad));
    let split = workload.records.len() / 2;
    let corpus = TrainCorpus::from_records(workload.records[..split].to_vec(), 0x10ad);
    let schedule = ReplaySchedule::from_records(
        &workload.records[split..],
        &ReplayConfig {
            qps,
            burstiness: 0.7,
            seed: 0x10ad,
            limit: Some(queries),
        },
    );
    println!(
        "corpus: {} training queries | replay: {} arrivals ({} distinct templates) \
         at {qps:.0} q/s (bursty), {} shards/app",
        corpus.len(),
        schedule.len(),
        schedule.distinct_templates(),
        shards
    );

    let embedder: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(128, true));
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
        shards_per_app: shards,
        batch: 32,
        queue_depth: 2048,
        ..Default::default()
    });
    mgr.register(AuditApp::new(embedder.clone()).with_trees(20), &corpus)
        .unwrap();
    mgr.register(ErrorsApp::new(embedder.clone()), &corpus)
        .unwrap();
    mgr.register(
        RecommendApp::new(embedder.clone()).with_clusters(6),
        &corpus,
    )
    .unwrap();
    mgr.register(ResourcesApp::new(embedder.clone()), &corpus)
        .unwrap();
    mgr.register(RoutingApp::new(embedder.clone()), &corpus)
        .unwrap();
    mgr.register(
        SummarizeApp::new(embedder.clone()).with_config(SummaryConfig {
            k: Some(8),
            ..Default::default()
        }),
        &corpus,
    )
    .unwrap();

    // Open-loop replay: every arrival fans out to all six apps.
    let apps = mgr.app_names();
    let stats = schedule.replay(|record| {
        let lq = LabeledQuery::from_record(record);
        for app in &apps {
            mgr.submit(app, lq.clone()).expect("serving fabric up");
        }
    });
    println!(
        "\nreplay done: {} arrivals in {:.2?} (max schedule lag {:.2?})",
        stats.dispatched, stats.elapsed, stats.max_lag
    );

    let drained = mgr.drain();
    let served: u64 = drained.throughput.iter().map(|t| t.processed).sum();
    println!(
        "served {served} labeling requests ({:.0} req/s end to end)\n",
        served as f64 / stats.elapsed.as_secs_f64()
    );
    println!(
        "{:<11} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "app", "processed", "cache", "p50 µs", "p95 µs", "p99 µs", "max µs", "mean µs"
    );
    for tp in &drained.throughput {
        let l = &tp.latency;
        println!(
            "{:<11} {:>9} {:>7.1}% {:>9} {:>9} {:>9} {:>9} {:>9}",
            tp.app,
            tp.processed,
            100.0 * tp.cache_hit_rate(),
            l.p50_us,
            l.p95_us,
            l.p99_us,
            l.max_us,
            l.mean_us
        );
    }
    let cache = &drained.embed_cache;
    println!(
        "\nembed plane: {} hits / {} misses ({:.1}% hit rate), {} cached vectors, \
         {} evictions — each miss is one template embedded for all six apps",
        cache.hits,
        cache.misses,
        100.0 * cache.hit_rate(),
        cache.entries,
        cache.evictions
    );
    // Vector search plane: per-app index stats, next to the cache rates.
    println!(
        "\n{:<11} {:>6} {:>9} {:>8} {:>12} {:>11}",
        "index", "kind", "searches", "probes", "candidates", "cand/search"
    );
    let mut index_searches = 0u64;
    for tp in &drained.throughput {
        if let Some(ix) = &tp.index {
            index_searches += ix.searches;
            println!(
                "{:<11} {:>6} {:>9} {:>8} {:>12} {:>11.1}",
                tp.app,
                if ix.exact { "exact" } else { "ann" },
                ix.searches,
                ix.probes,
                ix.candidates,
                ix.candidates_per_search()
            );
        }
    }
    println!(
        "training mirror captured {} labeled queries",
        drained.training_log.len()
    );
    // CI gate: a templated trace through six apps sharing one embedder
    // MUST hit the ingress cache; a zero hit-count means the embed-once
    // plane silently stopped fanning vectors out.
    assert!(
        cache.hits > 0,
        "ingress embed cache never hit on a templated trace"
    );
    // CI gate: the recommend/summarize apps serve cluster assignment
    // through the vector search plane; zero recorded searches after a
    // replay means the index layer silently fell out of the hot path.
    assert!(
        index_searches > 0,
        "vector index plane recorded zero searches during the replay"
    );
}
