//! Model persistence.
//!
//! Querc's architecture separates training (offline, central) from serving
//! (Qworkers): trained embedders are serialized by the training module and
//! shipped to workers. JSON via serde keeps the format debuggable; the
//! models here are small (a few MB at experiment scale).

use crate::{BagOfTokens, Doc2Vec, LstmAutoencoder};
use serde::{de::DeserializeOwned, Serialize};
use std::io;
use std::path::Path;

/// Error type for model (de)serialization.
#[derive(Debug)]
pub enum ModelIoError {
    /// The underlying file read/write failed.
    Io(io::Error),
    /// The file's JSON didn't match the expected model schema.
    Format(serde_json::Error),
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "model io error: {e}"),
            ModelIoError::Format(e) => write!(f, "model format error: {e}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<io::Error> for ModelIoError {
    fn from(e: io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

impl From<serde_json::Error> for ModelIoError {
    fn from(e: serde_json::Error) -> Self {
        ModelIoError::Format(e)
    }
}

/// Serialize any serde-able model to a JSON string.
pub fn to_json<M: Serialize>(model: &M) -> Result<String, ModelIoError> {
    Ok(serde_json::to_string(model)?)
}

/// Deserialize a model from a JSON string.
pub fn from_json<M: DeserializeOwned>(json: &str) -> Result<M, ModelIoError> {
    Ok(serde_json::from_str(json)?)
}

/// Write a model to a file.
pub fn save<M: Serialize>(model: &M, path: &Path) -> Result<(), ModelIoError> {
    let json = to_json(model)?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Read a model from a file.
pub fn load<M: DeserializeOwned>(path: &Path) -> Result<M, ModelIoError> {
    let json = std::fs::read_to_string(path)?;
    from_json(&json)
}

// Marker impl checks: these types must stay serializable.
const _: fn() = || {
    fn assert_roundtrip<T: Serialize + DeserializeOwned>() {}
    assert_roundtrip::<Doc2Vec>();
    assert_roundtrip::<LstmAutoencoder>();
    assert_roundtrip::<BagOfTokens>();
};

/// Rebuild an embedder from the `(kind, json)` pair produced by
/// [`crate::Embedder::export_spec`]. The restored instance has the
/// exact weights of the exported one, so its
/// [`crate::Embedder::cache_namespace`] — and therefore any warm
/// vector-cache entries keyed under it — carries over unchanged.
pub fn restore_embedder(
    kind: &str,
    json: &str,
) -> Result<std::sync::Arc<dyn crate::Embedder>, ModelIoError> {
    Ok(match kind {
        "bow" => std::sync::Arc::new(from_json::<BagOfTokens>(json)?),
        "doc2vec" => std::sync::Arc::new(from_json::<Doc2Vec>(json)?),
        "lstm" => std::sync::Arc::new(from_json::<LstmAutoencoder>(json)?),
        other => {
            return Err(ModelIoError::Format(serde_json::Error::msg(format!(
                "unknown embedder kind: {other:?}"
            ))))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedder::Embedder;
    use crate::{Doc2VecConfig, Doc2VecMode, LstmConfig, VocabConfig};

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn corpus() -> Vec<Vec<String>> {
        (0..10)
            .map(|i| toks(&format!("select c{} from t where x = <num>", i % 3)))
            .collect()
    }

    #[test]
    fn doc2vec_roundtrips_through_json() {
        let cfg = Doc2VecConfig {
            dim: 8,
            epochs: 2,
            mode: Doc2VecMode::DistributedMemory,
            vocab: VocabConfig {
                min_count: 1,
                max_size: 64,
                hash_buckets: 8,
            },
            ..Default::default()
        };
        let model = crate::Doc2Vec::train(&corpus(), cfg);
        let json = to_json(&model).unwrap();
        let back: crate::Doc2Vec = from_json(&json).unwrap();
        let q = toks("select c1 from t");
        assert_eq!(model.embed(&q), back.embed(&q));
    }

    #[test]
    fn lstm_roundtrips_through_json() {
        let cfg = LstmConfig {
            embed_dim: 6,
            hidden: 7,
            epochs: 1,
            vocab: VocabConfig {
                min_count: 1,
                max_size: 64,
                hash_buckets: 8,
            },
            ..Default::default()
        };
        let model = crate::LstmAutoencoder::train(&corpus(), cfg);
        let json = to_json(&model).unwrap();
        let back: crate::LstmAutoencoder = from_json(&json).unwrap();
        let q = toks("select c2 from t where x = <num>");
        assert_eq!(model.embed(&q), back.embed(&q));
    }

    #[test]
    fn save_and_load_file() {
        let model = crate::BagOfTokens::new(16, true);
        let dir = std::env::temp_dir().join("querc_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bow.json");
        save(&model, &path).unwrap();
        let back: crate::BagOfTokens = load(&path).unwrap();
        let q = toks("select a from b");
        assert_eq!(model.embed(&q), back.embed(&q));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let r: Result<crate::BagOfTokens, _> =
            load(Path::new("/nonexistent/definitely/missing.json"));
        assert!(matches!(r, Err(ModelIoError::Io(_))));
    }

    #[test]
    fn malformed_json_errors() {
        let r: Result<crate::BagOfTokens, _> = from_json("{not json");
        assert!(matches!(r, Err(ModelIoError::Format(_))));
    }

    #[test]
    fn export_spec_restores_with_the_same_namespace() {
        let cfg = Doc2VecConfig {
            dim: 8,
            epochs: 2,
            vocab: VocabConfig {
                min_count: 1,
                max_size: 64,
                hash_buckets: 8,
            },
            ..Default::default()
        };
        let model = crate::Doc2Vec::train(&corpus(), cfg);
        let (kind, json) = model.export_spec().expect("doc2vec is persistable");
        assert_eq!(kind, "doc2vec");
        let back = restore_embedder(kind, &json).unwrap();
        assert_eq!(back.cache_namespace(), model.cache_namespace());
        let q = toks("select c1 from t");
        assert_eq!(back.embed(&q), model.embed(&q));

        let bow = crate::BagOfTokens::new(16, true);
        let (kind, json) = bow.export_spec().unwrap();
        let back = restore_embedder(kind, &json).unwrap();
        assert_eq!(back.cache_namespace(), bow.cache_namespace());
    }

    #[test]
    fn restore_embedder_rejects_unknown_kind() {
        assert!(matches!(
            restore_embedder("word2gm", "{}"),
            Err(ModelIoError::Format(_))
        ));
    }
}
