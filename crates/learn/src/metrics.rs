//! Classification metrics: accuracy, confusion matrices, per-class
//! precision/recall/F1 — the numbers the Table 1/2 experiments report.

/// Fraction of exact label matches; 0 on empty input.
pub fn accuracy(predicted: &[u32], actual: &[u32]) -> f64 {
    assert_eq!(predicted.len(), actual.len());
    if predicted.is_empty() {
        return 0.0;
    }
    let hits = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    hits as f64 / predicted.len() as f64
}

/// `matrix[actual][predicted]` counts.
pub fn confusion_matrix(predicted: &[u32], actual: &[u32], n_classes: usize) -> Vec<Vec<u32>> {
    assert_eq!(predicted.len(), actual.len());
    let mut m = vec![vec![0u32; n_classes]; n_classes];
    for (&p, &a) in predicted.iter().zip(actual) {
        if (a as usize) < n_classes && (p as usize) < n_classes {
            m[a as usize][p as usize] += 1;
        }
    }
    m
}

/// Per-class precision/recall/F1 computed from a confusion matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMetrics {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    /// Number of true instances of the class.
    pub support: u32,
}

/// Compute [`ClassMetrics`] for every class.
pub fn per_class(confusion: &[Vec<u32>]) -> Vec<ClassMetrics> {
    let n = confusion.len();
    (0..n)
        .map(|c| {
            let tp = confusion[c][c] as f64;
            let fn_: f64 = (0..n)
                .filter(|&j| j != c)
                .map(|j| confusion[c][j] as f64)
                .sum();
            let fp: f64 = (0..n)
                .filter(|&i| i != c)
                .map(|i| confusion[i][c] as f64)
                .sum();
            let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
            let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
            let f1 = if precision + recall > 0.0 {
                2.0 * precision * recall / (precision + recall)
            } else {
                0.0
            };
            ClassMetrics {
                precision,
                recall,
                f1,
                support: confusion[c].iter().sum(),
            }
        })
        .collect()
}

/// Unweighted mean of per-class F1 scores (classes with zero support are
/// skipped).
pub fn macro_f1(predicted: &[u32], actual: &[u32], n_classes: usize) -> f64 {
    let cm = confusion_matrix(predicted, actual, n_classes);
    let per = per_class(&cm);
    let present: Vec<&ClassMetrics> = per.iter().filter(|m| m.support > 0).collect();
    if present.is_empty() {
        return 0.0;
    }
    present.iter().map(|m| m.f1).sum::<f64>() / present.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(accuracy(&[1, 2, 3], &[3, 2, 1]), 1.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_layout() {
        // actual=0 predicted=1 twice, actual=1 predicted=1 once.
        let m = confusion_matrix(&[1, 1, 1], &[0, 0, 1], 2);
        assert_eq!(m[0][1], 2);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[0][0], 0);
    }

    #[test]
    fn perfect_classifier_metrics() {
        let cm = confusion_matrix(&[0, 1, 2, 0], &[0, 1, 2, 0], 3);
        for m in per_class(&cm) {
            if m.support > 0 {
                assert_eq!(m.precision, 1.0);
                assert_eq!(m.recall, 1.0);
                assert_eq!(m.f1, 1.0);
            }
        }
        assert_eq!(macro_f1(&[0, 1, 2, 0], &[0, 1, 2, 0], 3), 1.0);
    }

    #[test]
    fn precision_recall_asymmetry() {
        // Predict class 1 always; actual is half 0, half 1.
        let pred = vec![1u32; 10];
        let actual: Vec<u32> = (0..10).map(|i| (i % 2) as u32).collect();
        let cm = confusion_matrix(&pred, &actual, 2);
        let per = per_class(&cm);
        assert_eq!(per[1].recall, 1.0);
        assert!((per[1].precision - 0.5).abs() < 1e-9);
        assert_eq!(per[0].recall, 0.0);
    }

    #[test]
    fn macro_f1_skips_absent_classes() {
        // Class 2 never occurs; it must not drag the macro average down.
        let pred = vec![0, 1, 0, 1];
        let actual = vec![0, 1, 0, 1];
        let with_absent = macro_f1(&pred, &actual, 3);
        assert_eq!(with_absent, 1.0);
    }

    #[test]
    fn support_counts_actual_instances() {
        let cm = confusion_matrix(&[0, 0, 0], &[0, 1, 1], 2);
        let per = per_class(&cm);
        assert_eq!(per[0].support, 1);
        assert_eq!(per[1].support, 2);
    }
}
