//! Integration: the unified serving façade end to end.
//!
//! All six workload apps register with one `WorkloadManager`, a mixed
//! 200-query stream is submitted across them, and the drained outputs
//! are checked for per-app labels and accurate throughput counters —
//! the paper's Fig 1 exercised as a single API.

use querc::apps::{
    AuditApp, ErrorsApp, RecommendApp, ResourcesApp, RoutingApp, SummarizeApp, TrainCorpus,
};
use querc::{LabeledQuery, QuercError, WorkloadManager, WorkloadManagerConfig};
use querc_embed::{BagOfTokens, Embedder};
use querc_workloads::QueryRecord;
use std::sync::Arc;

/// A synthetic multi-tenant log with enough structure for every app:
/// two users with distinct habits, two routing clusters, one flaky
/// query shape, three runtime classes, and alternating session flows.
fn training_records() -> Vec<QueryRecord> {
    (0..120u64)
        .map(|i| {
            let (user, cluster, sql, ms, err) = match i % 4 {
                0 => (
                    "acct/ana",
                    "bi-cluster",
                    format!("select revenue, region from finance_cube where q = {i} group by region"),
                    400.0,
                    None,
                ),
                1 => (
                    "acct/bo",
                    "etl-cluster",
                    format!("insert into lake_events select * from staging_{}", i % 3),
                    30.0,
                    None,
                ),
                2 => (
                    "acct/ana",
                    "bi-cluster",
                    format!("select v from kv_store where k = {i}"),
                    5.0,
                    None,
                ),
                _ => (
                    "acct/bo",
                    "etl-cluster",
                    format!(
                        "select a.*, b.* from giant_facts a join giant_facts b on a.k = b.k where a.x > {i}"
                    ),
                    2000.0,
                    (i % 8 != 3).then_some(604),
                ),
            };
            QueryRecord {
                sql,
                user: user.into(),
                account: "acct".into(),
                cluster: cluster.into(),
                dialect: "generic".into(),
                runtime_ms: ms,
                mem_mb: ms / 2.0,
                error_code: err,
                timestamp: i,
            }
        })
        .collect()
}

fn embedder() -> Arc<dyn Embedder> {
    Arc::new(BagOfTokens::new(128, true))
}

const APPS: [&str; 6] = [
    "audit",
    "errors",
    "recommend",
    "resources",
    "routing",
    "summarize",
];

#[test]
fn manager_serves_all_six_apps_over_a_mixed_stream() {
    let corpus = TrainCorpus::from_records(training_records(), 0x2019);
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
        replicas: 2,
        batch: 16,
        ..Default::default()
    });

    // Register all six apps; every report reflects the shared corpus.
    mgr.register(AuditApp::new(embedder()).with_trees(20), &corpus)
        .unwrap();
    mgr.register(ErrorsApp::new(embedder()), &corpus).unwrap();
    mgr.register(RecommendApp::new(embedder()).with_clusters(4), &corpus)
        .unwrap();
    mgr.register(ResourcesApp::new(embedder()), &corpus)
        .unwrap();
    mgr.register(RoutingApp::new(embedder()), &corpus).unwrap();
    // Fixed K: the elbow scan is an offline-tuning concern, not a
    // serving-path one, and it dominates test runtime.
    let summary_cfg = querc::apps::summarize::SummaryConfig {
        k: Some(6),
        ..Default::default()
    };
    mgr.register(
        SummarizeApp::new(embedder()).with_config(summary_cfg),
        &corpus,
    )
    .unwrap();
    assert_eq!(mgr.app_names(), APPS);
    for report in mgr.reports().unwrap() {
        assert_eq!(report.trained_queries, 120, "{}", report.app);
        assert!(!report.task.is_empty());
    }

    // A mixed 200-query stream, round-robin across the apps, with the
    // metadata labels the checking apps compare against.
    let mut submitted_per_app = [0usize; 6];
    for i in 0..200u64 {
        let app = APPS[(i % 6) as usize];
        let mut lq = match i % 4 {
            0 => LabeledQuery::new(format!(
                "select revenue, region from finance_cube where q = {i} group by region"
            )),
            1 => LabeledQuery::new(format!(
                "insert into lake_events select * from staging_{}",
                i % 3
            )),
            2 => LabeledQuery::new(format!("select v from kv_store where k = {i}")),
            _ => LabeledQuery::new(format!(
                "select a.*, b.* from giant_facts a join giant_facts b on a.k = b.k where a.x > {i}"
            )),
        };
        // Metadata matching the training pattern: ana runs the BI shapes
        // (i%4 ∈ {0,2}), bo the ETL/join shapes (i%4 ∈ {1,3}).
        lq.set(
            "user",
            if i % 4 % 2 == 0 {
                "acct/ana"
            } else {
                "acct/bo"
            },
        );
        lq.set(
            "cluster",
            if i % 4 % 2 == 0 {
                "bi-cluster"
            } else {
                "etl-cluster"
            },
        );
        if i % 2 == 0 {
            mgr.submit(app, lq).unwrap();
        } else {
            assert_eq!(mgr.submit_batch(app, [lq]).unwrap(), 1);
        }
        submitted_per_app[(i % 6) as usize] += 1;
    }

    let drained = mgr.drain();

    // Counters: every submission processed, per app.
    assert_eq!(drained.throughput.len(), 6);
    for tp in &drained.throughput {
        let expected = submitted_per_app[APPS.iter().position(|a| *a == tp.app).unwrap()];
        assert_eq!(tp.submitted, expected as u64, "{} submitted", tp.app);
        assert_eq!(tp.processed, expected as u64, "{} processed", tp.app);
        assert_eq!(
            drained.outputs[&tp.app].len(),
            expected,
            "{} outputs",
            tp.app
        );
    }
    let total: usize = drained.outputs.values().map(Vec::len).sum();
    assert_eq!(total, 200);
    // The training mirror saw the whole stream.
    assert_eq!(drained.training_log.len(), 200);

    // Per-app labels: each app attached its own label family, plus the
    // worker's application tag, and no serving-path errors surfaced.
    for (app, queries) in &drained.outputs {
        for lq in queries {
            assert_eq!(lq.get("application").unwrap(), app);
            assert_eq!(lq.get("app_error"), None, "{app}: {lq:?}");
            match app.as_str() {
                "audit" => {
                    assert!(lq.get("predicted_user").is_some());
                    assert!(lq.get("audit_flag").is_some());
                }
                "errors" => {
                    assert!(lq.get("error_probability").is_some());
                    assert!(lq.get("error_risky").is_some());
                }
                "recommend" => {
                    assert!(lq.get("query_cluster").is_some());
                    assert!(lq.get("next_query").is_some());
                }
                "resources" => {
                    let class = lq.get("resource_class").unwrap();
                    assert!(["short", "medium", "long"].contains(&class));
                }
                "routing" => {
                    assert!(lq.get("predicted_cluster").is_some());
                    assert!(lq.get("routing_anomaly").is_some());
                }
                "summarize" => {
                    assert!(lq.get("summary_cluster").is_some());
                    assert!(lq.get("summary_witness").is_some());
                }
                other => panic!("unexpected app {other}"),
            }
        }
    }

    // Model quality spot checks on the well-separated families.
    let audited = &drained.outputs["audit"];
    let correct_users = audited
        .iter()
        .filter(|lq| lq.get("predicted_user") == lq.get("user"))
        .count();
    assert!(
        correct_users * 10 >= audited.len() * 8,
        "user prediction should be strong on separable habits: {correct_users}/{}",
        audited.len()
    );
    let resources = &drained.outputs["resources"];
    assert!(
        resources
            .iter()
            .filter(|lq| lq.sql.contains("kv_store"))
            .all(|lq| lq.get("resource_class") == Some("short")),
        "point lookups must classify short"
    );
    let risky_flags = drained.outputs["errors"]
        .iter()
        .filter(|lq| lq.sql.contains("giant_facts"))
        .filter(|lq| lq.get("error_risky") == Some("true"))
        .count();
    assert!(risky_flags > 0, "the flaky join shape must be flagged");
}

#[test]
fn manager_rejects_unknown_apps_and_empty_corpora() {
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig::default());
    assert!(matches!(
        mgr.submit("nope", LabeledQuery::new("select 1")),
        Err(QuercError::UnknownApp { .. })
    ));
    let err = mgr
        .register(AuditApp::new(embedder()), &TrainCorpus::default())
        .unwrap_err();
    assert!(matches!(err, QuercError::EmptyCorpus { .. }));
    assert!(
        mgr.app_names().is_empty(),
        "failed registration must not leak"
    );
}
