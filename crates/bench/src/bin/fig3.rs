//! **Figure 3** — workload runtime under indexes recommended at various
//! advisor time budgets.
//!
//! Reproduces the paper's §5.1 headline: the x-axis sweeps the tuning
//! advisor's time budget, the y-axis is the full TPC-H workload's runtime
//! after applying the recommended indexes. Five series: the full workload
//! fed to the advisor directly, and four embedding-based summaries
//! (Doc2Vec / LSTM autoencoder × trained-on-TPC-H / trained-on-SnowCloud
//! — the latter pair demonstrating *transfer learning* from an unrelated
//! workload in a different dialect mix).
//!
//! Expected shape (checked programmatically at the end):
//!   * below the advisor's fixed overhead no series gets recommendations
//!     (flat at the no-index runtime);
//!   * the full workload needs a much larger budget and **gets worse
//!     before it gets better** (unvalidated low-budget index picks);
//!   * all summarized series converge to near-optimal right above the
//!     overhead and stay flat;
//!   * summaries beat the native full-workload path for most budgets,
//!     including the transfer-learned embedders.

use querc::apps::summarize::{summarize_workload, SummaryConfig, SummaryMethod};
use querc_bench::harness;
use querc_dbsim::{Advisor, AdvisorConfig, Catalog};

fn main() {
    println!("== Figure 3: workload runtime vs advisor time budget ==");
    println!("seed = {:#x}, scale = {}", harness::SEED, harness::scale());

    let workload = harness::tpch_workload();
    let sqls = workload.sql();
    let catalog = Catalog::tpch_sf1();
    let advisor = Advisor::new(&catalog, AdvisorConfig::default());

    let no_index = querc_dbsim::workload_runtime(&sqls, &catalog, &[]);
    println!(
        "workload: {} queries; no-index runtime = {:.0} s",
        sqls.len(),
        no_index
    );

    // Train the four embedders and build their summaries.
    let embedders = harness::train_fig3_embedders();
    let summary_cfg = SummaryConfig {
        k: None,
        k_min: 8,
        k_max: 30,
        plateau: 0.01,
        seed: harness::SEED ^ 0xf13,
    };
    let mut series: Vec<(String, Vec<String>)> = Vec::new();
    series.push((
        "full".to_string(),
        sqls.iter().map(|s| s.to_string()).collect(),
    ));
    for (name, embedder) in &embedders {
        let witnesses = summarize_workload(
            &sqls,
            &SummaryMethod::Embedding(embedder.as_ref()),
            &summary_cfg,
        );
        // Which templates does the summary cover? (diagnostic)
        let covered: std::collections::BTreeSet<u8> = witnesses
            .iter()
            .map(|&i| workload.queries[i].template)
            .collect();
        eprintln!(
            "  summary[{name}]: {} witnesses covering {}/22 templates",
            witnesses.len(),
            covered.len()
        );
        series.push((
            name.clone(),
            witnesses.iter().map(|&i| sqls[i].to_string()).collect(),
        ));
    }

    // Budget sweep: 1..=10 minutes.
    let budgets: Vec<f64> = (1..=10).map(|m| m as f64 * 60.0).collect();
    let names: Vec<&str> = series.iter().map(|(n, _)| n.as_str()).collect();
    let widths = vec![10usize, 9, 9, 9, 9, 9, 9];
    let mut header = vec!["budget_min".to_string(), "no_index".to_string()];
    header.extend(names.iter().map(|n| truncate(n, 9)));
    println!("\n{}", harness::row(&header, &widths));

    // results[series][budget] = runtime of the FULL workload.
    let mut results: Vec<Vec<f64>> = vec![Vec::new(); series.len()];
    for &budget in &budgets {
        let mut cells = vec![format!("{:.0}", budget / 60.0), format!("{no_index:.0}")];
        for (si, (_, advisor_input)) in series.iter().enumerate() {
            let refs: Vec<&str> = advisor_input.iter().map(String::as_str).collect();
            let report = advisor.recommend(&refs, budget);
            let runtime = querc_dbsim::workload_runtime(&sqls, &catalog, &report.indexes);
            results[si].push(runtime);
            cells.push(format!("{runtime:.0}"));
        }
        println!("{}", harness::row(&cells, &widths));
    }

    // ---- shape checks ----------------------------------------------------
    println!("\nshape checks:");
    let mut ok = true;
    let full = &results[0];

    // 1. Minute-1 budgets are below the advisor overhead: flat everywhere.
    let flat = results.iter().all(|r| (r[0] - no_index).abs() < 1e-6);
    ok &= harness::check(
        "below-overhead budgets give no recommendations",
        flat,
        format!("runtime at 1 min = {:.0} s for every series", full[0]),
    );

    // 2. Full workload gets WORSE than no-index somewhere mid-sweep.
    let worst_full = full.iter().cloned().fold(f64::MIN, f64::max);
    ok &= harness::check(
        "full workload gets worse before it gets better",
        worst_full > no_index * 1.02,
        format!("worst full-workload runtime {worst_full:.0} vs baseline {no_index:.0}"),
    );

    // 3. Full workload eventually improves on no-index.
    let best_full = full.iter().cloned().fold(f64::MAX, f64::min);
    ok &= harness::check(
        "full workload eventually beats no-index",
        best_full < no_index * 0.98,
        format!("best full-workload runtime {best_full:.0}"),
    );

    // 4. Every summarized series converges by minute 4 and stays flat.
    for (si, (name, _)) in series.iter().enumerate().skip(1) {
        let r = &results[si];
        let tail = &r[3..]; // minutes 4..=10
        let spread = tail.iter().cloned().fold(f64::MIN, f64::max)
            - tail.iter().cloned().fold(f64::MAX, f64::min);
        ok &= harness::check(
            &format!("{name} summary is flat after convergence"),
            spread <= no_index * 0.05,
            format!("minute-4..10 spread = {spread:.0} s"),
        );
        ok &= harness::check(
            &format!("{name} summary beats no-index after convergence"),
            tail.iter().all(|&t| t < no_index),
            format!(
                "tail runtimes {:?}",
                tail.iter().map(|t| *t as i64).collect::<Vec<_>>()
            ),
        );
    }

    // 5. Summaries beat the full workload for most budgets past overhead.
    for (si, (name, _)) in series.iter().enumerate().skip(1) {
        let r = &results[si];
        let wins = (2..budgets.len())
            .filter(|&b| r[b] <= full[b] * 1.05)
            .count();
        ok &= harness::check(
            &format!("{name} summary within 5% of full workload for most budgets"),
            wins * 2 >= budgets.len() - 2,
            format!("{wins}/{} budgets", budgets.len() - 2),
        );
    }

    harness::finish(ok);
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        s[..n].to_string()
    }
}
