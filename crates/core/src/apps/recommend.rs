//! Next-query recommendation (paper §4, "Query recommendation").
//!
//! Model: cluster the embedding space, learn a per-user first-order
//! Markov chain over cluster transitions from session history, and
//! recommend the witness query of the most likely next cluster. Simple,
//! but exactly the structure SnipSuggest-style systems refine — and built
//! entirely from generic embeddings, no query-fragment engineering.

use super::{AppOutput, AppReport, TrainCorpus, WorkloadApp};
use crate::enriched::EnrichedQuery;
use crate::error::{QuercError, Result};
use querc_cluster::{kmeans, KMeansConfig};
use querc_embed::Embedder;
use querc_index::{FlatIndex, IndexStats, Metric, VectorIndex};
use querc_linalg::Pcg32;
use std::sync::Arc;

/// A trained next-query recommender.
pub struct QueryRecommender {
    embedder: Arc<dyn Embedder>,
    /// Exact index over the cluster centroids — every fresh query's
    /// cluster assignment is a k=1 search through the vector plane.
    centroids: FlatIndex,
    /// Witness SQL per cluster.
    witnesses: Vec<String>,
    /// `transitions[from][to]` = observed count + 1 (Laplace smoothing).
    transitions: Vec<Vec<f64>>,
    /// Queries across all training histories.
    pub trained_queries: usize,
}

impl QueryRecommender {
    /// Train from per-user ordered query histories.
    ///
    /// Thin wrapper over [`QueryRecommender::try_train`]; panics with
    /// the error message on an empty history set.
    pub fn train(
        histories: &[Vec<String>],
        embedder: Arc<dyn Embedder>,
        k: usize,
        seed: u64,
    ) -> QueryRecommender {
        Self::try_train(histories, embedder, k, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible training: reports an empty history set as
    /// [`QuercError::EmptyCorpus`] instead of asserting.
    pub fn try_train(
        histories: &[Vec<String>],
        embedder: Arc<dyn Embedder>,
        k: usize,
        seed: u64,
    ) -> Result<QueryRecommender> {
        let all: Vec<&str> = histories
            .iter()
            .flat_map(|h| h.iter().map(String::as_str))
            .collect();
        if all.is_empty() {
            return Err(QuercError::EmptyCorpus {
                context: "recommend.fit",
            });
        }
        let docs: Vec<Vec<String>> = all.iter().map(|s| querc_embed::sql_tokens(s)).collect();
        let points = embedder.embed_batch(&docs);
        let mut rng = Pcg32::with_stream(seed, 0x4ec0);
        let result = kmeans(
            &points,
            &KMeansConfig {
                k: k.min(points.len()),
                ..Default::default()
            },
            &mut rng,
        );
        let witnesses: Vec<String> = result
            .witnesses(&points)
            .into_iter()
            .map(|i| all[i].to_string())
            .collect();
        let kk = result.centroids.len();
        let mut transitions = vec![vec![1.0f64; kk]; kk];
        // Re-embed per history to track positions.
        let mut cursor = 0usize;
        for h in histories {
            let assigns: Vec<usize> = (0..h.len())
                .map(|j| result.assignments[cursor + j])
                .collect();
            cursor += h.len();
            for w in assigns.windows(2) {
                transitions[w[0]][w[1]] += 1.0;
            }
        }
        Ok(QueryRecommender {
            embedder,
            centroids: FlatIndex::from_rows(&result.centroids, Metric::Euclidean),
            witnesses,
            transitions,
            trained_queries: all.len(),
        })
    }

    /// Cluster id of a query.
    pub fn cluster_of(&self, sql: &str) -> usize {
        self.cluster_of_vector(&self.embedder.embed_sql(sql))
    }

    /// Cluster id of a precomputed embedding vector — shared by the
    /// SQL-level, batched, and serving paths. A k=1 search of the
    /// centroid index, bit-identical to the old `nearest_centroid`
    /// linear scan (a trained model always has ≥ 1 centroid).
    pub fn cluster_of_vector(&self, v: &[f32]) -> usize {
        self.centroids.nearest(v).unwrap_or(0) as usize
    }

    /// Cluster ids for a chunk of precomputed vectors in **one** index
    /// `search_batch` — the serving hot path.
    pub fn clusters_of_vectors(&self, vectors: &[&[f32]]) -> Vec<usize> {
        self.centroids
            .nearest_batch(vectors)
            .into_iter()
            .map(|c| c.unwrap_or(0) as usize)
            .collect()
    }

    /// Cluster ids for a chunk of pre-tokenized queries through the
    /// embedder's batched path.
    pub fn clusters_of_batch(&self, docs: &[Vec<String>]) -> Vec<usize> {
        let vectors = self.embedder.embed_batch(docs);
        let refs: Vec<&[f32]> = vectors.iter().map(Vec::as_slice).collect();
        self.clusters_of_vectors(&refs)
    }

    /// Search counters of the centroid index.
    pub fn index_stats(&self) -> IndexStats {
        self.centroids.stats()
    }

    /// Witness of the most likely next cluster after cluster `from`.
    fn next_witness(&self, from: usize) -> (usize, &str) {
        let row = &self.transitions[from];
        let to = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(from);
        (to, &self.witnesses[to])
    }

    /// Number of clusters in the transition model.
    pub fn num_clusters(&self) -> usize {
        self.centroids.len()
    }

    /// Recommend the most likely next query given the last one.
    pub fn recommend(&self, last_sql: &str) -> &str {
        let from = self.cluster_of(last_sql);
        self.next_witness(from).1
    }

    /// Top-n next-cluster witnesses, most likely first.
    pub fn recommend_n(&self, last_sql: &str, n: usize) -> Vec<&str> {
        let from = self.cluster_of(last_sql);
        let mut ranked: Vec<(usize, f64)> = self.transitions[from]
            .iter()
            .enumerate()
            .map(|(i, &p)| (i, p))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked
            .into_iter()
            .take(n)
            .map(|(i, _)| self.witnesses[i].as_str())
            .collect()
    }

    /// Witness SQL of a cluster.
    pub fn witness(&self, cluster: usize) -> Option<&str> {
        self.witnesses.get(cluster).map(String::as_str)
    }

    /// Held-out hit rate: fraction of consecutive pairs where the true
    /// next cluster is the recommended one.
    pub fn holdout_hit_rate(&self, histories: &[Vec<String>]) -> f64 {
        let mut hits = 0usize;
        let mut total = 0usize;
        for h in histories {
            for w in h.windows(2) {
                let rec = self.recommend(&w[0]);
                if self.cluster_of(rec) == self.cluster_of(&w[1]) {
                    hits += 1;
                }
                total += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// [`QueryRecommender`] behind the uniform [`WorkloadApp`] interface.
///
/// Labels attached per query: `query_cluster` (embedding-cluster id)
/// and `next_query` (the witness of the most likely next cluster given
/// this query — the session-continuation recommendation).
pub struct RecommendApp {
    embedder: Arc<dyn Embedder>,
    /// Number of embedding clusters in the transition model.
    pub k: usize,
}

impl RecommendApp {
    /// A recommendation app over `embedder` with the default cluster count.
    pub fn new(embedder: Arc<dyn Embedder>) -> RecommendApp {
        RecommendApp { embedder, k: 8 }
    }

    /// Override the number of embedding clusters (≥ 1).
    pub fn with_clusters(mut self, k: usize) -> RecommendApp {
        self.k = k.max(1);
        self
    }
}

impl WorkloadApp for RecommendApp {
    type Model = QueryRecommender;

    fn name(&self) -> &'static str {
        "recommend"
    }

    fn task(&self) -> &'static str {
        "recommend the next query from session transition patterns"
    }

    fn fit(&self, corpus: &TrainCorpus) -> Result<QueryRecommender> {
        QueryRecommender::try_train(
            &corpus.histories,
            Arc::clone(&self.embedder),
            self.k,
            corpus.seed ^ 0x4ec0,
        )
    }

    fn label_batch(
        &self,
        model: &QueryRecommender,
        batch: &[EnrichedQuery],
    ) -> Result<Vec<AppOutput>> {
        let vectors = EnrichedQuery::vectors(batch, model.embedder.as_ref());
        let refs: Vec<&[f32]> = vectors.iter().map(|v| v.as_slice()).collect();
        Ok(model
            .clusters_of_vectors(&refs)
            .into_iter()
            .map(|cluster| {
                let (_, witness) = model.next_witness(cluster);
                let mut out = AppOutput::new();
                out.set("query_cluster", cluster.to_string());
                out.set("next_query", witness);
                out
            })
            .collect())
    }

    fn embedder(&self) -> Option<Arc<dyn Embedder>> {
        Some(Arc::clone(&self.embedder))
    }

    fn index_stats(&self, model: &QueryRecommender) -> Option<IndexStats> {
        Some(model.index_stats())
    }

    fn report(&self, model: &QueryRecommender) -> AppReport {
        AppReport {
            app: self.name().to_string(),
            task: self.task().to_string(),
            trained_queries: model.trained_queries,
            detail: vec![
                ("embedder".to_string(), model.embedder.name().to_string()),
                ("clusters".to_string(), model.num_clusters().to_string()),
            ],
        }
    }

    fn save_model(&self, model: &QueryRecommender) -> Option<String> {
        let store = model.centroids.store();
        let mut flat = Vec::with_capacity(store.len() * store.dim());
        for row in store.iter() {
            flat.extend_from_slice(row);
        }
        crate::persist::to_json(&RecommendState {
            dim: store.dim(),
            centroids: flat,
            witnesses: model.witnesses.clone(),
            transitions: model.transitions.clone(),
            trained_queries: model.trained_queries,
        })
    }

    fn load_model(&self, json: &str) -> Result<QueryRecommender> {
        let state: RecommendState = crate::persist::from_json(json, "recommend model")?;
        let rows = crate::apps::summarize::restore_centroids(
            &state.dim,
            &state.centroids,
            self.embedder.dim(),
            "recommend",
        )?;
        let kk = rows.len();
        // next_witness indexes transitions[from][to] and witnesses[to]
        // unchecked, so both must be exactly kk-sized.
        if state.witnesses.len() != kk
            || state.transitions.len() != kk
            || state.transitions.iter().any(|row| row.len() != kk)
        {
            return Err(crate::persist::corrupt(format!(
                "recommend model shapes disagree: {} centroids, {} witnesses, {}x? transitions",
                kk,
                state.witnesses.len(),
                state.transitions.len()
            )));
        }
        Ok(QueryRecommender {
            embedder: Arc::clone(&self.embedder),
            centroids: FlatIndex::from_rows(&rows, Metric::Euclidean),
            witnesses: state.witnesses,
            transitions: state.transitions,
            trained_queries: state.trained_queries,
        })
    }
}

/// Serialized form of a [`QueryRecommender`]: the centroid matrix
/// (flattened row-major), the witness table, and the `k×k` smoothed
/// transition-count matrix.
#[derive(serde::Serialize, serde::Deserialize)]
struct RecommendState {
    dim: usize,
    centroids: Vec<f32>,
    witnesses: Vec<String>,
    transitions: Vec<Vec<f64>>,
    trained_queries: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_embed::BagOfTokens;

    /// Users alternate deterministically: lookup → aggregate → lookup …
    fn histories(n_users: usize, len: usize) -> Vec<Vec<String>> {
        (0..n_users)
            .map(|u| {
                (0..len)
                    .map(|i| {
                        if i % 2 == 0 {
                            format!("select v from point_lookup where k = {}", u * 100 + i)
                        } else {
                            format!("select g, sum(v) from rollup_facts group by g -- {u}")
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn recommender() -> QueryRecommender {
        QueryRecommender::train(
            &histories(5, 20),
            Arc::new(BagOfTokens::new(64, true)),
            2,
            7,
        )
    }

    #[test]
    fn learns_the_alternating_pattern() {
        let r = recommender();
        let after_lookup = r.recommend("select v from point_lookup where k = 999");
        assert!(
            after_lookup.contains("group by"),
            "after a lookup, recommend the rollup: {after_lookup}"
        );
        let after_rollup = r.recommend("select g, sum(v) from rollup_facts group by g -- x");
        assert!(
            after_rollup.contains("point_lookup"),
            "after a rollup, recommend the lookup: {after_rollup}"
        );
    }

    #[test]
    fn holdout_hit_rate_beats_chance() {
        let r = recommender();
        let held = histories(3, 12);
        let rate = r.holdout_hit_rate(&held);
        assert!(rate > 0.8, "alternation is deterministic; got {rate}");
    }

    #[test]
    fn recommend_n_is_ranked_and_bounded() {
        let r = recommender();
        let recs = r.recommend_n("select v from point_lookup where k = 1", 5);
        assert!(!recs.is_empty() && recs.len() <= 2, "only 2 clusters exist");
    }

    #[test]
    fn recommend_app_implements_workload_app() {
        let corpus = TrainCorpus {
            records: Vec::new(),
            histories: histories(5, 20),
            seed: 7,
        };
        let app = RecommendApp::new(Arc::new(BagOfTokens::new(64, true))).with_clusters(2);
        let model = app.fit(&corpus).unwrap();
        let out = app
            .label_batch(
                &model,
                &[EnrichedQuery::from_sql(
                    "select v from point_lookup where k = 999",
                )],
            )
            .unwrap();
        assert!(out[0].get("next_query").unwrap().contains("group by"));
        assert!(out[0].get("query_cluster").is_some());
        let report = app.report(&model);
        assert_eq!(report.app, "recommend");
        assert_eq!(report.trained_queries, 100);
        // No histories at all → EmptyCorpus.
        assert!(app.fit(&TrainCorpus::default()).is_err());
    }

    #[test]
    fn model_round_trips_through_save_load() {
        let corpus = TrainCorpus {
            records: Vec::new(),
            histories: histories(5, 20),
            seed: 7,
        };
        let app = RecommendApp::new(Arc::new(BagOfTokens::new(64, true))).with_clusters(2);
        let model = app.fit(&corpus).unwrap();
        let json = app.save_model(&model).expect("recommender is persistable");
        let restored = app.load_model(&json).unwrap();
        let batch: Vec<EnrichedQuery> = [
            "select v from point_lookup where k = 999",
            "select g, sum(v) from rollup_facts group by g -- z",
        ]
        .iter()
        .map(|s| EnrichedQuery::from_sql(*s))
        .collect();
        assert_eq!(
            app.label_batch(&model, &batch).unwrap(),
            app.label_batch(&restored, &batch).unwrap()
        );
        assert_eq!(restored.num_clusters(), model.num_clusters());

        // A ragged transition matrix would index-panic in next_witness.
        let mut state: RecommendState = crate::persist::from_json(&json, "t").unwrap();
        state.transitions[0].pop();
        let ragged = crate::persist::to_json(&state).unwrap();
        assert!(matches!(
            app.load_model(&ragged),
            Err(crate::error::QuercError::Corrupt { .. })
        ));
    }

    #[test]
    fn single_history_single_cluster() {
        let h = vec![vec!["select 1".to_string(), "select 1".to_string()]];
        let r = QueryRecommender::train(&h, Arc::new(BagOfTokens::new(16, false)), 1, 3);
        assert_eq!(r.recommend("select 1"), "select 1");
    }
}
