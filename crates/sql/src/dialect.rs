//! SQL dialect descriptions.
//!
//! The paper's setting is a multi-tenant cloud where each application may
//! speak a different SQL dialect (T-SQL for the SQL Server experiments,
//! Snowflake SQL for the workload experiments). The lexer only needs a few
//! dialect facts: identifier quoting styles, comment styles and parameter
//! markers. Keyword recognition is shared, with a small per-dialect extra
//! set.

/// A SQL dialect the lexer can be configured for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dialect {
    /// Accepts the union of all quoting/comment styles — the right choice
    /// when the source system is unknown, and the default for embedders.
    #[default]
    Generic,
    /// Microsoft SQL Server (T-SQL): `[bracket]` identifiers, `@params`.
    TSql,
    /// Snowflake SQL: double-quoted identifiers, `$$` strings tolerated.
    Snowflake,
    /// PostgreSQL: double-quoted identifiers, `$1` params, `::` casts.
    Postgres,
    /// MySQL: backtick identifiers, `#` comments.
    MySql,
    /// BigQuery standard SQL: backtick identifiers.
    BigQuery,
}

impl Dialect {
    /// Does `[ident]` denote a quoted identifier?
    pub fn bracket_idents(&self) -> bool {
        matches!(self, Dialect::TSql | Dialect::Generic)
    }

    /// Does `` `ident` `` denote a quoted identifier?
    pub fn backtick_idents(&self) -> bool {
        matches!(self, Dialect::MySql | Dialect::BigQuery | Dialect::Generic)
    }

    /// Is `#` a line-comment starter?
    pub fn hash_comments(&self) -> bool {
        matches!(self, Dialect::MySql | Dialect::Generic)
    }

    /// Is `@name` a bind-parameter / variable marker?
    pub fn at_params(&self) -> bool {
        matches!(self, Dialect::TSql | Dialect::BigQuery | Dialect::Generic)
    }

    /// Is `$1` / `$name` a bind-parameter marker?
    pub fn dollar_params(&self) -> bool {
        matches!(
            self,
            Dialect::Postgres | Dialect::Snowflake | Dialect::Generic
        )
    }

    /// All dialect values, for exhaustive tests.
    pub fn all() -> [Dialect; 6] {
        [
            Dialect::Generic,
            Dialect::TSql,
            Dialect::Snowflake,
            Dialect::Postgres,
            Dialect::MySql,
            Dialect::BigQuery,
        ]
    }

    /// Human-readable name (used in workload logs).
    pub fn name(&self) -> &'static str {
        match self {
            Dialect::Generic => "generic",
            Dialect::TSql => "tsql",
            Dialect::Snowflake => "snowflake",
            Dialect::Postgres => "postgres",
            Dialect::MySql => "mysql",
            Dialect::BigQuery => "bigquery",
        }
    }

    /// Inverse of [`Dialect::name`]: resolve a workload log's dialect
    /// string. Unknown names fall back to `Generic`, matching the
    /// lexer's accept-everything posture.
    pub fn from_name(name: &str) -> Dialect {
        match name.to_ascii_lowercase().as_str() {
            "tsql" => Dialect::TSql,
            "snowflake" => Dialect::Snowflake,
            "postgres" => Dialect::Postgres,
            "mysql" => Dialect::MySql,
            "bigquery" => Dialect::BigQuery,
            _ => Dialect::Generic,
        }
    }
}

/// Shared SQL keyword list (uppercase). Deliberately broad: a workload
/// manager sees DDL, DML, session commands and vendor extensions.
pub const KEYWORDS: &[&str] = &[
    "ALL",
    "ALTER",
    "AND",
    "ANY",
    "AS",
    "ASC",
    "BEGIN",
    "BETWEEN",
    "BY",
    "CASE",
    "CAST",
    "CHECK",
    "COLUMN",
    "COMMIT",
    "COPY",
    "CREATE",
    "CROSS",
    "CUBE",
    "CURRENT",
    "DATABASE",
    "DEFAULT",
    "DELETE",
    "DESC",
    "DISTINCT",
    "DROP",
    "ELSE",
    "END",
    "ESCAPE",
    "EXCEPT",
    "EXISTS",
    "EXTRACT",
    "FALSE",
    "FETCH",
    "FILTER",
    "FIRST",
    "FOLLOWING",
    "FOR",
    "FOREIGN",
    "FROM",
    "FULL",
    "GRANT",
    "GROUP",
    "GROUPING",
    "HAVING",
    "ILIKE",
    "IN",
    "INDEX",
    "INNER",
    "INSERT",
    "INTERSECT",
    "INTERVAL",
    "INTO",
    "IS",
    "JOIN",
    "KEY",
    "LAST",
    "LATERAL",
    "LEFT",
    "LIKE",
    "LIMIT",
    "MERGE",
    "NATURAL",
    "NOT",
    "NULL",
    "NULLS",
    "OFFSET",
    "ON",
    "OR",
    "ORDER",
    "OUTER",
    "OVER",
    "PARTITION",
    "PRECEDING",
    "PRIMARY",
    "QUALIFY",
    "RANGE",
    "RECURSIVE",
    "REFERENCES",
    "REVOKE",
    "RIGHT",
    "ROLLBACK",
    "ROLLUP",
    "ROW",
    "ROWS",
    "SAMPLE",
    "SELECT",
    "SET",
    "SHOW",
    "SOME",
    "STRAIGHT_JOIN",
    "TABLE",
    "TABLESAMPLE",
    "THEN",
    "TOP",
    "TRUE",
    "TRUNCATE",
    "UNION",
    "UNIQUE",
    "UNNEST",
    "UPDATE",
    "USE",
    "USING",
    "VALUES",
    "VIEW",
    "WHEN",
    "WHERE",
    "WINDOW",
    "WITH",
];

/// Is `word` a keyword (any dialect)? Case-insensitive.
pub fn is_keyword(word: &str) -> bool {
    let upper = word.to_ascii_uppercase();
    KEYWORDS.binary_search(&upper.as_str()).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_list_is_sorted_for_binary_search() {
        let mut sorted = KEYWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, KEYWORDS, "KEYWORDS must stay sorted");
    }

    #[test]
    fn keyword_lookup_case_insensitive() {
        assert!(is_keyword("select"));
        assert!(is_keyword("SELECT"));
        assert!(is_keyword("Select"));
        assert!(!is_keyword("lineitem"));
        assert!(!is_keyword(""));
    }

    #[test]
    fn dialect_quoting_rules() {
        assert!(Dialect::TSql.bracket_idents());
        assert!(!Dialect::Postgres.bracket_idents());
        assert!(Dialect::MySql.backtick_idents());
        assert!(!Dialect::Snowflake.backtick_idents());
        // Generic accepts everything.
        let g = Dialect::Generic;
        assert!(g.bracket_idents() && g.backtick_idents() && g.hash_comments());
    }

    #[test]
    fn name_roundtrips_through_from_name() {
        for d in Dialect::all() {
            assert_eq!(Dialect::from_name(d.name()), d);
        }
        assert_eq!(Dialect::from_name("SNOWFLAKE"), Dialect::Snowflake);
        assert_eq!(Dialect::from_name("???"), Dialect::Generic);
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> = Dialect::all().iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), Dialect::all().len());
    }
}
