//! CART-style decision trees with exact or randomized (extra-trees) splits.

use crate::state::{bad_state, ClassifierState, NodeState, TreeState};
use crate::{Classifier, LearnError};
use querc_linalg::Pcg32;

/// How split thresholds are chosen at each node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Exact CART: scan sorted feature values for the best Gini split.
    Best,
    /// Extra-trees: draw one uniform threshold per candidate feature
    /// between its min and max at the node. Much faster, and the variant
    /// behind the "randomized decision trees" the paper's §5.2 uses (the
    /// randomness washes out across a forest).
    Random,
}

/// Decision-tree hyperparameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    pub max_depth: usize,
    /// Nodes with fewer samples become leaves.
    pub min_samples_split: usize,
    /// Number of candidate features per node; `None` = all features.
    pub max_features: Option<usize>,
    pub strategy: SplitStrategy,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 24,
            min_samples_split: 2,
            max_features: None,
            strategy: SplitStrategy::Best,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Class-count histogram at the leaf, normalized lazily.
        counts: Vec<u32>,
    },
    Split {
        feature: usize,
        threshold: f32,
        /// Index of the left child in the node arena.
        left: usize,
        /// Index of the right child in the node arena.
        right: usize,
    },
}

/// A trained decision tree (arena representation — no recursion on drop,
/// cache-friendly traversal).
#[derive(Debug, Clone)]
pub struct DecisionTree {
    cfg: TreeConfig,
    nodes: Vec<Node>,
    n_classes: usize,
}

impl DecisionTree {
    pub fn new(cfg: TreeConfig) -> Self {
        DecisionTree {
            cfg,
            nodes: Vec::new(),
            n_classes: 0,
        }
    }

    /// Number of nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Class-probability distribution for one sample.
    pub fn proba(&self, x: &[f32]) -> Vec<f32> {
        if self.nodes.is_empty() {
            return vec![0.0; self.n_classes.max(1)];
        }
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { counts } => {
                    let total: u32 = counts.iter().sum();
                    return if total == 0 {
                        vec![1.0 / counts.len().max(1) as f32; counts.len()]
                    } else {
                        counts.iter().map(|&c| c as f32 / total as f32).collect()
                    };
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if x.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Snapshot the fitted arena as a [`TreeState`].
    pub fn to_state(&self) -> TreeState {
        TreeState {
            n_classes: self.n_classes,
            nodes: self
                .nodes
                .iter()
                .map(|n| match n {
                    Node::Leaf { counts } => NodeState {
                        leaf: true,
                        counts: counts.clone(),
                        feature: 0,
                        threshold: 0.0,
                        left: 0,
                        right: 0,
                    },
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => NodeState {
                        leaf: false,
                        counts: Vec::new(),
                        feature: *feature,
                        threshold: *threshold,
                        left: *left,
                        right: *right,
                    },
                })
                .collect(),
        }
    }

    /// Rebuild an inference-ready tree from a snapshot, validating the
    /// arena so traversal can neither index out of bounds nor loop:
    /// every split's children must point strictly forward (the invariant
    /// `build` produces) and leaf histograms must match `n_classes`.
    /// Restored trees carry a default [`TreeConfig`] (only `fit` reads
    /// it).
    pub fn from_state(state: TreeState) -> Result<DecisionTree, LearnError> {
        let n = state.nodes.len();
        let nodes = state
            .nodes
            .into_iter()
            .enumerate()
            .map(|(i, ns)| {
                if ns.leaf {
                    if ns.counts.len() != state.n_classes {
                        return Err(bad_state(format!(
                            "leaf {i}: {} class counts for {} classes",
                            ns.counts.len(),
                            state.n_classes
                        )));
                    }
                    Ok(Node::Leaf { counts: ns.counts })
                } else {
                    // Children strictly after the parent ⇒ acyclic and
                    // in-bounds, so `proba`'s loop always terminates.
                    if ns.left <= i || ns.right <= i || ns.left >= n || ns.right >= n {
                        return Err(bad_state(format!(
                            "split {i}: children ({}, {}) outside the forward arena of {n}",
                            ns.left, ns.right
                        )));
                    }
                    Ok(Node::Split {
                        feature: ns.feature,
                        threshold: ns.threshold,
                        left: ns.left,
                        right: ns.right,
                    })
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DecisionTree {
            cfg: TreeConfig::default(),
            nodes,
            n_classes: state.n_classes,
        })
    }

    fn build(
        &mut self,
        x: &[Vec<f32>],
        y: &[u32],
        indices: &mut [usize],
        depth: usize,
        rng: &mut Pcg32,
    ) -> usize {
        let counts = class_counts(y, indices, self.n_classes);
        let n = indices.len();
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= self.cfg.max_depth || n < self.cfg.min_samples_split {
            self.nodes.push(Node::Leaf { counts });
            return self.nodes.len() - 1;
        }
        let Some((feature, threshold)) = self.find_split(x, y, indices, &counts, rng) else {
            self.nodes.push(Node::Leaf { counts });
            return self.nodes.len() - 1;
        };
        // Partition indices in place.
        let mid = partition(indices, |&i| x[i][feature] <= threshold);
        if mid == 0 || mid == n {
            self.nodes.push(Node::Leaf { counts });
            return self.nodes.len() - 1;
        }
        let node_idx = self.nodes.len();
        self.nodes.push(Node::Split {
            feature,
            threshold,
            left: usize::MAX,
            right: usize::MAX,
        });
        let (left_ids, right_ids) = indices.split_at_mut(mid);
        let left = self.build(x, y, left_ids, depth + 1, rng);
        let right = self.build(x, y, right_ids, depth + 1, rng);
        if let Node::Split {
            left: l, right: r, ..
        } = &mut self.nodes[node_idx]
        {
            *l = left;
            *r = right;
        }
        node_idx
    }

    fn find_split(
        &self,
        x: &[Vec<f32>],
        y: &[u32],
        indices: &[usize],
        parent_counts: &[u32],
        rng: &mut Pcg32,
    ) -> Option<(usize, f32)> {
        let n_features = x.first().map_or(0, Vec::len);
        if n_features == 0 {
            return None;
        }
        let k = self
            .cfg
            .max_features
            .unwrap_or(n_features)
            .clamp(1, n_features);
        let candidates: Vec<usize> = if k == n_features {
            (0..n_features).collect()
        } else {
            rng.sample_indices(n_features, k)
        };
        let parent_gini = gini(parent_counts, indices.len() as f32);
        let mut best: Option<(f32, usize, f32)> = None; // (impurity, feat, thresh)
        for &f in &candidates {
            let split = match self.cfg.strategy {
                SplitStrategy::Random => random_threshold(x, indices, f, rng)
                    .map(|t| (weighted_gini(x, y, indices, f, t, self.n_classes), t)),
                SplitStrategy::Best => best_threshold(x, y, indices, f, self.n_classes),
            };
            if let Some((impurity, thresh)) = split {
                if impurity < parent_gini - 1e-7 && best.is_none_or(|(bi, _, _)| impurity < bi) {
                    best = Some((impurity, f, thresh));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &[Vec<f32>], y: &[u32], n_classes: usize, rng: &mut Pcg32) {
        assert_eq!(x.len(), y.len());
        assert!(n_classes > 0);
        self.nodes.clear();
        self.n_classes = n_classes;
        if x.is_empty() {
            self.nodes.push(Node::Leaf {
                counts: vec![0; n_classes],
            });
            return;
        }
        let mut indices: Vec<usize> = (0..x.len()).collect();
        self.build(x, y, &mut indices, 0, rng);
    }

    fn predict(&self, x: &[f32]) -> u32 {
        let p = self.proba(x);
        querc_linalg::stats::argmax(&p).unwrap_or(0) as u32
    }

    fn predict_proba(&self, x: &[f32], n_classes: usize) -> Vec<f32> {
        let mut p = self.proba(x);
        p.resize(n_classes, 0.0);
        p
    }

    fn export_state(&self) -> Option<ClassifierState> {
        Some(ClassifierState::Tree(self.to_state()))
    }
}

fn class_counts(y: &[u32], indices: &[usize], n_classes: usize) -> Vec<u32> {
    let mut counts = vec![0u32; n_classes];
    for &i in indices {
        counts[y[i] as usize] += 1;
    }
    counts
}

fn gini(counts: &[u32], total: f32) -> f32 {
    if total <= 0.0 {
        return 0.0;
    }
    let mut g = 1.0;
    for &c in counts {
        let p = c as f32 / total;
        g -= p * p;
    }
    g
}

/// Uniform random threshold between the feature's min and max at the node.
fn random_threshold(x: &[Vec<f32>], indices: &[usize], f: usize, rng: &mut Pcg32) -> Option<f32> {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &i in indices {
        let v = x[i][f];
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if hi <= lo {
        return None;
    }
    Some(rng.range_f32(lo, hi))
}

/// Weighted Gini impurity of the two children induced by `thresh`.
fn weighted_gini(
    x: &[Vec<f32>],
    y: &[u32],
    indices: &[usize],
    f: usize,
    thresh: f32,
    n_classes: usize,
) -> f32 {
    let mut left = vec![0u32; n_classes];
    let mut right = vec![0u32; n_classes];
    for &i in indices {
        if x[i][f] <= thresh {
            left[y[i] as usize] += 1;
        } else {
            right[y[i] as usize] += 1;
        }
    }
    let nl: u32 = left.iter().sum();
    let nr: u32 = right.iter().sum();
    let total = (nl + nr) as f32;
    (nl as f32 / total) * gini(&left, nl as f32) + (nr as f32 / total) * gini(&right, nr as f32)
}

/// Exact best split on one feature via a sorted sweep.
fn best_threshold(
    x: &[Vec<f32>],
    y: &[u32],
    indices: &[usize],
    f: usize,
    n_classes: usize,
) -> Option<(f32, f32)> {
    let mut vals: Vec<(f32, u32)> = indices.iter().map(|&i| (x[i][f], y[i])).collect();
    vals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let n = vals.len();
    let mut right = vec![0u32; n_classes];
    for &(_, c) in &vals {
        right[c as usize] += 1;
    }
    let mut left = vec![0u32; n_classes];
    let mut best: Option<(f32, f32)> = None;
    for k in 0..n - 1 {
        let c = vals[k].1 as usize;
        left[c] += 1;
        right[c] -= 1;
        if vals[k].0 == vals[k + 1].0 {
            continue; // can't split between equal values
        }
        let nl = (k + 1) as f32;
        let nr = (n - k - 1) as f32;
        let impurity = (nl / n as f32) * gini(&left, nl) + (nr / n as f32) * gini(&right, nr);
        let thresh = 0.5 * (vals[k].0 + vals[k + 1].0);
        if best.is_none_or(|(bi, _)| impurity < bi) {
            best = Some((impurity, thresh));
        }
    }
    best
}

/// In-place stable-ish partition; returns the count of elements matching
/// the predicate (which end up first).
fn partition<T, F: Fn(&T) -> bool>(items: &mut [T], pred: F) -> usize {
    let mut mid = 0;
    for i in 0..items.len() {
        if pred(&items[i]) {
            items.swap(i, mid);
            mid += 1;
        }
    }
    mid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f32>>, Vec<u32>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut rng = Pcg32::new(1);
        for _ in 0..200 {
            let a = rng.f32();
            let b = rng.f32();
            x.push(vec![a, b]);
            y.push(((a > 0.5) ^ (b > 0.5)) as u32);
        }
        (x, y)
    }

    #[test]
    fn learns_xor_with_best_splits() {
        let (x, y) = xor_data();
        let mut tree = DecisionTree::new(TreeConfig::default());
        let mut rng = Pcg32::new(2);
        tree.fit(&x, &y, 2, &mut rng);
        let preds = tree.predict_batch(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f32 / y.len() as f32;
        assert!(acc > 0.95, "xor training accuracy {acc}");
    }

    #[test]
    fn random_splits_also_learn_xor() {
        let (x, y) = xor_data();
        let mut tree = DecisionTree::new(TreeConfig {
            strategy: SplitStrategy::Random,
            ..Default::default()
        });
        let mut rng = Pcg32::new(3);
        tree.fit(&x, &y, 2, &mut rng);
        let preds = tree.predict_batch(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f32 / y.len() as f32;
        assert!(acc > 0.9, "xor training accuracy {acc}");
    }

    #[test]
    fn max_depth_limits_tree() {
        let (x, y) = xor_data();
        let mut stump = DecisionTree::new(TreeConfig {
            max_depth: 1,
            ..Default::default()
        });
        let mut rng = Pcg32::new(4);
        stump.fit(&x, &y, 2, &mut rng);
        assert!(stump.node_count() <= 3, "depth-1 tree has ≤ 3 nodes");
    }

    #[test]
    fn pure_node_becomes_leaf_immediately() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![1, 1, 1];
        let mut tree = DecisionTree::new(TreeConfig::default());
        let mut rng = Pcg32::new(5);
        tree.fit(&x, &y, 2, &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[0.5]), 1);
    }

    #[test]
    fn proba_sums_to_one() {
        let (x, y) = xor_data();
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: 3,
            ..Default::default()
        });
        let mut rng = Pcg32::new(6);
        tree.fit(&x, &y, 2, &mut rng);
        let p = tree.proba(&[0.3, 0.8]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn constant_features_give_single_leaf() {
        let x = vec![vec![1.0, 1.0]; 10];
        let y = vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        let mut tree = DecisionTree::new(TreeConfig::default());
        let mut rng = Pcg32::new(7);
        tree.fit(&x, &y, 2, &mut rng);
        assert_eq!(tree.node_count(), 1, "no split possible on constants");
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = xor_data();
        let cfg = TreeConfig {
            strategy: SplitStrategy::Random,
            max_features: Some(1),
            ..Default::default()
        };
        let mut t1 = DecisionTree::new(cfg.clone());
        let mut t2 = DecisionTree::new(cfg);
        t1.fit(&x, &y, 2, &mut Pcg32::new(9));
        t2.fit(&x, &y, 2, &mut Pcg32::new(9));
        for probe in [[0.1, 0.9], [0.6, 0.2], [0.5, 0.5]] {
            assert_eq!(t1.predict(&probe), t2.predict(&probe));
        }
    }

    #[test]
    fn multiclass_blobs() {
        let mut rng = Pcg32::new(11);
        let mut x = Vec::new();
        let mut y = Vec::new();
        let centers = [(0.0f32, 0.0f32), (5.0, 5.0), (0.0, 5.0)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..50 {
                x.push(vec![cx + rng.normal() * 0.5, cy + rng.normal() * 0.5]);
                y.push(c as u32);
            }
        }
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&x, &y, 3, &mut rng);
        assert_eq!(tree.predict(&[0.0, 0.0]), 0);
        assert_eq!(tree.predict(&[5.0, 5.0]), 1);
        assert_eq!(tree.predict(&[0.0, 5.0]), 2);
    }
}
