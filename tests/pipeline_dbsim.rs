//! Integration: SQL text → parser → optimizer → advisor invariants on
//! generated workloads (cross-crate properties the unit tests can't see).

use querc_dbsim::{run_workload, workload_runtime, Advisor, AdvisorConfig, Catalog, Index};
use querc_workloads::TpchWorkload;

#[test]
fn every_generated_query_plans_with_finite_positive_cost() {
    let w = TpchWorkload::generate(3, 5);
    let catalog = Catalog::tpch_sf1();
    let run = run_workload(&w.sql(), &catalog, &[]);
    assert_eq!(run.per_query_secs.len(), 66);
    for (i, &t) in run.per_query_secs.iter().enumerate() {
        assert!(
            t.is_finite() && t > 0.0 && t < 120.0,
            "query {i} (template {}) has implausible cost {t}",
            w.queries[i].template
        );
    }
}

#[test]
fn indexes_never_change_noindex_baseline_queries() {
    // Templates that cannot use any candidate index (pure lineitem scans
    // like Q1) must cost the same under any configuration.
    let w = TpchWorkload::generate(2, 6);
    let catalog = Catalog::tpch_sf1();
    let (s, e) = w.template_range(1);
    let sqls = w.sql();
    let base = run_workload(&sqls, &catalog, &[]);
    let idx = [
        Index::new("orders", &["o_orderdate"]),
        Index::new("customer", &["c_mktsegment"]),
    ];
    let with = run_workload(&sqls, &catalog, &idx);
    for i in s..e {
        assert!(
            (base.per_query_secs[i] - with.per_query_secs[i]).abs() < 1e-9,
            "Q1 instance {i} should ignore irrelevant indexes"
        );
    }
}

#[test]
fn advisor_budget_sweep_is_wellformed() {
    let w = TpchWorkload::generate(10, 8);
    let sqls = w.sql();
    let catalog = Catalog::tpch_sf1();
    let advisor = Advisor::new(&catalog, AdvisorConfig::default());
    let mut consumed_last = 0.0;
    for budget in [30.0, 170.0, 300.0, 900.0] {
        let report = advisor.recommend(&sqls, budget);
        assert!(report.consumed_secs <= budget + 1e-9);
        assert!(report.consumed_secs >= consumed_last - 1e-9);
        consumed_last = report.consumed_secs;
        // Index set sizes stay within the advisor's declared cap.
        assert!(report.indexes.len() <= AdvisorConfig::default().max_indexes);
        // Every recommended index names a real table/column.
        for ix in &report.indexes {
            assert!(catalog.table(&ix.table).is_some(), "unknown table {ix}");
            assert!(
                catalog.column(&ix.table, ix.leading()).is_some(),
                "unknown column {ix}"
            );
        }
    }
}

#[test]
fn fully_validated_recommendations_never_regress() {
    let w = TpchWorkload::generate(12, 13);
    let sqls = w.sql();
    let catalog = Catalog::tpch_sf1();
    let advisor = Advisor::new(&catalog, AdvisorConfig::default());
    let report = advisor.recommend(&sqls, 7200.0); // unlimited in practice
    let base = workload_runtime(&sqls, &catalog, &[]);
    let with = workload_runtime(&sqls, &catalog, &report.indexes);
    assert!(
        with <= base,
        "validated configuration must not lose to no-index: {with:.0} vs {base:.0}"
    );
}

#[test]
fn snowcloud_queries_also_flow_through_the_simulator() {
    // Unknown-schema queries must still plan (default table stats), since
    // Querc routes heterogeneous tenants through one analytics path.
    let wl =
        querc_workloads::SnowCloud::generate(&querc_workloads::SnowCloudConfig::pretrain(4, 25, 3));
    let catalog = Catalog::tpch_sf1();
    let sqls: Vec<&str> = wl.records.iter().map(|r| r.sql.as_str()).collect();
    let run = run_workload(&sqls, &catalog, &[]);
    assert!(run
        .per_query_secs
        .iter()
        .all(|&t| t.is_finite() && t >= 0.0));
}
