//! The labeled-query data model.
//!
//! Querc's only inter-component message is "a query plus labels"
//! (`(Q, c1, c2, c3, …)` in the paper's §2). `QueryRecord` is that tuple
//! for log-shaped data: the SQL text plus the typical metadata labels the
//! training module consumes (user, account, routing cluster, runtime,
//! memory, error code, arrival time).

use serde::{Deserialize, Serialize};

/// One labeled query drawn from a (real or synthetic) query log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// The raw SQL text as logged.
    pub sql: String,
    /// Issuing user, unique across accounts (e.g. `acct03/u07`).
    pub user: String,
    /// Customer account (tenant).
    pub account: String,
    /// Cluster the query was routed to.
    pub cluster: String,
    /// SQL dialect family the tenant speaks.
    pub dialect: String,
    /// Observed execution time.
    pub runtime_ms: f64,
    /// Peak memory.
    pub mem_mb: f64,
    /// Error code if the query failed (`None` = success).
    pub error_code: Option<u16>,
    /// Arrival time (seconds since the log epoch).
    pub timestamp: u64,
}

impl QueryRecord {
    /// Normalized token stream of the SQL text (embedder input).
    pub fn tokens(&self) -> Vec<String> {
        querc_sql::normalize::normalize_sql(&self.sql, querc_sql::Dialect::Generic)
    }

    /// Canonical normalized text — equal for verbatim-identical queries
    /// regardless of whitespace/case (used to detect shared query pools).
    pub fn normalized_text(&self) -> String {
        querc_sql::normalize::normalized_text(&self.sql, querc_sql::Dialect::Generic)
    }

    /// True when the query failed.
    pub fn is_error(&self) -> bool {
        self.error_code.is_some()
    }
}

/// Train/test split by index parity of a shuffled order — a simple,
/// deterministic holdout used by examples and tests.
///
/// `test_fraction` is clamped to `[0, 1]`, so the degenerate corners
/// are well-defined instead of panicking: an empty corpus yields two
/// empty halves, a fraction of `1.0` (or a rounded holdout ≥ the
/// corpus size) puts everything in the test half.
pub fn split_holdout<T: Clone>(
    items: &[T],
    test_fraction: f64,
    rng: &mut querc_linalg::Pcg32,
) -> (Vec<T>, Vec<T>) {
    let test_fraction = test_fraction.clamp(0.0, 1.0);
    let mut idx: Vec<usize> = (0..items.len()).collect();
    rng.shuffle(&mut idx);
    let n_test = (((items.len() as f64) * test_fraction).round() as usize).min(items.len());
    let test: Vec<T> = idx[..n_test].iter().map(|&i| items[i].clone()).collect();
    let train: Vec<T> = idx[n_test..].iter().map(|&i| items[i].clone()).collect();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(sql: &str) -> QueryRecord {
        QueryRecord {
            sql: sql.to_string(),
            user: "a/u1".into(),
            account: "a".into(),
            cluster: "c1".into(),
            dialect: "generic".into(),
            runtime_ms: 10.0,
            mem_mb: 64.0,
            error_code: None,
            timestamp: 0,
        }
    }

    #[test]
    fn tokens_are_normalized() {
        let r = rec("SELECT A FROM T WHERE x = 99");
        assert_eq!(
            r.tokens(),
            vec!["select", "a", "from", "t", "where", "x", "=", "<num>"]
        );
    }

    #[test]
    fn normalized_text_unifies_case_and_literals() {
        let a = rec("SELECT a FROM t WHERE x = 1").normalized_text();
        let b = rec("select  a  from t where x = 42").normalized_text();
        assert_eq!(a, b);
    }

    #[test]
    fn error_flag() {
        let mut r = rec("select 1");
        assert!(!r.is_error());
        r.error_code = Some(604);
        assert!(r.is_error());
    }

    #[test]
    fn holdout_partitions() {
        let items: Vec<u32> = (0..100).collect();
        let (train, test) = split_holdout(&items, 0.3, &mut querc_linalg::Pcg32::new(1));
        assert_eq!(test.len(), 30);
        assert_eq!(train.len(), 70);
        let mut all: Vec<u32> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, items);
    }

    #[test]
    fn holdout_of_empty_corpus_is_two_empty_halves() {
        let items: Vec<u32> = Vec::new();
        let (train, test) = split_holdout(&items, 0.3, &mut querc_linalg::Pcg32::new(1));
        assert!(train.is_empty());
        assert!(test.is_empty());
    }

    #[test]
    fn holdout_of_everything_leaves_no_training_data() {
        let items: Vec<u32> = (0..10).collect();
        let (train, test) = split_holdout(&items, 1.0, &mut querc_linalg::Pcg32::new(1));
        assert!(train.is_empty());
        assert_eq!(test.len(), 10);
        let mut sorted = test.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, items);
    }

    #[test]
    fn out_of_range_fractions_clamp_instead_of_panicking() {
        let items: Vec<u32> = (0..10).collect();
        let (train, test) = split_holdout(&items, 1.5, &mut querc_linalg::Pcg32::new(1));
        assert_eq!((train.len(), test.len()), (0, 10));
        let (train, test) = split_holdout(&items, -0.5, &mut querc_linalg::Pcg32::new(1));
        assert_eq!((train.len(), test.len()), (10, 0));
    }

    #[test]
    fn holdout_of_nothing_keeps_everything_for_training() {
        let items: Vec<u32> = (0..5).collect();
        let (train, test) = split_holdout(&items, 0.0, &mut querc_linalg::Pcg32::new(9));
        assert_eq!(train.len(), 5);
        assert!(test.is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let r = rec("select 1");
        let json = serde_json::to_string(&r).unwrap();
        let back: QueryRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
