//! Load-test the sharded serving layer: all six workload apps under a
//! timed trace replay, with the per-app latency histogram table.
//!
//! Run with: `cargo run --release --example load_test [qps] [shards] [queries]`
//!
//! * `qps`     — aggregate arrival rate of the open-loop replay (default 600)
//! * `shards`  — `shards_per_app` worker threads (default 4)
//! * `queries` — arrivals to replay (default 600)
//!
//! Every arrival fans out to all six registered apps (six labeling
//! passes per query), so the served rate is 6× the arrival rate. The
//! replay is open-loop: if the manager can't keep up, arrivals are
//! dispatched late and the schedule slip is reported as `max lag`.
//!
//! All six apps share ONE embedder, so the ingress embed plane turns
//! the 6× fan-out into at most one embedding per distinct query
//! template; the table reports each app's cache hit-rate and the run
//! exits nonzero if the cache never hit (CI runs this as a regression
//! gate on the ingress plane). A second table reports each index-backed
//! app's vector-plane search counters (searches, probes, candidates
//! scanned, exact vs ANN), and the run also exits nonzero if the replay
//! recorded zero index searches — the same style of gate for the
//! vector search plane.
//!
//! The replay uses the heavy-tailed Zipf tenant mix (a few whales, many
//! minnows — the paper's multi-tenant shape), and after the main replay
//! a **QoS isolation gate** runs a whale/minnow scenario twice through
//! a QoS-enabled manager: eight minnows alone, then the same minnow
//! schedule with a whale flooding at 10× their aggregate volume. The
//! gate asserts the whale's overload surfaces as `Rejected` (never
//! minnow sheds) and that the worst minnow p99 degrades ≤3× (plus 10ms
//! slack), writing both p99s and the shed counts to `BENCH_qos.json`
//! at the repo root for cross-PR tracking.

use querc::apps::summarize::SummaryConfig;
use querc::apps::{
    AuditApp, ErrorsApp, RecommendApp, ResourcesApp, RoutingApp, SummarizeApp, TrainCorpus,
};
use querc::{
    LabeledQuery, QosConfig, QuercError, RateLimit, ServiceDrain, TenantPolicy, WorkloadManager,
    WorkloadManagerConfig,
};
use querc_embed::{BagOfTokens, Embedder};
use querc_workloads::{ReplayConfig, ReplaySchedule, SnowCloud, SnowCloudConfig, TenantMix};
use std::path::PathBuf;
use std::sync::Arc;

fn arg(n: usize, default: f64) -> f64 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let qps = arg(1, 600.0);
    let shards = arg(2, 4.0) as usize;
    let queries = arg(3, 600.0) as usize;

    // Train on one slice of a multi-tenant trace, replay another.
    let workload = SnowCloud::generate(&SnowCloudConfig::pretrain(10, 150, 0x10ad));
    let split = workload.records.len() / 2;
    let corpus = TrainCorpus::from_records(workload.records[..split].to_vec(), 0x10ad);
    let schedule = ReplaySchedule::from_records(
        &workload.records[split..],
        &ReplayConfig {
            qps,
            burstiness: 0.7,
            seed: 0x10ad,
            limit: Some(queries),
            // Heavy-tailed tenant popularity: rank 0 is the whale.
            tenant_mix: Some(TenantMix {
                tenants: 12,
                exponent: 1.1,
            }),
        },
    );
    println!(
        "corpus: {} training queries | replay: {} arrivals ({} distinct templates, \
         {} distinct tenants, Zipf s=1.1) at {qps:.0} q/s (bursty), {} shards/app",
        corpus.len(),
        schedule.len(),
        schedule.distinct_templates(),
        schedule.distinct_tenants(),
        shards
    );

    let embedder: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(128, true));
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
        shards_per_app: shards,
        batch: 32,
        queue_depth: 2048,
        ..Default::default()
    });
    mgr.register(AuditApp::new(embedder.clone()).with_trees(20), &corpus)
        .unwrap();
    mgr.register(ErrorsApp::new(embedder.clone()), &corpus)
        .unwrap();
    mgr.register(
        RecommendApp::new(embedder.clone()).with_clusters(6),
        &corpus,
    )
    .unwrap();
    mgr.register(ResourcesApp::new(embedder.clone()), &corpus)
        .unwrap();
    mgr.register(RoutingApp::new(embedder.clone()), &corpus)
        .unwrap();
    mgr.register(
        SummarizeApp::new(embedder.clone()).with_config(SummaryConfig {
            k: Some(8),
            ..Default::default()
        }),
        &corpus,
    )
    .unwrap();

    // Open-loop replay: every arrival fans out to all six apps.
    let apps = mgr.app_names();
    let stats = schedule.replay(|record| {
        let lq = LabeledQuery::from_record(record);
        for app in &apps {
            mgr.submit(app, lq.clone()).expect("serving fabric up");
        }
    });
    println!(
        "\nreplay done: {} arrivals in {:.2?} (max schedule lag {:.2?})",
        stats.dispatched, stats.elapsed, stats.max_lag
    );

    let drained = mgr.drain();
    let served: u64 = drained.throughput.iter().map(|t| t.processed).sum();
    println!(
        "served {served} labeling requests ({:.0} req/s end to end)\n",
        served as f64 / stats.elapsed.as_secs_f64()
    );
    println!(
        "{:<11} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "app", "processed", "cache", "p50 µs", "p95 µs", "p99 µs", "max µs", "mean µs"
    );
    for tp in &drained.throughput {
        let l = &tp.latency;
        println!(
            "{:<11} {:>9} {:>7.1}% {:>9} {:>9} {:>9} {:>9} {:>9}",
            tp.app,
            tp.processed,
            100.0 * tp.cache_hit_rate(),
            l.p50_us,
            l.p95_us,
            l.p99_us,
            l.max_us,
            l.mean_us
        );
    }
    let cache = &drained.embed_cache;
    println!(
        "\nembed plane: {} hits / {} misses ({:.1}% hit rate), {} cached vectors, \
         {} evictions — each miss is one template embedded for all six apps",
        cache.hits,
        cache.misses,
        100.0 * cache.hit_rate(),
        cache.entries,
        cache.evictions
    );
    // Vector search plane: per-app index stats, next to the cache rates.
    println!(
        "\n{:<11} {:>8} {:>7} {:>6} {:>9} {:>8} {:>12} {:>11} {:>10}",
        "index",
        "backend",
        "kernel",
        "kind",
        "searches",
        "probes",
        "candidates",
        "cand/search",
        "bytes"
    );
    let mut index_searches = 0u64;
    for tp in &drained.throughput {
        if let Some(ix) = &tp.index {
            index_searches += ix.searches;
            println!(
                "{:<11} {:>8} {:>7} {:>6} {:>9} {:>8} {:>12} {:>11.1} {:>10}",
                tp.app,
                ix.backend,
                ix.kernel,
                if ix.exact { "exact" } else { "ann" },
                ix.searches,
                ix.probes,
                ix.candidates,
                ix.candidates_per_search(),
                ix.resident_bytes
            );
        }
    }
    println!(
        "training mirror captured {} labeled queries",
        drained.training_log.len()
    );
    // CI gate: a templated trace through six apps sharing one embedder
    // MUST hit the ingress cache; a zero hit-count means the embed-once
    // plane silently stopped fanning vectors out.
    assert!(
        cache.hits > 0,
        "ingress embed cache never hit on a templated trace"
    );
    // CI gate: the recommend/summarize apps serve cluster assignment
    // through the vector search plane; zero recorded searches after a
    // replay means the index layer silently fell out of the hot path.
    assert!(
        index_searches > 0,
        "vector index plane recorded zero searches during the replay"
    );

    sq8_recall_gate(&corpus, &embedder);
    qos_isolation_gate(&corpus, shards);
    lineage_routing_gate(&corpus, shards);
}

// ---------------------------------------------------------------------
// Lineage routing gate: per-table co-location under RoutingPolicy::Lineage.
// ---------------------------------------------------------------------

/// Replay a multi-dialect trace and show, per table-lineage key, how
/// many shards the queries touching those tables would occupy under
/// tenant routing versus lineage routing. The gate asserts lineage
/// routing pins every table's queries to exactly one shard while at
/// least one multi-tenant table would have scattered, then serves the
/// whole trace through a `RoutingPolicy::Lineage` manager end to end.
fn lineage_routing_gate(corpus: &TrainCorpus, shards: usize) {
    use querc::{lineage_routing_key, routing_key, shard_for, RoutingPolicy};
    use std::collections::{BTreeMap, HashSet};

    let shards = shards.max(2);
    let trace = SnowCloud::generate(&SnowCloudConfig::paper_table2(0.01, 0x11de));

    #[derive(Default)]
    struct KeyStats {
        queries: usize,
        tenants: HashSet<String>,
        tenant_shards: HashSet<usize>,
        lineage_shards: HashSet<usize>,
    }
    let mut by_key: BTreeMap<String, KeyStats> = BTreeMap::new();
    for r in &trace.records {
        let lq = LabeledQuery::from_record(r);
        let lkey = lineage_routing_key(&lq);
        let e = by_key.entry(lkey.clone()).or_default();
        e.queries += 1;
        e.tenants.insert(r.account.clone());
        e.tenant_shards.insert(shard_for(routing_key(&lq), shards));
        e.lineage_shards.insert(shard_for(&lkey, shards));
    }

    let mut rows: Vec<(&String, &KeyStats)> = by_key.iter().collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1.queries));
    println!(
        "\nlineage routing gate: {} queries over {} lineage keys, {shards} shards",
        trace.records.len(),
        by_key.len()
    );
    println!(
        "{:<44} {:>7} {:>7} {:>13} {:>14}",
        "lineage key", "queries", "tenants", "tenant-shards", "lineage-shards"
    );
    for (key, s) in rows.iter().take(8) {
        let shown: String = key.chars().take(44).collect();
        println!(
            "{shown:<44} {:>7} {:>7} {:>13} {:>14}",
            s.queries,
            s.tenants.len(),
            s.tenant_shards.len(),
            s.lineage_shards.len()
        );
    }
    for (key, s) in &by_key {
        assert_eq!(
            s.lineage_shards.len(),
            1,
            "lineage key {key:?} must co-locate on one shard"
        );
    }
    assert!(
        by_key
            .values()
            .any(|s| s.tenants.len() >= 2 && s.tenant_shards.len() > 1),
        "trace should contain a multi-tenant table that tenant routing scatters"
    );

    // End-to-end: the same trace served through a lineage-routed manager.
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
        shards_per_app: shards,
        routing: RoutingPolicy::Lineage,
        ..Default::default()
    });
    let embedder: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(128, true));
    mgr.register(ResourcesApp::new(embedder), corpus).unwrap();
    for r in &trace.records {
        mgr.submit("resources", LabeledQuery::from_record(r))
            .expect("lineage-routed serving fabric up");
    }
    let drained = mgr.drain();
    let served = drained.outputs["resources"].len();
    assert_eq!(
        served,
        trace.records.len(),
        "every query must drain under lineage routing"
    );
    println!("gate passed: {served} queries served under RoutingPolicy::Lineage");
}

// ---------------------------------------------------------------------
// SQ8 recall gate: quantized search over this trace's real embeddings.
// ---------------------------------------------------------------------

/// Recall floor the quantized index must hold against exact search.
const SQ8_RECALL_FLOOR: f64 = 0.95;

/// Build exact and SQ8 indexes over the corpus's actual embeddings and
/// fail the run if quantized recall@10 drops below the floor — the
/// serving-shaped regression gate for the quantization plane (property
/// tests bound the per-distance error; this checks end-to-end ranking
/// on real embedded SQL).
fn sq8_recall_gate(corpus: &TrainCorpus, embedder: &Arc<dyn Embedder>) {
    use querc_index::{simd, FlatIndex, Metric, Sq8Config, Sq8Index, VectorIndex};
    const K: usize = 10;

    let vectors: Vec<Vec<f32>> = corpus
        .records
        .iter()
        .map(|r| embedder.embed_sql(&r.sql))
        .collect();
    let flat = FlatIndex::from_rows(&vectors, Metric::Euclidean);
    let probes: Vec<&[f32]> = vectors.iter().step_by(7).map(Vec::as_slice).collect();

    let report = |tag: &str, ix: &dyn VectorIndex| {
        let mut total = 0.0;
        for q in &probes {
            let truth: Vec<u32> = flat.search(q, K).iter().map(|h| h.0).collect();
            let got = ix.search(q, K);
            total += got.iter().filter(|h| truth.contains(&h.0)).count() as f64
                / truth.len().max(1) as f64;
        }
        let recall = total / probes.len() as f64;
        let s = ix.stats();
        println!(
            "  {tag:<9} recall@{K}={recall:.3}  bytes {} ({:.2}× of flat)",
            s.resident_bytes,
            s.resident_bytes as f64 / flat.stats().resident_bytes as f64
        );
        assert!(
            recall >= SQ8_RECALL_FLOOR,
            "{tag}: quantized recall@{K} {recall:.3} fell below the {SQ8_RECALL_FLOOR} gate"
        );
    };

    println!(
        "\nsq8 recall gate: {} embedded templates, {} probes, kernel={}",
        vectors.len(),
        probes.len(),
        simd::kernel_name()
    );
    let reranked = Sq8Index::from_rows(
        &vectors,
        Metric::Euclidean,
        &Sq8Config {
            nlist: 0,
            rerank_factor: 4,
            ..Default::default()
        },
    );
    report("sq8", &reranked);
    let memory_parity = Sq8Index::from_rows(
        &vectors,
        Metric::Euclidean,
        &Sq8Config {
            nlist: Sq8Config::AUTO_NLIST,
            nprobe: 8,
            rerank_factor: 0,
            ..Default::default()
        },
    );
    report("ivf+sq8", &memory_parity);
    println!("gate passed (recall ≥ {SQ8_RECALL_FLOOR})");
}

// ---------------------------------------------------------------------
// QoS isolation gate: whale at 10× minnow aggregate volume.
// ---------------------------------------------------------------------

const QOS_APPS: [&str; 6] = [
    "audit",
    "errors",
    "recommend",
    "resources",
    "routing",
    "summarize",
];
const MINNOWS: usize = 8;
const PER_MINNOW: usize = 60;
const WHALE_TOTAL: usize = 10 * MINNOWS * PER_MINNOW;
/// Whale admissions before its zero-refill bucket runs dry — the rest
/// of its flood is `Rejected`, deterministically.
const WHALE_BURST: usize = 120;

fn register_six(mgr: &mut WorkloadManager, corpus: &TrainCorpus) {
    let shared: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(128, true));
    mgr.register(AuditApp::new(Arc::clone(&shared)).with_trees(20), corpus)
        .unwrap();
    mgr.register(ErrorsApp::new(Arc::clone(&shared)), corpus)
        .unwrap();
    mgr.register(
        RecommendApp::new(Arc::clone(&shared)).with_clusters(6),
        corpus,
    )
    .unwrap();
    mgr.register(ResourcesApp::new(Arc::clone(&shared)), corpus)
        .unwrap();
    mgr.register(RoutingApp::new(Arc::clone(&shared)), corpus)
        .unwrap();
    mgr.register(
        SummarizeApp::new(Arc::clone(&shared)).with_config(SummaryConfig {
            k: Some(8),
            ..Default::default()
        }),
        corpus,
    )
    .unwrap();
}

/// One scenario run: `PER_MINNOW` rounds of one query per minnow (apps
/// round-robin, so every minnow crosses all six), with ten whale
/// queries per minnow query interleaved when the whale is on.
fn qos_run(corpus: &TrainCorpus, shards: usize, with_whale: bool) -> ServiceDrain {
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
        shards_per_app: shards.max(1),
        batch: 16,
        queue_depth: 4096,
        qos: QosConfig {
            enabled: true,
            quantum: 4,
            ..Default::default()
        },
        ..Default::default()
    });
    register_six(&mut mgr, corpus);
    mgr.set_tenant_policy(
        "whale",
        TenantPolicy {
            weight: 1,
            rate: Some(RateLimit {
                rate_per_sec: 0.0,
                burst: WHALE_BURST as f64,
            }),
        },
    );
    let whale_per_round = WHALE_TOTAL / PER_MINNOW;
    let mut whale_i = 0usize;
    for round in 0..PER_MINNOW {
        for m in 0..MINNOWS {
            let app = QOS_APPS[(round + m) % QOS_APPS.len()];
            let mut lq = LabeledQuery::new(format!("select v from kv_store where k = {round}"));
            lq.set("account", format!("minnow{m:02}"));
            mgr.submit(app, lq)
                .unwrap_or_else(|e| panic!("minnow {m} shed in round {round}: {e}"));
        }
        if with_whale {
            for _ in 0..whale_per_round {
                let app = QOS_APPS[whale_i % QOS_APPS.len()];
                let mut lq =
                    LabeledQuery::new(format!("select v from kv_store where k = {whale_i}"));
                lq.set("account", "whale");
                whale_i += 1;
                match mgr.submit(app, lq) {
                    Ok(()) | Err(QuercError::Rejected { .. }) => {}
                    Err(other) => panic!("unexpected submit error: {other}"),
                }
            }
        }
    }
    mgr.drain()
}

fn worst_minnow_p99(drained: &ServiceDrain) -> u64 {
    (0..MINNOWS)
        .map(|m| drained.qos.tenants[&format!("minnow{m:02}")].latency.p99_us)
        .max()
        .unwrap()
}

fn qos_isolation_gate(corpus: &TrainCorpus, shards: usize) {
    let baseline = qos_run(corpus, shards, false);
    let p99_without = worst_minnow_p99(&baseline);
    let flooded = qos_run(corpus, shards, true);
    let p99_with = worst_minnow_p99(&flooded);
    let whale = &flooded.qos.tenants["whale"];
    println!(
        "\nqos isolation gate: {MINNOWS} minnows × {PER_MINNOW} queries, \
         whale at 10× their aggregate ({WHALE_TOTAL} offers)\n\
         worst minnow p99: {p99_without}µs alone, {p99_with}µs under the whale\n\
         whale: {} processed, {} rejected ({} rate-limited)",
        whale.processed,
        whale.rejected(),
        whale.rejected_rate_limited
    );
    for m in 0..MINNOWS {
        let snap = &flooded.qos.tenants[&format!("minnow{m:02}")];
        assert_eq!(
            (snap.processed, snap.rejected()),
            (PER_MINNOW as u64, 0),
            "minnow {m} must be served whole under the whale"
        );
    }
    assert_eq!(
        whale.rejected_rate_limited,
        (WHALE_TOTAL - WHALE_BURST) as u64,
        "whale overload must surface as Rejected"
    );
    assert!(
        p99_with <= 3 * p99_without + 10_000,
        "minnow p99 degraded more than 3x under the whale: \
         {p99_with}µs with vs {p99_without}µs without"
    );
    let out = format!(
        "{{\n  \"bench\": \"qos\",\n  \"unit\": \"us\",\n  \"results\": [\n    \
         {{\"minnows\": {MINNOWS}, \"per_minnow\": {PER_MINNOW}, \"whale_offers\": {WHALE_TOTAL}, \
         \"minnow_p99_us_whale_absent\": {p99_without}, \
         \"minnow_p99_us_whale_present\": {p99_with}, \
         \"whale_processed\": {}, \"whale_rejected\": {}}}\n  ]\n}}\n",
        whale.processed,
        whale.rejected()
    );
    let dest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_qos.json");
    std::fs::write(&dest, out).unwrap();
    println!(
        "gate passed (p99 ≤ 3× + 10ms slack); wrote {}",
        dest.display()
    );
}
