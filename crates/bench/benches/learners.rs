//! Labeler benchmarks: fit/predict costs for the classifiers behind the
//! Table 1/2 experiments, plus K-means on embedding-sized inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use querc_cluster::{kmeans, KMeansConfig};
use querc_learn::{Classifier, ForestConfig, RandomForest, SoftmaxRegression};
use querc_linalg::Pcg32;
use std::hint::black_box;

fn dataset(n: usize, d: usize, classes: u32, seed: u64) -> (Vec<Vec<f32>>, Vec<u32>) {
    let mut rng = Pcg32::new(seed);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let c = rng.below(classes);
        let mut v = vec![0.0f32; d];
        for (j, vj) in v.iter_mut().enumerate() {
            *vj = rng.normal() * 0.5 + if j as u32 % classes == c { 2.0 } else { 0.0 };
        }
        x.push(v);
        y.push(c);
    }
    (x, y)
}

fn bench_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("labeler_fit");
    g.sample_size(10);
    for n in [500usize, 2000] {
        let (x, y) = dataset(n, 48, 13, 1);
        g.bench_with_input(BenchmarkId::new("extra_trees_40", n), &n, |b, _| {
            b.iter(|| {
                let mut f = RandomForest::new(ForestConfig::extra_trees(40));
                f.fit(&x, &y, 13, &mut Pcg32::new(2));
                black_box(f)
            })
        });
        g.bench_with_input(BenchmarkId::new("softmax", n), &n, |b, _| {
            b.iter(|| {
                let mut m = SoftmaxRegression::default();
                m.fit(&x, &y, 13, &mut Pcg32::new(3));
                black_box(m)
            })
        });
    }
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (x, y) = dataset(2000, 48, 13, 4);
    let mut forest = RandomForest::new(ForestConfig::extra_trees(40));
    forest.fit(&x, &y, 13, &mut Pcg32::new(5));
    let probes = &x[..500];
    let mut g = c.benchmark_group("labeler_predict");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("extra_trees_40", |b| {
        b.iter(|| {
            for p in probes {
                black_box(forest.predict(p));
            }
        })
    });
    g.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut g = c.benchmark_group("kmeans_embeddings");
    g.sample_size(10);
    for n in [500usize, 2000] {
        let (x, _) = dataset(n, 48, 8, 6);
        g.bench_with_input(BenchmarkId::new("k20", n), &n, |b, _| {
            b.iter(|| {
                black_box(kmeans(
                    &x,
                    &KMeansConfig {
                        k: 20,
                        ..Default::default()
                    },
                    &mut Pcg32::new(7),
                ))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fit, bench_predict, bench_kmeans
}
criterion_main!(benches);
