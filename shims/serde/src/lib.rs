//! Offline stand-in for `serde` (the container has no crates.io access).
//!
//! Exposes the same import surface the workspace uses — `Serialize`,
//! `Deserialize`, `de::DeserializeOwned`, and the two derive macros — but
//! commits to a single wire format: JSON. `Serialize` writes JSON text
//! directly; `Deserialize` reads from a parsed [`json::Value`] tree. The
//! companion `serde_json` shim provides `to_string`/`from_str` on top.
//!
//! Floats are printed with Rust's shortest-round-trip `Display`, so
//! `f32`/`f64` survive a round trip bit-exactly (NaN/∞ are not valid
//! JSON and are rejected at parse time).

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use std::collections::{BTreeMap, HashMap};

/// Serialize `self` as JSON text appended to `out`.
pub trait Serialize {
    fn serialize_json(&self, out: &mut String);
}

/// Reconstruct `Self` from a parsed JSON value.
pub trait Deserialize: Sized {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error>;
}

pub mod de {
    //! Mirror of `serde::de` for the one bound the workspace imports.

    /// Owned deserialization — in this shim every `Deserialize` is owned.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

macro_rules! impl_integer {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                use std::fmt::Write as _;
                // Same text as `to_string` (both go through `Display`)
                // without the intermediate heap String per number.
                let _ = write!(out, "{self}");
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
                v.as_number()?.parse::<$t>().map_err(|e| {
                    json::Error::msg(format!("invalid {}: {e}", stringify!($t)))
                })
            }
        }
    )+};
}

impl_integer!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    use std::fmt::Write as _;
                    // Shortest-round-trip `Display`, appended in place.
                    let _ = write!(out, "{self}");
                } else {
                    // JSON has no NaN/∞; null round-trips to NaN.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
                if matches!(v, json::Value::Null) {
                    return Ok(<$t>::NAN);
                }
                v.as_number()?.parse::<$t>().map_err(|e| {
                    json::Error::msg(format!("invalid {}: {e}", stringify!($t)))
                })
            }
        }
    )+};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Bool(b) => Ok(*b),
            _ => Err(json::Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        json::escape_str(self, out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        json::escape_str(self, out);
    }
}

impl Deserialize for String {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        v.as_str().map(str::to_string)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(x) => x.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_json(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, x) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            x.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        v.as_array()?.iter().map(T::deserialize_json).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, x) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            x.serialize_json(out);
        }
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        let arr = v.as_array()?;
        if arr.len() != 2 {
            return Err(json::Error::msg("expected 2-element array"));
        }
        Ok((A::deserialize_json(&arr[0])?, B::deserialize_json(&arr[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(',');
        self.2.serialize_json(out);
        out.push(']');
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        let arr = v.as_array()?;
        if arr.len() != 3 {
            return Err(json::Error::msg("expected 3-element array"));
        }
        Ok((
            A::deserialize_json(&arr[0])?,
            B::deserialize_json(&arr[1])?,
            C::deserialize_json(&arr[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_json(&self, out: &mut String) {
        // Deterministic key order keeps serialized models diffable.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        out.push('{');
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_str(k, out);
            out.push(':');
            self[*k].serialize_json(out);
        }
        out.push('}');
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        v.as_object()?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize_json(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, val)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_str(k, out);
            out.push(':');
            val.serialize_json(out);
        }
        out.push('}');
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        v.as_object()?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize_json(val)?)))
            .collect()
    }
}
