//! Token model shared by the lexer, normalizer and parser.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// A reserved word in the active dialect (`select`, `join`, …).
    Keyword,
    /// A bare identifier (table, column, alias, function name).
    Ident,
    /// A quoted identifier — `"x"`, `` `x` `` or `[x]` depending on dialect.
    QuotedIdent,
    /// Numeric literal (integer, decimal or scientific).
    Number,
    /// Single-quoted string literal (quote-doubling handled).
    StringLit,
    /// Operator such as `=`, `<>`, `<=`, `||`, `::`.
    Operator,
    /// Single punctuation character: `( ) , ; .`
    Punct,
    /// Bind parameter: `?`, `:name`, `$1`, `%s`, `@p`.
    Param,
    /// `-- …`, `/* … */` or `# …` comment (kept only when requested).
    Comment,
    /// Any byte sequence the lexer could not classify. Lexing never fails.
    Other,
}

/// One lexed token: its class and the exact source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class assigned by the lexer.
    pub kind: TokenKind,
    /// Raw text as it appeared in the query (quotes included for quoted
    /// identifiers and string literals).
    pub text: String,
}

impl Token {
    /// Construct a token from its class and source text.
    pub fn new(kind: TokenKind, text: impl Into<String>) -> Self {
        Token {
            kind,
            text: text.into(),
        }
    }

    /// Case-normalized view: keywords and identifiers lowercase, everything
    /// else verbatim.
    pub fn folded(&self) -> String {
        match self.kind {
            TokenKind::Keyword | TokenKind::Ident => self.text.to_ascii_lowercase(),
            _ => self.text.clone(),
        }
    }

    /// For quoted identifiers, the name with quoting stripped and case
    /// preserved; for bare identifiers the lowercased name; otherwise the
    /// raw text.
    pub fn ident_name(&self) -> String {
        match self.kind {
            TokenKind::Ident => self.text.to_ascii_lowercase(),
            TokenKind::QuotedIdent => {
                // Strip the opening quote, then the closing quote only if
                // it is actually there — an unterminated quoted identifier
                // (which the total lexer happily emits) may end mid-name,
                // possibly on a multi-byte character, and byte-slicing it
                // would panic.
                let t = self.text.as_str();
                let Some(open) = t.chars().next() else {
                    return String::new();
                };
                let close = if open == '[' { ']' } else { open };
                let body = &t[open.len_utf8()..];
                let inner = body.strip_suffix(close).unwrap_or(body);
                match open {
                    '"' => inner.replace("\"\"", "\""),
                    '`' => inner.replace("``", "`"),
                    _ => inner.to_string(),
                }
            }
            _ => self.text.clone(),
        }
    }

    /// True for keyword tokens matching `kw` case-insensitively.
    pub fn is_kw(&self, kw: &str) -> bool {
        self.kind == TokenKind::Keyword && self.text.eq_ignore_ascii_case(kw)
    }

    /// True for punctuation tokens with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// True for operator tokens with exactly this text.
    pub fn is_op(&self, op: &str) -> bool {
        self.kind == TokenKind::Operator && self.text == op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folded_lowercases_words_only() {
        assert_eq!(Token::new(TokenKind::Keyword, "SELECT").folded(), "select");
        assert_eq!(
            Token::new(TokenKind::Ident, "LineItem").folded(),
            "lineitem"
        );
        assert_eq!(
            Token::new(TokenKind::StringLit, "'ASIA'").folded(),
            "'ASIA'"
        );
    }

    #[test]
    fn ident_name_strips_quoting() {
        assert_eq!(
            Token::new(TokenKind::QuotedIdent, "\"My Table\"").ident_name(),
            "My Table"
        );
        assert_eq!(
            Token::new(TokenKind::QuotedIdent, "`col`").ident_name(),
            "col"
        );
        assert_eq!(
            Token::new(TokenKind::QuotedIdent, "[dbo]").ident_name(),
            "dbo"
        );
        assert_eq!(
            Token::new(TokenKind::QuotedIdent, "\"a\"\"b\"").ident_name(),
            "a\"b"
        );
    }

    #[test]
    fn predicates() {
        let t = Token::new(TokenKind::Keyword, "Select");
        assert!(t.is_kw("SELECT"));
        assert!(!t.is_kw("FROM"));
        assert!(Token::new(TokenKind::Punct, "(").is_punct('('));
        assert!(Token::new(TokenKind::Operator, "<=").is_op("<="));
    }
}
