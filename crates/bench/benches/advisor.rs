//! Database-simulator benchmarks: plan costing throughput (the unit of
//! what-if work) and full advisor runs at the Fig 3 budget extremes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use querc_dbsim::{plan_query, Advisor, AdvisorConfig, Catalog, Index};
use querc_sql::{parse_query, Dialect};
use querc_workloads::TpchWorkload;
use std::hint::black_box;

fn bench_plan_query(c: &mut Criterion) {
    let w = TpchWorkload::generate(2, 7);
    let catalog = Catalog::tpch_sf1();
    let shapes: Vec<_> = w
        .queries
        .iter()
        .map(|q| parse_query(&q.sql, Dialect::Generic))
        .collect();
    let indexes = [
        Index::new("lineitem", &["l_shipdate"]),
        Index::new("orders", &["o_orderdate"]),
        Index::new("lineitem", &["l_orderkey"]),
    ];
    let mut g = c.benchmark_group("optimizer");
    g.throughput(Throughput::Elements(shapes.len() as u64));
    g.bench_function("plan_no_indexes", |b| {
        b.iter(|| {
            for s in &shapes {
                black_box(plan_query(s, &catalog, &[]));
            }
        })
    });
    g.bench_function("plan_with_indexes", |b| {
        b.iter(|| {
            for s in &shapes {
                black_box(plan_query(s, &catalog, &indexes));
            }
        })
    });
    g.finish();
}

fn bench_advisor(c: &mut Criterion) {
    let catalog = Catalog::tpch_sf1();
    let advisor = Advisor::new(&catalog, AdvisorConfig::default());
    let w = TpchWorkload::generate(10, 13);
    let sqls: Vec<String> = w.queries.into_iter().map(|q| q.sql).collect();
    let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
    let mut g = c.benchmark_group("advisor_recommend");
    g.sample_size(10);
    for (label, budget) in [("3min", 180.0f64), ("10min", 600.0)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &budget, |b, &budget| {
            b.iter(|| black_box(advisor.recommend(&refs, budget)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_plan_query, bench_advisor
}
criterion_main!(benches);
