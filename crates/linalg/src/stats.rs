//! Small statistics helpers used across the workspace.

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population variance; 0 for inputs shorter than 2.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f32>() / xs.len() as f32
}

/// Standard deviation (population).
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Index of the maximum element; `None` for empty input. Ties go to the
/// first maximum, NaNs are skipped.
pub fn argmax(xs: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element; `None` for empty or all-NaN input.
/// Delegates to [`crate::ops::argmin`] (the `total_cmp` scan shared
/// with the vector-index plane), then filters its all-NaN sentinel —
/// one argmin implementation across the crate, two NaN policies.
pub fn argmin(xs: &[f32]) -> Option<usize> {
    crate::ops::argmin(xs).filter(|&i| !xs[i].is_nan())
}

/// p-th percentile (0..=100) by linear interpolation on the sorted data.
/// Returns 0 for empty input.
pub fn percentile(xs: &[f32], p: f32) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f32;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f32;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Median (50th percentile).
pub fn median(xs: &[f32]) -> f32 {
    percentile(xs, 50.0)
}

/// Pearson correlation of two equal-length slices; 0 when degenerate.
pub fn pearson(xs: &[f32], ys: &[f32]) -> f32 {
    assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..xs.len() {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((variance(&xs) - 4.0).abs() < 1e-6);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(argmax(&[]), None);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn argmax_argmin() {
        let xs = [1.0, 5.0, 3.0, 5.0];
        assert_eq!(argmax(&xs), Some(1)); // first of the tie
        assert_eq!(argmin(&xs), Some(0));
        assert_eq!(argmax(&[f32::NAN, 2.0]), Some(1)); // NaN skipped
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-6);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-6);
        assert!((median(&xs) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-5);
        assert!((pearson(&xs, &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-5);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0]), 0.0);
    }
}
