//! Vector kernels shared by the embedding models and classifiers.
//!
//! The reduction kernels (`dot`, `sq_dist`, and everything built on
//! them: `norm`, `cosine`, `dist`) are **lane-strided**: element `i`
//! accumulates into lane `i % LANES` and the eight lanes collapse
//! through the fixed [`lane_sum`] tree. This is the workspace's
//! *canonical* floating-point summation order — `querc_index::simd`
//! implements the same kernels with AVX2 intrinsics (one lane per
//! register slot, the identical reduction tree) and is bit-for-bit
//! interchangeable with these reference loops, which is what lets the
//! index plane dispatch between scalar and SIMD at runtime without the
//! choice ever being observable in results. Change a kernel here and
//! the SIMD twin (and its parity suite) must change with it.

/// Accumulator lanes of the lane-strided reduction kernels: 8 `f32`s =
/// one AVX2 register, so the scalar loops and the SIMD kernels share
/// one summation order.
pub const LANES: usize = 8;

/// Collapse the eight accumulator lanes in the canonical order: 128-bit
/// halves first (`l[k] + l[k+4]`), then pairwise — exactly the
/// extract/movehl/shuffle reduction an AVX2 kernel performs, so scalar
/// and SIMD totals agree bit for bit.
#[inline]
pub fn lane_sum(l: [f32; LANES]) -> f32 {
    let s0 = l[0] + l[4];
    let s1 = l[1] + l[5];
    let s2 = l[2] + l[6];
    let s3 = l[3] + l[7];
    (s0 + s2) + (s1 + s3)
}

/// Dot product (lane-strided — see the module docs). Panics in debug
/// builds if lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut l = [0.0f32; LANES];
    for (ca, cb) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)) {
        for k in 0..LANES {
            l[k] += ca[k] * cb[k];
        }
    }
    let head = a.len() - a.len() % LANES;
    for k in 0..a.len() - head {
        l[k] += a[head + k] * b[head + k];
    }
    lane_sum(l)
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for i in 0..x.len() {
        y[i] += alpha * x[i];
    }
}

/// Elementwise in-place scale: `x *= alpha`.
#[inline]
pub fn scale(alpha: f32, x: &mut [f32]) {
    for v in x {
        *v *= alpha;
    }
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(x: &[f32]) -> f32 {
    dot(x, x).sqrt()
}

/// Squared Euclidean distance between two vectors (lane-strided — see
/// the module docs).
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut l = [0.0f32; LANES];
    for (ca, cb) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)) {
        for k in 0..LANES {
            let d = ca[k] - cb[k];
            l[k] += d * d;
        }
    }
    let head = a.len() - a.len() % LANES;
    for k in 0..a.len() - head {
        let d = a[head + k] - b[head + k];
        l[k] += d * d;
    }
    lane_sum(l)
}

/// Euclidean distance.
#[inline]
pub fn dist(a: &[f32], b: &[f32]) -> f32 {
    sq_dist(a, b).sqrt()
}

/// Cosine similarity in `[-1, 1]`; zero vectors are treated as
/// orthogonal to everything (similarity exactly `0.0`, never NaN).
///
/// This is the *single* cosine definition in the workspace —
/// `querc_index::Metric::Cosine` and every embedder test route through
/// it (as [`cosine_dist`]), and the SIMD kernels in `querc_index::simd`
/// are bit-for-bit twins of this exact sequence: `norm(a)`, `norm(b)`,
/// `dot(a, b)`, one divide, one clamp.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Cosine **distance** `1 − cosine(a, b)`, in `[0, 2]` — the canonical
/// form the index plane scans with. Zero vectors (either side, or
/// both) are at distance exactly `1.0` from everything, never NaN;
/// denormal components behave like any other finite value.
#[inline]
pub fn cosine_dist(a: &[f32], b: &[f32]) -> f32 {
    1.0 - cosine(a, b)
}

/// Normalize `x` to unit L2 norm in place; leaves zero vectors untouched.
pub fn normalize(x: &mut [f32]) {
    let n = norm(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Hyperbolic tangent (thin wrapper so models read uniformly).
#[inline]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// In-place numerically stable softmax. No-op on empty input.
pub fn softmax(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        scale(1.0 / sum, x);
    }
}

/// Log-sum-exp of a slice, stable.
pub fn log_sum_exp(x: &[f32]) -> f32 {
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if max.is_infinite() {
        return max;
    }
    max + x.iter().map(|v| (v - max).exp()).sum::<f32>().ln()
}

/// Clip every component of `x` into `[-c, c]` (gradient clipping).
pub fn clip(x: &mut [f32], c: f32) {
    debug_assert!(c > 0.0);
    for v in x {
        *v = v.clamp(-c, c);
    }
}

/// Rescale `x` so its global L2 norm is at most `max_norm`.
pub fn clip_norm(x: &mut [f32], max_norm: f32) {
    let n = norm(x);
    if n > max_norm && n > 0.0 {
        scale(max_norm / n, x);
    }
}

/// Index of the smallest value under the `total_cmp` total order —
/// ties resolve to the lowest index, NaN ranks after every real number
/// so it can never win while a finite value exists. `None` on empty
/// input. The shared argmin of every nearest-centroid / nearest-row
/// scan in the workspace.
pub fn argmin(values: &[f32]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, v) in values.iter().enumerate() {
        match best {
            None => best = Some(i),
            Some(b) if v.total_cmp(&values[b]) == std::cmp::Ordering::Less => best = Some(i),
            Some(_) => {}
        }
    }
    best
}

/// Elementwise mean of several equal-length vectors.
///
/// Panics on empty input or ragged rows.
pub fn mean_of(vecs: &[&[f32]]) -> Vec<f32> {
    assert!(!vecs.is_empty());
    let dim = vecs[0].len();
    let mut out = vec![0.0; dim];
    for v in vecs {
        axpy(1.0, v, &mut out);
    }
    scale(1.0 / vecs.len() as f32, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy() {
        let a = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        assert_eq!(dot(&a, &y), 6.0);
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        assert!((cosine(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 5.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-3.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut x = [3.0, 4.0];
        normalize(&mut x);
        assert!((norm(&x) - 1.0).abs() < 1e-6);
        let mut z = [0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        // Symmetry: sigma(-x) = 1 - sigma(x)
        for x in [-3.0f32, -0.5, 0.7, 2.0] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-6);
        }
        // No NaN at extremes.
        assert!(sigmoid(1e10).is_finite());
        assert!(sigmoid(-1e10).is_finite());
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let mut a = [1.0, 2.0, 3.0];
        let mut b = [1001.0, 1002.0, 1003.0];
        softmax(&mut a);
        softmax(&mut b);
        assert!((a.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
        assert!(a[2] > a[1] && a[1] > a[0]);
    }

    #[test]
    fn log_sum_exp_stable() {
        let x = [1000.0f32, 1000.0];
        let lse = log_sum_exp(&x);
        assert!((lse - (1000.0 + 2.0f32.ln())).abs() < 1e-3);
    }

    #[test]
    fn clip_norm_caps_but_preserves_direction() {
        let mut x = [3.0, 4.0];
        clip_norm(&mut x, 1.0);
        assert!((norm(&x) - 1.0).abs() < 1e-6);
        assert!((x[1] / x[0] - 4.0 / 3.0).abs() < 1e-5);
        let mut small = [0.1, 0.1];
        let before = small;
        clip_norm(&mut small, 1.0);
        assert_eq!(small, before);
    }

    #[test]
    fn mean_of_vectors() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        assert_eq!(mean_of(&[&a, &b]), vec![2.0, 3.0]);
    }

    #[test]
    fn distances() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn argmin_total_order() {
        assert_eq!(argmin(&[]), None);
        assert_eq!(argmin(&[3.0]), Some(0));
        assert_eq!(
            argmin(&[2.0, 1.0, 1.0, 5.0]),
            Some(1),
            "ties → lowest index"
        );
        assert_eq!(argmin(&[f32::NAN, 7.0]), Some(1), "NaN never beats a real");
        assert_eq!(
            argmin(&[f32::NAN, f32::NAN]),
            Some(0),
            "all-NaN is still deterministic"
        );
        assert_eq!(argmin(&[f32::INFINITY, 1e30]), Some(1));
    }
}
