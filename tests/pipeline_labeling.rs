//! Integration: the §5.2 labeling pipeline across crates.
//!
//! SnowCloud generation → embedding → classifier training → audits,
//! plus the streaming path: Qworker labeling into the training module and
//! a deploy/serve round-trip through the registry.

use crossbeam::channel::unbounded;
use querc::apps::audit::{per_account_accuracy, SecurityAuditor};
use querc::{
    EmbedderKind, LabeledQuery, ModelRegistry, Qworker, QworkerMode, TrainingConfig, TrainingModule,
};
use querc_embed::{LstmAutoencoder, LstmConfig, VocabConfig};
use querc_linalg::Pcg32;
use querc_workloads::record::split_holdout;
use querc_workloads::{SnowCloud, SnowCloudConfig};
use std::sync::Arc;

fn small_lstm(corpus: &[Vec<String>]) -> LstmAutoencoder {
    LstmAutoencoder::train(
        corpus,
        LstmConfig {
            embed_dim: 20,
            hidden: 28,
            max_len: 64,
            epochs: 2,
            vocab: VocabConfig {
                min_count: 2,
                max_size: 8000,
                hash_buckets: 256,
            },
            ..Default::default()
        },
    )
}

#[test]
fn account_labeling_is_strong_and_repetitive_users_are_hard() {
    // Enough volume that tail accounts hold several training queries per
    // user (the same scale sensitivity Table 2 documents).
    let wl = SnowCloud::generate(&SnowCloudConfig::paper_table2(0.06, 4242));
    let mut rng = Pcg32::new(8);
    let (train, test) = split_holdout(&wl.records, 0.3, &mut rng);
    let corpus: Vec<Vec<String>> = train.iter().map(|r| r.tokens()).collect();
    let embedder: Arc<dyn querc_embed::Embedder> = Arc::new(small_lstm(&corpus));

    // Account prediction via a relabeled auditor (account as the "user").
    let mut account_records = train.clone();
    for r in &mut account_records {
        r.user = r.account.clone();
    }
    let account_clf = SecurityAuditor::train(&account_records, Arc::clone(&embedder), 30, 5);
    let mut hits = 0;
    for r in &test {
        if !account_clf.audit(&r.sql, &r.account).flagged {
            hits += 1;
        }
    }
    let account_acc = hits as f64 / test.len() as f64;
    assert!(
        account_acc > 0.75,
        "account labeling should be strong, got {account_acc:.2}"
    );

    // User prediction: repetitive accounts must sit clearly below the
    // clean tail accounts.
    let auditor = SecurityAuditor::train(&train, Arc::clone(&embedder), 30, 6);
    let rows = per_account_accuracy(&auditor, &test);
    let rep: Vec<f64> = rows
        .iter()
        .filter(|r| matches!(r.account.as_str(), "acct00" | "acct01"))
        .map(|r| r.accuracy)
        .collect();
    let tail: Vec<f64> = rows
        .iter()
        .filter(|r| !matches!(r.account.as_str(), "acct00" | "acct01" | "acct02"))
        .map(|r| r.accuracy)
        .collect();
    let rep_mean = rep.iter().sum::<f64>() / rep.len().max(1) as f64;
    let tail_mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
    assert!(
        tail_mean > rep_mean,
        "clean accounts ({tail_mean:.2}) must beat repetitive ones ({rep_mean:.2})"
    );
}

#[test]
fn stream_label_train_deploy_roundtrip() {
    // Queries stream through a Qworker into the training module; a
    // classifier is trained, deployed and then used by a fresh Qworker.
    let (in_tx, in_rx) = unbounded();
    let (db_tx, _db_keep) = unbounded();
    let (tr_tx, tr_rx) = unbounded();

    for i in 0..40 {
        let mut lq = if i % 2 == 0 {
            LabeledQuery::new(format!("select spend from marketing_roi where week = {i}"))
        } else {
            LabeledQuery::new(format!("insert into iot_readings values ({i}, {i})"))
        };
        lq.set(
            "pipeline",
            if i % 2 == 0 { "reporting" } else { "telemetry" },
        );
        in_tx.send(lq).unwrap();
    }
    drop(in_tx);

    let ingest_worker = Qworker::new("app-A", vec![], QworkerMode::Forked);
    let n = ingest_worker.run(in_rx, db_tx, tr_tx);
    assert_eq!(n, 40);

    let mut trainer = TrainingModule::new(TrainingConfig::default());
    assert_eq!(trainer.ingest_stream(&tr_rx), 40);
    let embedder = trainer.train_embedder(&EmbedderKind::BagOfTokens { dim: 64 });
    let registry = ModelRegistry::new();
    trainer
        .train_and_deploy(&registry, &embedder, "pipeline")
        .expect("label present");

    let clf = registry.get("pipeline").expect("deployed");
    let serving = Qworker::new("app-A", vec![clf], QworkerMode::Inline);
    let labeled = serving.process(LabeledQuery::new(
        "select spend from marketing_roi where week = 99",
    ));
    assert_eq!(labeled.get("predicted_pipeline"), Some("reporting"));
}

#[test]
fn transfer_embedder_labels_a_different_workload() {
    // Train the embedder on one service's workload, use it for labeling
    // on an entirely different tenant mix (the paper's transfer story).
    let pretrain = SnowCloud::generate(&SnowCloudConfig::pretrain(8, 60, 71));
    let embedder: Arc<dyn querc_embed::Embedder> = Arc::new(small_lstm(&pretrain.token_corpus()));

    let target = SnowCloud::generate(&SnowCloudConfig::paper_table2(0.01, 99));
    let mut rng = Pcg32::new(12);
    let (train, test) = split_holdout(&target.records, 0.3, &mut rng);
    let mut account_records = train.clone();
    for r in &mut account_records {
        r.user = r.account.clone();
    }
    let clf = SecurityAuditor::train(&account_records, embedder, 30, 13);
    let hits = test
        .iter()
        .filter(|r| !clf.audit(&r.sql, &r.account).flagged)
        .count();
    let acc = hits as f64 / test.len() as f64;
    // 13 accounts → chance ≈ 18% by majority class; transfer must do far
    // better even though no target-tenant query was seen in pre-training.
    assert!(acc > 0.5, "transfer account labeling {acc:.2}");
}
