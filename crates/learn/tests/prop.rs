//! Property tests: classifier outputs are always well-formed.

use proptest::prelude::*;
use querc_learn::{
    Classifier, ForestConfig, Knn, KnnBackend, KnnMetric, RandomForest, SoftmaxRegression,
};
use querc_linalg::Pcg32;

fn dataset_strategy() -> impl Strategy<Value = (Vec<Vec<f32>>, Vec<u32>)> {
    (2usize..40, 1usize..6, 2u32..5).prop_flat_map(|(n, d, classes)| {
        (
            prop::collection::vec(prop::collection::vec(-10.0f32..10.0, d..=d), n..=n),
            prop::collection::vec(0u32..classes, n..=n),
            Just(classes),
        )
            .prop_map(|(x, mut y, classes)| {
                // Ensure every label < classes and at least class 0 occurs.
                y[0] = 0;
                let _ = classes;
                (x, y)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forest predictions always land inside the label space and proba is
    /// a distribution, for arbitrary data.
    #[test]
    fn forest_outputs_wellformed((x, y) in dataset_strategy(), seed in any::<u64>()) {
        let n_classes = (*y.iter().max().unwrap() + 1) as usize;
        let mut f = RandomForest::new(ForestConfig::extra_trees(5));
        f.fit(&x, &y, n_classes, &mut Pcg32::new(seed));
        for probe in x.iter().take(8) {
            let c = f.predict(probe);
            prop_assert!((c as usize) < n_classes);
            let p = f.predict_proba(probe, n_classes);
            let sum: f32 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-3, "proba sum {sum}");
        }
    }

    /// Training twice with one seed gives identical predictions.
    #[test]
    fn forest_deterministic((x, y) in dataset_strategy(), seed in any::<u64>()) {
        let n_classes = (*y.iter().max().unwrap() + 1) as usize;
        let mut a = RandomForest::new(ForestConfig::extra_trees(5));
        let mut b = RandomForest::new(ForestConfig::extra_trees(5));
        a.fit(&x, &y, n_classes, &mut Pcg32::new(seed));
        b.fit(&x, &y, n_classes, &mut Pcg32::new(seed));
        for probe in x.iter().take(8) {
            prop_assert_eq!(a.predict(probe), b.predict(probe));
        }
    }

    /// Softmax regression's proba is a distribution on arbitrary inputs.
    #[test]
    fn softmax_regression_wellformed((x, y) in dataset_strategy(), seed in any::<u64>()) {
        let n_classes = (*y.iter().max().unwrap() + 1) as usize;
        let mut m = SoftmaxRegression::new(5, 0.1, 1e-4);
        m.fit(&x, &y, n_classes, &mut Pcg32::new(seed));
        let p = m.proba(&x[0]);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-3);
    }

    /// Tie-breaking determinism: duplicate every training point (forcing
    /// equal-distance neighbors) and conflict their labels (forcing
    /// equal-vote classes). Two independently fitted kNNs must still
    /// agree on every query, across runs AND across the exact / IVF
    /// backends — the `(distance, id)` total order plus the lower-class-
    /// id vote rule leave nothing to chance.
    #[test]
    fn knn_ties_resolve_identically_across_runs_and_backends(
        (x, y) in dataset_strategy(),
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let n_classes = (*y.iter().max().unwrap() + 1) as usize;
        // Duplicated rows with rotated labels: maximal tie pressure.
        let mut xx = x.clone();
        xx.extend(x.iter().cloned());
        let mut yy = y.clone();
        yy.extend(y.iter().map(|&c| (c + 1) % n_classes as u32));

        let fit = |backend: KnnBackend, seed: u64| {
            let mut m = Knn::new(k, KnnMetric::Euclidean).with_backend(backend);
            m.fit(&xx, &yy, n_classes, &mut Pcg32::new(seed));
            m
        };
        let full_probe = KnnBackend::Ivf { nlist: 4, nprobe: 4 };
        let a = fit(KnnBackend::Exact, seed);
        let b = fit(KnnBackend::Exact, seed ^ 0xdead);
        let c = fit(full_probe, seed);
        let d = fit(full_probe, seed ^ 0xbeef);
        for q in x.iter().take(8) {
            let p = a.predict(q);
            prop_assert!((p as usize) < n_classes);
            prop_assert_eq!(p, b.predict(q)); // exact backend must ignore the RNG
            prop_assert_eq!(p, c.predict(q)); // full-probe IVF must equal exact
            prop_assert_eq!(p, d.predict(q)); // IVF must ignore the fit RNG too
        }
        // The batched path is the single path, verbatim.
        let queries: Vec<Vec<f32>> = x.iter().take(8).cloned().collect();
        let batched = a.predict_batch(&queries);
        for (q, &p) in queries.iter().zip(&batched) {
            prop_assert_eq!(p, a.predict(q));
        }
    }
}
