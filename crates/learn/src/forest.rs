//! Ensembles of randomized decision trees.
//!
//! `RandomForest` covers both classical random forests (bootstrap + best
//! splits on feature subsets) and extremely-randomized trees (full sample,
//! random thresholds) via [`ForestConfig`]. The paper's §5.2 classifier
//! ("randomized decision trees") corresponds to [`ForestConfig::extra_trees`].

use crate::state::{bad_state, ClassifierState, ForestState};
use crate::tree::{DecisionTree, SplitStrategy, TreeConfig};
use crate::{Classifier, LearnError};
use querc_linalg::{ComputePool, Pcg32};

/// Forest hyperparameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    pub n_trees: usize,
    pub tree: TreeConfig,
    /// Sample each tree's training set with replacement.
    pub bootstrap: bool,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 50,
            tree: TreeConfig {
                max_features: None, // set per-fit to sqrt(d) when None
                ..Default::default()
            },
            bootstrap: true,
        }
    }
}

impl ForestConfig {
    /// Extremely-randomized trees: random thresholds, no bootstrap — the
    /// configuration used by the labeling experiments.
    pub fn extra_trees(n_trees: usize) -> Self {
        ForestConfig {
            n_trees,
            tree: TreeConfig {
                strategy: SplitStrategy::Random,
                max_features: None,
                ..Default::default()
            },
            bootstrap: false,
        }
    }
}

/// A trained forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    cfg: ForestConfig,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    pub fn new(cfg: ForestConfig) -> Self {
        RandomForest {
            cfg,
            trees: Vec::new(),
            n_classes: 0,
        }
    }

    /// Number of trained trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Snapshot the fitted ensemble as a [`ForestState`].
    pub fn to_state(&self) -> ForestState {
        ForestState {
            n_classes: self.n_classes,
            trees: self.trees.iter().map(DecisionTree::to_state).collect(),
        }
    }

    /// Rebuild an inference-ready forest from a snapshot; each member
    /// tree is validated by [`DecisionTree::from_state`], and every
    /// tree must agree with the forest's class count. Restored forests
    /// carry a default [`ForestConfig`] (only `fit` reads it).
    pub fn from_state(state: ForestState) -> Result<RandomForest, LearnError> {
        let trees = state
            .trees
            .into_iter()
            .enumerate()
            .map(|(i, ts)| {
                if ts.n_classes != state.n_classes {
                    return Err(bad_state(format!(
                        "tree {i} fitted for {} classes in a {}-class forest",
                        ts.n_classes, state.n_classes
                    )));
                }
                DecisionTree::from_state(ts)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RandomForest {
            cfg: ForestConfig::default(),
            trees,
            n_classes: state.n_classes,
        })
    }

    /// Mean class-probability vector across trees.
    pub fn proba(&self, x: &[f32]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.n_classes.max(1)];
        for t in &self.trees {
            let p = t.predict_proba(x, self.n_classes);
            for (a, v) in acc.iter_mut().zip(p) {
                *a += v;
            }
        }
        if !self.trees.is_empty() {
            let inv = 1.0 / self.trees.len() as f32;
            for a in &mut acc {
                *a *= inv;
            }
        }
        acc
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &[Vec<f32>], y: &[u32], n_classes: usize, rng: &mut Pcg32) {
        assert_eq!(x.len(), y.len());
        self.trees.clear();
        self.n_classes = n_classes;
        if x.is_empty() {
            return;
        }
        let d = x[0].len();
        // Default feature subset: √d, the standard forest heuristic.
        let mut tree_cfg = self.cfg.tree.clone();
        if tree_cfg.max_features.is_none() {
            tree_cfg.max_features = Some(((d as f32).sqrt().ceil() as usize).max(1));
        }
        // Pre-draw every tree's RNG from the parent sequentially (split
        // mutates the parent), then fit the independent trees across the
        // compute pool. `map` returns trees in index order, so the
        // ensemble is bit-identical to the sequential loop at any
        // thread count.
        let tree_rngs: Vec<Pcg32> = (0..self.cfg.n_trees)
            .map(|t| rng.split(t as u64 + 1))
            .collect();
        self.trees = ComputePool::current().map(self.cfg.n_trees, |t| {
            let mut tree_rng = tree_rngs[t].clone();
            let mut tree = DecisionTree::new(tree_cfg.clone());
            if self.cfg.bootstrap {
                let idx: Vec<usize> = (0..x.len())
                    .map(|_| tree_rng.below_usize(x.len()))
                    .collect();
                let bx: Vec<Vec<f32>> = idx.iter().map(|&i| x[i].clone()).collect();
                let by: Vec<u32> = idx.iter().map(|&i| y[i]).collect();
                tree.fit(&bx, &by, n_classes, &mut tree_rng);
            } else {
                tree.fit(x, y, n_classes, &mut tree_rng);
            }
            tree
        });
    }

    fn predict(&self, x: &[f32]) -> u32 {
        let p = self.proba(x);
        querc_linalg::stats::argmax(&p).unwrap_or(0) as u32
    }

    fn predict_proba(&self, x: &[f32], n_classes: usize) -> Vec<f32> {
        let mut p = self.proba(x);
        p.resize(n_classes, 0.0);
        p
    }

    fn export_state(&self) -> Option<ClassifierState> {
        Some(ClassifierState::Forest(self.to_state()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_blobs(seed: u64, n_per: usize) -> (Vec<Vec<f32>>, Vec<u32>) {
        let mut rng = Pcg32::new(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        let centers = [(0.0f32, 0.0f32), (4.0, 4.0), (0.0, 4.0), (4.0, 0.0)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                x.push(vec![cx + rng.normal(), cy + rng.normal()]);
                y.push(c as u32);
            }
        }
        (x, y)
    }

    #[test]
    fn forest_beats_chance_strongly_on_blobs() {
        let (x, y) = noisy_blobs(1, 60);
        let (tx, ty) = noisy_blobs(2, 25);
        let mut forest = RandomForest::new(ForestConfig::extra_trees(30));
        forest.fit(&x, &y, 4, &mut Pcg32::new(3));
        let acc = forest
            .predict_batch(&tx)
            .iter()
            .zip(&ty)
            .filter(|(p, t)| p == t)
            .count() as f32
            / ty.len() as f32;
        assert!(acc > 0.85, "held-out accuracy {acc}");
    }

    #[test]
    fn bootstrap_forest_works_too() {
        let (x, y) = noisy_blobs(4, 60);
        let mut forest = RandomForest::new(ForestConfig {
            n_trees: 20,
            bootstrap: true,
            ..Default::default()
        });
        forest.fit(&x, &y, 4, &mut Pcg32::new(5));
        let acc = forest
            .predict_batch(&x)
            .iter()
            .zip(&y)
            .filter(|(p, t)| p == t)
            .count() as f32
            / y.len() as f32;
        assert!(acc > 0.9, "training accuracy {acc}");
    }

    #[test]
    fn proba_is_a_distribution() {
        let (x, y) = noisy_blobs(6, 30);
        let mut forest = RandomForest::new(ForestConfig::extra_trees(10));
        forest.fit(&x, &y, 4, &mut Pcg32::new(7));
        let p = forest.proba(&[1.5, 1.5]);
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = noisy_blobs(8, 40);
        let mut f1 = RandomForest::new(ForestConfig::extra_trees(15));
        let mut f2 = RandomForest::new(ForestConfig::extra_trees(15));
        f1.fit(&x, &y, 4, &mut Pcg32::new(9));
        f2.fit(&x, &y, 4, &mut Pcg32::new(9));
        for probe in [[0.5f32, 0.5], [2.5, 2.5], [0.0, 3.0]] {
            assert_eq!(f1.predict(&probe), f2.predict(&probe));
        }
    }

    #[test]
    fn more_trees_do_not_hurt() {
        let (x, y) = noisy_blobs(10, 50);
        let (tx, ty) = noisy_blobs(11, 30);
        let acc = |n: usize| {
            let mut f = RandomForest::new(ForestConfig::extra_trees(n));
            f.fit(&x, &y, 4, &mut Pcg32::new(12));
            f.predict_batch(&tx)
                .iter()
                .zip(&ty)
                .filter(|(p, t)| p == t)
                .count() as f32
                / ty.len() as f32
        };
        // Allow noise, but a 40-tree forest must not collapse vs 3 trees.
        assert!(acc(40) + 0.05 >= acc(3));
    }

    #[test]
    fn empty_training_set_is_harmless() {
        let mut forest = RandomForest::new(ForestConfig::extra_trees(5));
        forest.fit(&[], &[], 3, &mut Pcg32::new(13));
        assert!(forest.is_empty());
        assert_eq!(forest.predict(&[1.0, 2.0]), 0);
    }
}
