//! The `Embedder` abstraction — Querc's replacement for feature engineering.
//!
//! A classifier in Querc is a pre-trained *(embedder, labeler)* pair; the
//! embedder half is anything that maps a normalized token sequence to a
//! fixed-dimension vector. Embedders are immutable once trained (training
//! happens in the offline training module), so `embed` takes `&self` and
//! implementations must be deterministic for a given input — Qworkers
//! replicate them freely across threads.
//!
//! ```
//! use querc_embed::{BagOfTokens, Embedder};
//!
//! let embedder = BagOfTokens::new(64, true);
//! // Normalization collapses literals, so these embed identically.
//! let a = embedder.embed_sql("select * from t where x = 1");
//! let b = embedder.embed_sql("SELECT * FROM t WHERE x = 99");
//! assert_eq!(a, b);
//! assert_eq!(a.len(), embedder.dim());
//!
//! // The batched path is an amortization, never a semantic change.
//! let docs = vec![querc_embed::sql_tokens("select * from t where x = 1")];
//! assert_eq!(embedder.embed_batch(&docs)[0], a);
//! ```

/// Maps token sequences to fixed-size dense vectors.
pub trait Embedder: Send + Sync {
    /// Output dimensionality; every returned vector has exactly this length.
    fn dim(&self) -> usize;

    /// Embed one tokenized (normalized) query.
    ///
    /// Must be deterministic: equal token sequences produce equal vectors.
    fn embed(&self, tokens: &[String]) -> Vec<f32>;

    /// Short identifier used in logs and experiment tables
    /// (e.g. `"doc2vec"`, `"lstm"`).
    fn name(&self) -> &'static str;

    /// Convenience: normalize SQL text and embed it.
    fn embed_sql(&self, sql: &str) -> Vec<f32> {
        self.embed(&crate::sql_tokens(sql))
    }

    /// Embed a batch of tokenized queries — the serving hot path.
    ///
    /// Must return exactly `docs.len()` vectors, and each vector must be
    /// **identical** to what [`Embedder::embed`] would return for the same
    /// document: batching is an amortization, never a semantic change.
    /// The default delegates query-at-a-time; `bow`, `doc2vec`, and
    /// `lstm` override it to hoist per-call setup (noise tables, scratch
    /// buffers) out of the loop.
    fn embed_batch(&self, docs: &[Vec<String>]) -> Vec<Vec<f32>> {
        docs.iter().map(|d| self.embed(d)).collect()
    }

    /// A 64-bit identity for this embedder's *function*, used to
    /// namespace shared vector caches (the serving layer's embed plane):
    /// cache entries written under one namespace are only ever served to
    /// embedders reporting the same namespace. Two embedders that agree
    /// here promise to embed equal token streams to equal vectors.
    ///
    /// The default folds [`Embedder::name`] and [`Embedder::dim`], which
    /// keeps `bow` / `doc2vec` / `lstm` vectors apart. Embedders with
    /// extra knobs or trained state override it to also fold that state
    /// (hash flags, seed, vocabulary size, a weight checksum), so two
    /// differently-configured or separately-trained models of the same
    /// architecture and width never serve each other's vectors.
    fn cache_namespace(&self) -> u64 {
        namespace_fold(namespace_of(self.name()), self.dim() as u64)
    }

    /// Serialize this embedder for a snapshot: `(kind, json)` such that
    /// [`crate::io::restore_embedder`]`(kind, &json)` rebuilds an
    /// embedder with **identical weights** — and therefore an identical
    /// [`Embedder::cache_namespace`], which is what lets warm cache
    /// entries survive a checkpoint/restore cycle. The default is
    /// `None`: embedders without serialization simply opt out of
    /// persistence (their apps refit after a restore).
    fn export_spec(&self) -> Option<(&'static str, String)> {
        None
    }
}

/// Chunk width for [`batch_chunks`]. Fixed — the decomposition depends
/// only on the batch size, so parallel batches merge identically for
/// every thread count.
const BATCH_CHUNK: usize = 32;

/// Run `f` over every document of `docs` with fixed-size chunks
/// distributed across the compute pool, returning results in input
/// order — the shared skeleton of the `embed_batch` overrides. Because
/// each document's result is a pure function of that document (the
/// `Embedder` determinism contract), the output is bit-identical to a
/// sequential `docs.iter().map(f)` at every thread count.
pub fn batch_chunks<T, F>(docs: &[T], f: F) -> Vec<Vec<f32>>
where
    T: Sync,
    F: Fn(&T) -> Vec<f32> + Sync,
{
    let n_chunks = docs.len().div_ceil(BATCH_CHUNK);
    let parts = querc_linalg::ComputePool::current().map(n_chunks, |c| {
        let lo = c * BATCH_CHUNK;
        let hi = (lo + BATCH_CHUNK).min(docs.len());
        docs[lo..hi].iter().map(&f).collect::<Vec<_>>()
    });
    parts.into_iter().flatten().collect()
}

/// FNV-1a hash of an embedder family name — the starting point for
/// [`Embedder::cache_namespace`] implementations.
pub fn namespace_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Fold one 64-bit word (a dimension, a seed, a checksum) into a cache
/// namespace, FNV-1a style over its little-endian bytes.
pub fn namespace_fold(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Checksum of a weight slice for namespacing trained models: folds the
/// bit patterns of up to 256 values sampled **evenly across the whole
/// slice**, plus its length. Strided sampling keeps the per-call cost
/// flat (cheap enough for the serving hot path) while covering the
/// entire matrix — a retrain that leaves some region untouched (e.g.
/// vocabulary slots absent from the new corpus) still almost surely
/// moves many of the strided samples. This is probabilistic identity,
/// not a cryptographic digest; callers fold it together with exact
/// discriminators (dims, seed, vocabulary size).
pub fn weights_checksum(weights: &[f32]) -> u64 {
    const SAMPLES: usize = 256;
    let mut h: u64 = 0xcbf29ce484222325;
    if !weights.is_empty() {
        let stride = weights.len().div_ceil(SAMPLES);
        for w in weights.iter().step_by(stride) {
            h = namespace_fold(h, w.to_bits() as u64);
        }
    }
    namespace_fold(h, weights.len() as u64)
}

/// Embed a whole corpus row-by-row into a feature matrix
/// (`corpus.len()` × `embedder.dim()`), as consumed by `querc-learn`
/// classifiers and `querc-cluster`.
pub fn embed_corpus<E: Embedder + ?Sized>(embedder: &E, corpus: &[Vec<String>]) -> Vec<Vec<f32>> {
    embedder.embed_batch(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial embedder for exercising the trait's defaults.
    struct LengthEmbedder;

    impl Embedder for LengthEmbedder {
        fn dim(&self) -> usize {
            2
        }
        fn embed(&self, tokens: &[String]) -> Vec<f32> {
            vec![
                tokens.len() as f32,
                tokens.iter().map(|t| t.len()).sum::<usize>() as f32,
            ]
        }
        fn name(&self) -> &'static str {
            "length"
        }
    }

    #[test]
    fn embed_sql_normalizes_first() {
        let e = LengthEmbedder;
        // Literal values are placeholders after normalization, so these two
        // must embed identically.
        let a = e.embed_sql("SELECT * FROM t WHERE x = 12345");
        let b = e.embed_sql("select * from t where x = 9");
        assert_eq!(a, b);
    }

    #[test]
    fn default_embed_batch_matches_embed() {
        let e = LengthEmbedder;
        let docs = vec![
            vec!["select".to_string(), "x".to_string()],
            vec![],
            vec!["a".to_string(), "bb".to_string(), "ccc".to_string()],
        ];
        let batch = e.embed_batch(&docs);
        assert_eq!(batch.len(), docs.len());
        for (doc, v) in docs.iter().zip(&batch) {
            assert_eq!(*v, e.embed(doc));
        }
    }

    #[test]
    fn cache_namespaces_separate_families_and_configs() {
        use crate::BagOfTokens;
        // Different dims → different namespaces (default impl).
        assert_ne!(
            BagOfTokens::new(64, true).cache_namespace(),
            BagOfTokens::new(128, true).cache_namespace()
        );
        // Same params → same namespace, even across instances.
        assert_eq!(
            BagOfTokens::new(64, true).cache_namespace(),
            BagOfTokens::new(64, true).cache_namespace()
        );
        // Same (name, dim) but different hashing config → different.
        assert_ne!(
            BagOfTokens::new(64, true).cache_namespace(),
            BagOfTokens::new(64, false).cache_namespace()
        );
        // A different family at the same dim → different.
        assert_ne!(
            LengthEmbedder.cache_namespace(),
            BagOfTokens::new(2, false).cache_namespace()
        );
    }

    #[test]
    fn weights_checksum_tracks_content_and_length() {
        assert_ne!(weights_checksum(&[1.0, 2.0]), weights_checksum(&[1.0, 2.5]));
        assert_ne!(weights_checksum(&[1.0]), weights_checksum(&[1.0, 1.0]));
        assert_eq!(weights_checksum(&[]), weights_checksum(&[]));
    }

    #[test]
    fn embed_corpus_shape() {
        let e = LengthEmbedder;
        let corpus = vec![
            vec!["a".to_string()],
            vec!["b".to_string(), "cc".to_string()],
        ];
        let m = embed_corpus(&e, &corpus);
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|r| r.len() == e.dim()));
        assert_eq!(m[1], vec![2.0, 3.0]);
    }
}
