//! Inverted-file (IVF) approximate nearest-neighbor index.
//!
//! Classic two-level ANN: a k-means **coarse quantizer**
//! (`querc_cluster::kmeans`) partitions the corpus into `nlist`
//! inverted lists; a search ranks the centroids, scans only the
//! `nprobe` nearest lists exactly, and top-k-selects over those
//! candidates. Per-query work drops from `O(n)` to roughly
//! `O(nlist + n·nprobe/nlist)` — minimized around `nlist ≈ √n` — at the
//! cost of missing neighbors whose list was not probed. `nprobe` is the
//! recall knob: `nprobe == nlist` degenerates to an exact (if
//! re-ordered) scan, `nprobe == 1` is the fastest and least recalled.

use crate::metric::Metric;
use crate::store::VectorStore;
use crate::{Hit, IndexStats, TopK, VectorIndex};
use querc_cluster::{kmeans, KMeansConfig};
use querc_linalg::{ops, Pcg32};
use std::sync::atomic::{AtomicU64, Ordering};

/// Build/search knobs for an [`IvfIndex`].
#[derive(Debug, Clone)]
pub struct IvfConfig {
    /// Inverted lists (coarse centroids). `0` ⇒ auto: `⌈√n⌉`, clamped
    /// to `[1, n]` — the classical sweet spot.
    pub nlist: usize,
    /// Lists scanned per query, clamped to `[1, nlist]` at search time.
    /// Higher = better recall, more candidates scanned.
    pub nprobe: usize,
    /// Lloyd iterations for the coarse quantizer. IVF needs a rough
    /// partition, not a converged clustering, so this is kept small.
    pub train_iters: usize,
    /// Rows the coarse quantizer trains on. `0` ⇒ all rows. When the
    /// corpus is larger, a deterministic sample of this size is
    /// clustered instead and the *full* corpus is then assigned to the
    /// trained centroids through the fused SIMD scan — k-means over
    /// 1M×`nlist` points is minutes of work for a partition whose
    /// quality a 100k sample already saturates.
    pub train_sample: usize,
    /// Seed for the quantizer's k-means++ initialization (and the
    /// training-row sample).
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        IvfConfig {
            nlist: 0,
            nprobe: 8,
            train_iters: 10,
            train_sample: 100_000,
            seed: 0x1df5,
        }
    }
}

/// Shared coarse-quantization step for [`IvfIndex`] and
/// [`crate::Sq8Index`]: k-means the (possibly sampled) rows, then
/// assign **every** row to its nearest centroid. Returns the centroids
/// (in clustering space — unit-normalized for cosine) and the inverted
/// lists. Empty store ⇒ `(empty, [])`.
pub(crate) fn coarse_partition(
    store: &VectorStore,
    metric: Metric,
    nlist: usize,
    train_iters: usize,
    train_sample: usize,
    seed: u64,
) -> (VectorStore, Vec<Vec<u32>>) {
    let n = store.len();
    if n == 0 {
        return (VectorStore::new(store.dim()), Vec::new());
    }
    let nlist = if nlist == 0 {
        (n as f64).sqrt().ceil() as usize
    } else {
        nlist
    }
    .clamp(1, n);
    let mut rng = Pcg32::with_stream(seed, 0x1df5);
    let sampled = train_sample > 0 && train_sample < n;
    let train_ids: Vec<usize> = if sampled {
        // Partial Fisher–Yates: the first `train_sample` slots of a
        // uniformly shuffled 0..n, deterministic under the seed.
        let mut ids: Vec<u32> = (0..n as u32).collect();
        for i in 0..train_sample {
            let j = i + rng.below_usize(n - i);
            ids.swap(i, j);
        }
        ids.truncate(train_sample);
        ids.into_iter().map(|i| i as usize).collect()
    } else {
        (0..n).collect()
    };
    // Materialize training points for the quantizer (normalized for
    // cosine so centroids live on the unit sphere).
    let points: Vec<Vec<f32>> = train_ids
        .iter()
        .map(|&i| {
            let mut v = store.row_vec(i);
            if metric == Metric::Cosine {
                ops::normalize(&mut v);
            }
            v
        })
        .collect();
    let result = kmeans(
        &points,
        &KMeansConfig {
            k: nlist.min(points.len()),
            max_iters: train_iters.max(1),
            tol: 1e-3,
        },
        &mut rng,
    );
    let mut lists = vec![Vec::new(); result.centroids.len()];
    if sampled {
        // Assign the full corpus to the trained centroids with the
        // fused block kernels. Cosine distance is magnitude-invariant,
        // so original (un-normalized) rows assign identically to their
        // normalized copies.
        let assigner = crate::FlatIndex::from_rows(&result.centroids, metric);
        const CHUNK: usize = 1024;
        let mut start = 0usize;
        while start < n {
            let end = (start + CHUNK).min(n);
            let rows: Vec<&[f32]> = (start..end).map(|i| store.row(i)).collect();
            for (i, best) in assigner.nearest_batch(&rows).into_iter().enumerate() {
                // A built index over ≥1 centroids always yields a hit.
                if let Some(c) = best {
                    lists[c as usize].push((start + i) as u32);
                }
            }
            start = end;
        }
    } else {
        for (id, &c) in result.assignments.iter().enumerate() {
            lists[c].push(id as u32);
        }
    }
    (VectorStore::from_rows(&result.centroids), lists)
}

/// Inverted-file ANN index over a [`VectorStore`].
///
/// Searchable through `&self` (counters are atomic), so one built index
/// serves many threads behind an `Arc`. Hit ordering follows the
/// crate-wide `(distance, id)` total order, so for the candidates it
/// *does* scan an IVF search is exactly as deterministic as the flat
/// scan — and with `nprobe == nlist` the results are identical to
/// [`crate::FlatIndex`].
#[derive(Debug)]
pub struct IvfIndex {
    store: VectorStore,
    metric: Metric,
    /// Coarse centroids, in the clustering space (unit-normalized when
    /// the metric is cosine).
    centroids: VectorStore,
    /// `lists[c]` = ids of rows whose nearest centroid is `c`.
    lists: Vec<Vec<u32>>,
    nprobe: usize,
    searches: AtomicU64,
    probes: AtomicU64,
    candidates: AtomicU64,
}

impl IvfIndex {
    /// Build the index: run the coarse quantizer over `store` and
    /// assign every row to its nearest centroid's list.
    ///
    /// For [`Metric::Cosine`] the quantizer clusters unit-normalized
    /// copies of the rows (angular geometry); the stored vectors and
    /// all reported distances remain the originals'.
    pub fn build(store: VectorStore, metric: Metric, cfg: &IvfConfig) -> IvfIndex {
        let (centroids, lists) = coarse_partition(
            &store,
            metric,
            cfg.nlist,
            cfg.train_iters,
            cfg.train_sample,
            cfg.seed,
        );
        IvfIndex {
            centroids,
            lists,
            nprobe: cfg.nprobe.max(1),
            store,
            metric,
            searches: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
        }
    }

    /// Bulk-build from row data (see [`VectorStore::from_rows`]).
    ///
    /// # Panics
    /// If `rows` is empty or ragged.
    pub fn from_rows(rows: &[Vec<f32>], metric: Metric, cfg: &IvfConfig) -> IvfIndex {
        IvfIndex::build(VectorStore::from_rows(rows), metric, cfg)
    }

    /// Reassemble an index from previously exported parts — the restore
    /// path for a persisted snapshot. `centroids`/`lists` must come from
    /// [`IvfIndex::centroids`]/[`IvfIndex::lists`] of an index built
    /// over the same `store`; search counters restart at zero.
    ///
    /// Returns `None` when the parts are inconsistent (centroid/list
    /// count mismatch, centroid dimension ≠ store dimension, or a list
    /// entry referencing a row the store doesn't have) — a corrupt
    /// snapshot must surface an error, not an index panic at search
    /// time.
    pub fn from_parts(
        store: VectorStore,
        metric: Metric,
        centroids: VectorStore,
        lists: Vec<Vec<u32>>,
        nprobe: usize,
    ) -> Option<IvfIndex> {
        if centroids.len() != lists.len() {
            return None;
        }
        if !centroids.is_empty() && centroids.dim() != store.dim() {
            return None;
        }
        let n = store.len();
        if lists.iter().flatten().any(|&id| id as usize >= n) {
            return None;
        }
        Some(IvfIndex {
            store,
            metric,
            centroids,
            lists,
            nprobe: nprobe.max(1),
            searches: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
        })
    }

    /// The coarse quantizer's centroids (clustering space — unit
    /// normalized when the metric is cosine). Export half of
    /// [`IvfIndex::from_parts`].
    pub fn centroids(&self) -> &VectorStore {
        &self.centroids
    }

    /// The inverted lists: `lists()[c]` holds the row ids assigned to
    /// centroid `c`. Export half of [`IvfIndex::from_parts`].
    pub fn lists(&self) -> &[Vec<u32>] {
        &self.lists
    }

    /// Builder-style recall knob (clamped to `[1, nlist]` per search).
    pub fn with_nprobe(mut self, nprobe: usize) -> IvfIndex {
        self.set_nprobe(nprobe);
        self
    }

    /// Set the recall knob at runtime (≥ 1 enforced).
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.nprobe = nprobe.max(1);
    }

    /// Current `nprobe` setting.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// The indexed store.
    pub fn store(&self) -> &VectorStore {
        &self.store
    }

    /// The `nprobe` nearest centroid ids to `query`, closest first.
    fn probe_order(&self, query: &[f32], nprobe: usize) -> Vec<Hit> {
        let mut top = TopK::new(nprobe);
        for c in 0..self.centroids.len() {
            top.push(c as u32, self.metric.distance(query, self.centroids.row(c)));
        }
        top.into_sorted()
    }
}

impl VectorIndex for IvfIndex {
    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        self.searches.fetch_add(1, Ordering::Relaxed);
        if self.lists.is_empty() {
            return Vec::new();
        }
        let nprobe = self.nprobe.min(self.nlist());
        let probed = self.probe_order(query, nprobe);
        self.probes
            .fetch_add(probed.len() as u64, Ordering::Relaxed);
        let mut scanned = 0u64;
        let mut top = TopK::new(k);
        for (c, _) in probed {
            let list = &self.lists[c as usize];
            scanned += list.len() as u64;
            for &id in list {
                top.push(id, self.metric.distance(query, self.store.row(id as usize)));
            }
        }
        self.candidates.fetch_add(scanned, Ordering::Relaxed);
        top.into_sorted()
    }

    /// Batched IVF search inverts the loop: queries are first grouped
    /// by probed list, then each inverted list is walked **once** for
    /// the whole batch — every row is read while hot for all queries
    /// probing it. The candidate sets (and therefore the results) are
    /// identical to per-query [`VectorIndex::search`]; only the
    /// traversal order changes, which the `(distance, id)` total order
    /// is insensitive to.
    fn search_batch(&self, queries: &[&[f32]], k: usize) -> Vec<Vec<Hit>> {
        self.searches
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        if self.lists.is_empty() {
            return vec![Vec::new(); queries.len()];
        }
        let nprobe = self.nprobe.min(self.nlist());
        let mut probed_total = 0u64;
        let mut by_list: Vec<Vec<u32>> = vec![Vec::new(); self.lists.len()];
        for (qi, q) in queries.iter().enumerate() {
            let probed = self.probe_order(q, nprobe);
            probed_total += probed.len() as u64;
            for (c, _) in probed {
                by_list[c as usize].push(qi as u32);
            }
        }
        self.probes.fetch_add(probed_total, Ordering::Relaxed);
        let mut scanned = 0u64;
        let mut tops: Vec<TopK> = queries.iter().map(|_| TopK::new(k)).collect();
        for (c, probers) in by_list.iter().enumerate() {
            if probers.is_empty() {
                continue;
            }
            let list = &self.lists[c];
            scanned += (list.len() * probers.len()) as u64;
            for &id in list {
                let row = self.store.row(id as usize);
                for &qi in probers {
                    tops[qi as usize].push(id, self.metric.distance(queries[qi as usize], row));
                }
            }
        }
        self.candidates.fetch_add(scanned, Ordering::Relaxed);
        tops.into_iter().map(TopK::into_sorted).collect()
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn stats(&self) -> IndexStats {
        let lists_bytes = self
            .lists
            .iter()
            .map(|l| l.len() * std::mem::size_of::<u32>())
            .sum::<usize>();
        IndexStats {
            searches: self.searches.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            candidates: self.candidates.load(Ordering::Relaxed),
            partitions: self.nlist(),
            // Full probe degenerates to an exact (re-ordered) scan, and
            // the flag reflects the *current* nprobe setting.
            exact: self.nprobe >= self.nlist(),
            backend: "ivf",
            kernel: crate::simd::kernel_name(),
            resident_bytes: self.store.memory_bytes() + self.centroids.memory_bytes() + lists_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatIndex;

    /// Well-separated 2-D blobs: IVF's best case, and the shape of an
    /// embedded templated workload.
    fn blobs(n_per: usize, centers: &[(f32, f32)], seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Pcg32::new(seed);
        let mut pts = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..n_per {
                pts.push(vec![cx + rng.normal() * 0.3, cy + rng.normal() * 0.3]);
            }
        }
        pts
    }

    #[test]
    fn probed_search_finds_in_cluster_neighbors() {
        let pts = blobs(50, &[(0.0, 0.0), (10.0, 10.0), (0.0, 10.0), (10.0, 0.0)], 1);
        let ix = IvfIndex::from_rows(
            &pts,
            Metric::Euclidean,
            &IvfConfig {
                nlist: 4,
                nprobe: 1,
                ..Default::default()
            },
        );
        assert_eq!(ix.nlist(), 4);
        let hits = ix.search(&[10.1, 9.9], 5);
        assert_eq!(hits.len(), 5);
        for (id, _) in hits {
            let p = ix.store().row(id as usize);
            assert!(
                p[0] > 5.0 && p[1] > 5.0,
                "hit {p:?} is not in the (10,10) blob"
            );
        }
        let s = ix.stats();
        assert_eq!(s.searches, 1);
        assert_eq!(s.probes, 1, "nprobe=1 scans one list");
        assert!(s.candidates < 200, "scanned one blob, not the corpus");
        assert!(!s.exact);
    }

    #[test]
    fn full_probe_matches_flat_exactly() {
        let pts = blobs(40, &[(0.0, 0.0), (6.0, 6.0), (0.0, 7.0)], 2);
        let flat = FlatIndex::from_rows(&pts, Metric::Euclidean);
        let ivf = IvfIndex::from_rows(
            &pts,
            Metric::Euclidean,
            &IvfConfig {
                nlist: 6,
                nprobe: 6,
                ..Default::default()
            },
        );
        for q in [[0.2f32, 0.1], [5.9, 6.2], [3.0, 3.0]] {
            assert_eq!(
                ivf.search(&q, 7),
                flat.search(&q, 7),
                "nprobe==nlist is exact"
            );
        }
        assert!(
            ivf.stats().exact,
            "full probe must report itself as exact in stats"
        );
    }

    #[test]
    fn nprobe_is_a_live_recall_knob() {
        let pts = blobs(30, &[(0.0, 0.0), (8.0, 8.0)], 3);
        let mut ix = IvfIndex::from_rows(
            &pts,
            Metric::Euclidean,
            &IvfConfig {
                nlist: 2,
                nprobe: 1,
                ..Default::default()
            },
        );
        assert_eq!(ix.nprobe(), 1);
        ix.set_nprobe(0);
        assert_eq!(ix.nprobe(), 1, "clamped to ≥ 1");
        let ix = ix.with_nprobe(2);
        assert_eq!(ix.nprobe(), 2);
        // Over-asking is clamped to nlist at search time.
        let ix = ix.with_nprobe(99);
        let _ = ix.search(&[1.0, 1.0], 3);
        assert_eq!(ix.stats().probes, 2);
    }

    #[test]
    fn cosine_clusters_on_the_unit_sphere() {
        // Two angular families with wildly different magnitudes.
        let mut pts = Vec::new();
        for i in 1..=40 {
            let m = i as f32;
            pts.push(vec![m, 0.1 * m]);
            pts.push(vec![0.1 * m, m]);
        }
        let ix = IvfIndex::from_rows(
            &pts,
            Metric::Cosine,
            &IvfConfig {
                nlist: 2,
                nprobe: 1,
                ..Default::default()
            },
        );
        let hits = ix.search(&[100.0, 8.0], 10);
        for (id, d) in hits {
            let p = ix.store().row(id as usize);
            assert!(p[0] > p[1], "angularly wrong hit {p:?} (d={d})");
        }
    }

    #[test]
    fn empty_and_auto_nlist() {
        let empty = IvfIndex::build(
            VectorStore::new(4),
            Metric::Euclidean,
            &IvfConfig::default(),
        );
        assert!(empty.is_empty());
        assert!(empty.search(&[0.0; 4], 3).is_empty());

        let pts = blobs(50, &[(0.0, 0.0), (5.0, 5.0)], 4);
        let auto = IvfIndex::from_rows(&pts, Metric::Euclidean, &IvfConfig::default());
        assert_eq!(auto.nlist(), 10, "⌈√100⌉");
        assert_eq!(auto.len(), 100);
        assert_eq!(auto.dim(), 2);
    }

    #[test]
    fn search_batch_matches_single_searches_and_counters() {
        let pts = blobs(40, &[(0.0, 0.0), (7.0, 7.0), (0.0, 7.0)], 6);
        let ix = IvfIndex::from_rows(
            &pts,
            Metric::Euclidean,
            &IvfConfig {
                nlist: 6,
                nprobe: 2,
                ..Default::default()
            },
        );
        let queries: Vec<Vec<f32>> = (0..9)
            .map(|i| vec![i as f32, (i % 3) as f32 * 3.0])
            .collect();
        let refs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
        let single: Vec<_> = refs.iter().map(|q| ix.search(q, 5)).collect();
        let after_single = ix.stats();
        let batched = ix.search_batch(&refs, 5);
        assert_eq!(
            batched, single,
            "list-grouped traversal must not change results"
        );
        let after_batch = ix.stats();
        // The batch accounts exactly like 9 single searches.
        assert_eq!(after_batch.searches, after_single.searches + 9);
        assert_eq!(
            after_batch.probes - after_single.probes,
            after_single.probes,
        );
        assert_eq!(
            after_batch.candidates - after_single.candidates,
            after_single.candidates,
        );
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let pts = blobs(30, &[(0.0, 0.0), (6.0, 6.0)], 7);
        let built = IvfIndex::from_rows(
            &pts,
            Metric::Euclidean,
            &IvfConfig {
                nlist: 4,
                nprobe: 2,
                ..Default::default()
            },
        );
        let rebuilt = IvfIndex::from_parts(
            built.store().clone(),
            Metric::Euclidean,
            built.centroids().clone(),
            built.lists().to_vec(),
            built.nprobe(),
        )
        .expect("exported parts are consistent");
        for q in [[0.5f32, 0.2], [5.8, 6.1], [3.0, 3.0]] {
            assert_eq!(rebuilt.search(&q, 5), built.search(&q, 5));
        }
        assert_eq!(rebuilt.stats().searches, 3, "counters restart at zero");

        // Inconsistent parts are refused, not deferred to a panic.
        assert!(
            IvfIndex::from_parts(
                built.store().clone(),
                Metric::Euclidean,
                built.centroids().clone(),
                vec![vec![9999u32]; built.nlist()],
                2,
            )
            .is_none(),
            "out-of-range list entry"
        );
        assert!(
            IvfIndex::from_parts(
                built.store().clone(),
                Metric::Euclidean,
                built.centroids().clone(),
                vec![Vec::new(); built.nlist() + 1],
                2,
            )
            .is_none(),
            "centroid/list count mismatch"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let pts = blobs(25, &[(0.0, 0.0), (4.0, 4.0), (8.0, 0.0)], 5);
        let cfg = IvfConfig {
            nlist: 5,
            nprobe: 2,
            ..Default::default()
        };
        let a = IvfIndex::from_rows(&pts, Metric::Euclidean, &cfg);
        let b = IvfIndex::from_rows(&pts, Metric::Euclidean, &cfg);
        for q in [[1.0f32, 1.0], [7.5, 0.5]] {
            assert_eq!(a.search(&q, 4), b.search(&q, 4));
        }
    }
}
